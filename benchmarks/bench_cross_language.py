"""E8 -- one monad, one component set, three languages (1, 6.1, 9).

Claim regenerated: the same ``Addressable`` object and the same
``StorePassing`` monad drive CPS, direct-style/CESK and Featherweight
Java, and the mj09 merge/separate verdict is identical across all three.
This is the paper's headline: "by plugging the same monad into a
monadically-parameterized semantics for Java or for the lambda calculus,
it yields the expected analysis."
"""

from conftest import run_once

from repro.analysis.report import fmt_table
from repro.core.addresses import KCFA, ZeroCFA
from repro.cps.analysis import analyse as analyse_cps
from repro.cesk.analysis import analyse_cesk
from repro.fj.analysis import analyse_fj
from repro.corpus import cps_programs, fj_programs, lam_programs


def merge_width_cps(addressing):
    result = analyse_cps(addressing).run(cps_programs.PROGRAMS["mj09"])
    return max(len(result.flows_to()[v]) for v in ("a", "b"))


def merge_width_cesk(addressing):
    result = analyse_cesk(addressing).run(lam_programs.PROGRAMS["mj09"])
    return max(len(result.flows_to()[v]) for v in ("a", "b"))


def merge_width_fj(addressing):
    program = fj_programs.PROGRAMS["id-twice"]
    result = analyse_fj(program, addressing).run(program)
    store = result.global_store()
    widths = [
        len(result.store_like.fetch(store, a))
        for a in result.store_like.addresses(store)
        if getattr(a, "var", a) == "x"
    ]
    return max(widths)


def test_e8_same_monad_same_verdict(benchmark):
    def run():
        table = {}
        for label, make in (("0CFA", ZeroCFA), ("1CFA", lambda: KCFA(1))):
            policy = make()  # ONE object per row, shared by all three machines
            table[label] = (
                merge_width_cps(policy),
                merge_width_cesk(policy),
                merge_width_fj(policy),
            )
        return table

    table = run_once(benchmark, run)
    rows = [(label, *widths) for label, widths in table.items()]
    print()
    print(
        fmt_table(
            ["policy", "CPS merge width", "CESK merge width", "FJ merge width"], rows
        )
    )
    # context-insensitivity merges the two uses (width 2) in every calculus;
    # one call-site of context separates them (width 1) in every calculus
    assert table["0CFA"] == (2, 2, 2)
    assert table["1CFA"] == (1, 1, 1)


def test_e8_components_are_literally_shared(benchmark):
    from repro.core.monads import StorePassing
    from repro.core.store import BasicStore
    from repro.cps.analysis import AbstractCPSInterface
    from repro.cesk.analysis import AbstractCESKInterface
    from repro.fj.analysis import AbstractFJInterface
    from repro.fj.class_table import ClassTable

    def run():
        addressing = KCFA(1)
        table = ClassTable.of(fj_programs.PROGRAMS["pair"])
        return (
            AbstractCPSInterface(addressing, BasicStore()),
            AbstractCESKInterface(addressing, BasicStore()),
            AbstractFJInterface(table, addressing, BasicStore()),
        )

    cps_iface, cesk_iface, fj_iface = run_once(benchmark, run)
    assert cps_iface.addressing is cesk_iface.addressing is fj_iface.addressing
    assert all(
        isinstance(i.monad, StorePassing) for i in (cps_iface, cesk_iface, fj_iface)
    )


def test_e8_fj_dispatch_chain(benchmark):
    """The FJ rendition of the id-chain polyvariance curve."""
    program = fj_programs.dispatch_chain(4)

    def run():
        return (
            analyse_fj(program, ZeroCFA()).run(program),
            analyse_fj(program, KCFA(1)).run(program),
        )

    r0, r1 = run_once(benchmark, run)
    assert len(r0.class_flows()["x"]) == 4
    store = r1.global_store()
    widths = [
        len(r1.store_like.fetch(store, a))
        for a in r1.store_like.addresses(store)
        if getattr(a, "var", None) == "x"
    ]
    assert widths and max(widths) == 1
