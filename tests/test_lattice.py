"""Lattice laws, unit-tested and property-tested (paper section 5.1-5.2).

Every instance must satisfy: partial-order laws for ``leq``; join/meet
being least-upper/greatest-lower bounds; idempotence, commutativity,
associativity and absorption.  ``hypothesis`` drives the algebraic laws
over randomly generated elements of each carrier.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import (
    AbsNat,
    AbsNatLattice,
    DualLattice,
    FlatLattice,
    Lattice,
    MapLattice,
    PairLattice,
    PowersetLattice,
    ProductLattice,
    TopUndefined,
    TrivialCountLattice,
    UnitLattice,
    join_with,
)
from repro.util.pcollections import pmap

powersets = st.frozensets(st.integers(0, 5), max_size=4)
maps = st.dictionaries(st.text("ab", min_size=1, max_size=1), powersets, max_size=3).map(pmap)
absnats = st.sampled_from(list(AbsNat))
flat_elems = st.one_of(
    st.just(FlatLattice.BOT), st.just(FlatLattice.TOP), st.integers(0, 3)
)


def lattice_and_elements():
    """(lattice, element strategy) pairs for the generic law tests."""
    ps = PowersetLattice()
    return [
        (UnitLattice(), st.just(())),
        (ps, powersets),
        (PairLattice(ps, ps), st.tuples(powersets, powersets)),
        (MapLattice(ps), maps),
        (AbsNatLattice(), absnats),
        (TrivialCountLattice(), st.just(AbsNat.MANY)),
        (FlatLattice(), flat_elems),
        (DualLattice(PowersetLattice(frozenset(range(6)))), powersets),
        (ProductLattice(ps, AbsNatLattice()), st.tuples(powersets, absnats)),
    ]


@pytest.mark.parametrize("lattice,strategy", lattice_and_elements())
def test_lattice_laws(lattice: Lattice, strategy):
    @given(strategy, strategy, strategy)
    def laws(x, y, z):
        # partial order
        assert lattice.leq(x, x)
        assert lattice.leq(lattice.bottom(), x)
        # join is an upper bound, meet a lower bound
        j = lattice.join(x, y)
        assert lattice.leq(x, j) and lattice.leq(y, j)
        m = lattice.meet(x, y)
        assert lattice.leq(m, x) and lattice.leq(m, y)
        # idempotence / commutativity / associativity (up to order-equivalence)
        assert lattice.equiv(lattice.join(x, x), x)
        assert lattice.equiv(lattice.join(x, y), lattice.join(y, x))
        assert lattice.equiv(
            lattice.join(lattice.join(x, y), z), lattice.join(x, lattice.join(y, z))
        )
        assert lattice.equiv(lattice.meet(x, y), lattice.meet(y, x))
        # absorption
        assert lattice.equiv(lattice.join(x, lattice.meet(x, y)), x)
        assert lattice.equiv(lattice.meet(x, lattice.join(x, y)), x)
        # bottom is a unit for join
        assert lattice.equiv(lattice.join(lattice.bottom(), x), x)
        # leq agrees with join
        assert lattice.leq(x, y) == lattice.equiv(lattice.join(x, y), y)

    laws()


class TestPowerset:
    def test_bottom_is_empty(self):
        assert PowersetLattice().bottom() == frozenset()

    def test_top_needs_universe(self):
        with pytest.raises(TopUndefined):
            PowersetLattice().top()
        assert PowersetLattice(frozenset([1, 2])).top() == frozenset([1, 2])

    def test_join_is_union(self):
        ps = PowersetLattice()
        assert ps.join(frozenset([1]), frozenset([2])) == frozenset([1, 2])

    def test_meet_is_intersection(self):
        ps = PowersetLattice()
        assert ps.meet(frozenset([1, 2]), frozenset([2, 3])) == frozenset([2])


class TestMapLattice:
    def setup_method(self):
        self.ml = MapLattice(PowersetLattice())

    def test_join_is_pointwise(self):
        m1 = pmap({"x": frozenset([1])})
        m2 = pmap({"x": frozenset([2]), "y": frozenset([3])})
        joined = self.ml.join(m1, m2)
        assert joined["x"] == frozenset([1, 2])
        assert joined["y"] == frozenset([3])

    def test_absent_keys_read_as_bottom(self):
        assert self.ml.lookup(pmap(), "zzz") == frozenset()

    def test_leq_with_missing_keys(self):
        small = pmap({"x": frozenset([1])})
        big = pmap({"x": frozenset([1, 2]), "y": frozenset([3])})
        assert self.ml.leq(small, big)
        assert not self.ml.leq(big, small)

    def test_binding_to_bottom_is_leq_empty(self):
        # a key explicitly bound to the bottom value adds no information
        m = pmap({"x": frozenset()})
        assert self.ml.leq(m, pmap())
        assert self.ml.equiv(m, pmap())

    def test_meet_drops_disjoint_keys(self):
        m1 = pmap({"x": frozenset([1, 2]), "y": frozenset([5])})
        m2 = pmap({"x": frozenset([2, 3]), "z": frozenset([6])})
        met = self.ml.meet(m1, m2)
        assert met == pmap({"x": frozenset([2])})


class TestAbsNat:
    def test_plus_zero_is_identity(self):
        for n in AbsNat:
            assert AbsNat.ZERO.plus(n) is n
            assert n.plus(AbsNat.ZERO) is n

    def test_one_plus_one_is_many(self):
        assert AbsNat.ONE.plus(AbsNat.ONE) is AbsNat.MANY

    def test_many_absorbs(self):
        assert AbsNat.MANY.plus(AbsNat.ONE) is AbsNat.MANY
        assert AbsNat.MANY.plus(AbsNat.MANY) is AbsNat.MANY

    @given(absnats, absnats)
    def test_plus_commutative(self, a, b):
        assert a.plus(b) is b.plus(a)

    @given(absnats, absnats, absnats)
    def test_plus_associative(self, a, b, c):
        assert a.plus(b).plus(c) is a.plus(b.plus(c))

    @given(absnats, absnats)
    def test_plus_monotone(self, a, b):
        lat = AbsNatLattice()
        assert lat.leq(a, a.plus(b))

    def test_chain_order(self):
        lat = AbsNatLattice()
        assert lat.leq(AbsNat.ZERO, AbsNat.ONE)
        assert lat.leq(AbsNat.ONE, AbsNat.MANY)
        assert not lat.leq(AbsNat.MANY, AbsNat.ONE)

    def test_trivial_lattice_collapses(self):
        triv = TrivialCountLattice()
        assert triv.join(AbsNat.ZERO, AbsNat.ONE) is AbsNat.MANY
        assert triv.leq(AbsNat.MANY, AbsNat.ZERO)


class TestFlatLattice:
    def setup_method(self):
        self.fl = FlatLattice()

    def test_distinct_points_incomparable(self):
        assert not self.fl.leq(1, 2)
        assert not self.fl.leq(2, 1)

    def test_distinct_points_join_to_top(self):
        assert self.fl.join(1, 2) == FlatLattice.TOP

    def test_distinct_points_meet_to_bottom(self):
        assert self.fl.meet(1, 2) == FlatLattice.BOT

    def test_same_point_join(self):
        assert self.fl.join(1, 1) == 1


class TestDual:
    def test_dual_swaps_bounds(self):
        ps = PowersetLattice(frozenset([1, 2]))
        dual = DualLattice(ps)
        assert dual.bottom() == frozenset([1, 2])
        assert dual.top() == frozenset()
        assert dual.join(frozenset([1]), frozenset([2])) == frozenset()


class TestDerived:
    def test_join_all(self):
        ps = PowersetLattice()
        sets = [frozenset([i]) for i in range(4)]
        assert ps.join_all(sets) == frozenset(range(4))

    def test_join_all_empty_is_bottom(self):
        assert PowersetLattice().join_all([]) == frozenset()

    def test_join_with(self):
        ps = PowersetLattice()
        result = join_with(ps, lambda n: frozenset([n, n + 10]), [1, 2])
        assert result == frozenset([1, 2, 11, 12])

    def test_product_needs_components(self):
        with pytest.raises(ValueError):
            ProductLattice()
