"""Markdown link checker for the repo's documentation (CI docs job).

Walks every tracked ``*.md`` file, extracts inline links and images
(``[text](target)``), and verifies that every *relative* target exists
on disk (anchors are stripped; ``http(s)``/``mailto`` targets are left
to the reader).  This keeps ARCHITECTURE.md, README.md and
PERFORMANCE.md from referring to files that a refactor renamed away::

    python tools/check_links.py            # checks all *.md under the repo
    python tools/check_links.py README.md  # or specific files

Exit status is the number of broken links (0 = clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) / ![alt](target).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: Directories never scanned for markdown sources.
EXCLUDED_DIRS = {".git", ".pytest_cache", "__pycache__", ".ruff_cache", "node_modules"}


def iter_markdown(root: Path) -> list[Path]:
    return [
        path
        for path in sorted(root.rglob("*.md"))
        if not EXCLUDED_DIRS & set(part for part in path.parts)
    ]


def check_file(path: Path, root: Path) -> list[str]:
    broken = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        # badge-style workflow links resolve on the forge, not on disk
        if target.startswith("../../actions/"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(root)}: broken link -> {target}")
    return broken


def main(argv: list[str]) -> int:
    root = Path.cwd()
    files = [Path(arg) for arg in argv] if argv else iter_markdown(root)
    broken: list[str] = []
    for path in files:
        broken.extend(check_file(path, root))
    for problem in broken:
        print(problem)
    if not broken:
        print(f"links ok across {len(files)} markdown files")
    return len(broken)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
