"""The FJ type system."""

import pytest

from repro.fj.parser import parse_program
from repro.fj.typecheck import TypeError_, typecheck_program
from repro.corpus.fj_programs import PROGRAMS


class TestWellTyped:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_corpus_typechecks(self, name):
        result = typecheck_program(PROGRAMS[name])
        assert result.main_type

    def test_main_types(self):
        assert typecheck_program(PROGRAMS["pair"]).main_type == "Object"
        assert typecheck_program(PROGRAMS["bad-cast"]).main_type == "A"

    def test_method_return_subtyping_ok(self):
        p = parse_program(
            """
            class A extends Object { }
            class B extends A { }
            class F extends Object {
              A make() { return new B(); }
            }
            new F().make()
            """
        )
        assert typecheck_program(p).main_type == "A"


class TestErrors:
    def check_fails(self, source, fragment):
        with pytest.raises(TypeError_) as err:
            typecheck_program(parse_program(source))
        assert fragment in str(err.value)

    def test_unbound_variable(self):
        self.check_fails(
            "class A extends Object { Object m() { return ghost; } } new A()",
            "unbound variable",
        )

    def test_unknown_field(self):
        self.check_fails(
            "class A extends Object { } new A().nope",
            "no field",
        )

    def test_unknown_method(self):
        self.check_fails("class A extends Object { } new A().nope()", "no method")

    def test_wrong_arity_new(self):
        self.check_fails(
            "class A extends Object { Object f; } new A()",
            "expects 1 arguments",
        )

    def test_wrong_arity_method(self):
        self.check_fails(
            """
            class A extends Object { Object m(Object x) { return x; } }
            new A().m()
            """,
            "expects 1 arguments",
        )

    def test_bad_argument_type(self):
        self.check_fails(
            """
            class A extends Object { }
            class B extends Object { }
            class F extends Object { Object m(A x) { return x; } }
            new F().m(new B())
            """,
            "argument of type B",
        )

    def test_bad_field_type(self):
        self.check_fails(
            """
            class A extends Object { }
            class B extends Object { }
            class H extends Object { A inner; }
            new H(new B())
            """,
            "field inner",
        )

    def test_bad_return_type(self):
        self.check_fails(
            """
            class A extends Object { }
            class B extends Object { }
            class F extends Object { A m() { return new B(); } }
            new F()
            """,
            "returns B",
        )

    def test_bad_override(self):
        self.check_fails(
            """
            class A extends Object { }
            class Base extends Object { Object m(Object x) { return x; } }
            class Derived extends Base { Object m(A x) { return x; } }
            new Derived()
            """,
            "different signature",
        )

    def test_field_shadowing_rejected(self):
        self.check_fails(
            """
            class Q extends Object { }
            class Base extends Object { Object f; }
            class Derived extends Base { Object f; }
            new Q()
            """,
            "shadows",
        )

    def test_duplicate_field_rejected(self):
        self.check_fails(
            "class A extends Object { Object f; Object f; } new A(new A(), new A())",
            "twice",
        )

    def test_duplicate_method_rejected(self):
        self.check_fails(
            """
            class A extends Object {
              Object m() { return this; }
              Object m() { return this; }
            }
            new A()
            """,
            "twice",
        )

    def test_unknown_param_type(self):
        self.check_fails(
            "class A extends Object { Object m(Ghost x) { return this; } } new A()",
            "unknown parameter type",
        )

    def test_new_of_undefined(self):
        self.check_fails("new Ghost()", "undefined class")


class TestCasts:
    def test_upcast_silent(self):
        p = parse_program(
            """
            class A extends Object { }
            (Object) new A()
            """
        )
        result = typecheck_program(p)
        assert result.main_type == "Object"
        assert not result.warnings

    def test_downcast_silent(self):
        # (A) applied to a static Object is a downcast: accepted without
        # warning, may fail at run time (and does, in bad-cast)
        result = typecheck_program(PROGRAMS["bad-cast"])
        assert result.main_type == "A"
        assert not result.warnings

    def test_stupid_cast_warned(self):
        p = parse_program(
            """
            class A extends Object { }
            class B extends Object { }
            (A) new B()
            """
        )
        result = typecheck_program(p)
        assert result.main_type == "A"
        assert any("stupid cast" in w for w in result.warnings)
