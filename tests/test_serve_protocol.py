"""Golden wire-protocol tests: every RPC method's bytes, pinned.

One scripted connection drives a freshly started server through every
method and every typed error shape -- success responses, ``parse-error``
for non-JSON, ``invalid-request`` for mis-shaped JSON,
``method-not-found``, ``invalid-params`` for a bad preset and a source
that does not parse, and the deterministic zero-budget ``timeout``.
Each exchange's response (with the declared-volatile fields masked --
timings, pid, interning counters; see
:data:`serve_helpers.GOLDEN_MASK`) must equal its fixture in
``tests/golden/serve/``, byte for byte after JSON normalization.

The script's *order* is part of the fixture contract: the ``stats``
golden pins the exact request/error/tier counters the preceding
exchanges produced, which is what makes the metrics discipline
(count requests at receipt, tiers at completion, nothing from orphaned
jobs) an enforced property rather than a comment.

Regenerate after an intentional protocol change with::

    REGEN_SERVE_GOLDENS=1 python -m pytest tests/test_serve_protocol.py

and review the fixture diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest
from serve_helpers import RawConnection, masked

from repro.serve.server import ServerHandle

GOLDEN_DIR = Path(__file__).parent / "golden" / "serve"
REGEN = os.environ.get("REGEN_SERVE_GOLDENS") == "1"

#: The full scripted conversation: (fixture name, raw request line).
#: Raw strings, not dicts -- the protocol layer's parsing is under test.
SCRIPT = [
    ("ping", '{"id": 1, "method": "ping"}'),
    ("error_method_not_found", '{"id": 2, "method": "transmogrify"}'),
    ("error_parse_error", "{"),
    ("error_invalid_request", "[1, 2, 3]"),
    (
        "error_bad_preset",
        '{"id": 5, "method": "analyse", "params": {"language": "cps", '
        '"corpus": "mj09", "preset": "9cfa-quantum"}}',
    ),
    (
        "error_parse_failure",
        '{"id": 6, "method": "analyse", "params": {"language": "lam", '
        '"source": "((("}}',
    ),
    (
        "error_timeout",
        '{"id": 7, "method": "analyse", "params": {"language": "cps", '
        '"corpus": "mj09", "preset": "1cfa", "timeout": 0}}',
    ),
    (
        "analyse_cold",
        '{"id": 8, "method": "analyse", "params": {"language": "cps", '
        '"corpus": "mj09", "preset": "1cfa", "label": "cps/mj09/1cfa"}}',
    ),
    (
        "analyse_hot",
        '{"id": 9, "method": "analyse", "params": {"language": "cps", '
        '"corpus": "mj09", "preset": "1cfa", "label": "cps/mj09/1cfa"}}',
    ),
    (
        "reanalyse_hit",
        '{"id": 10, "method": "reanalyse", "params": {"language": "cps", '
        '"corpus": "mj09", "preset": "1cfa", "label": "cps/mj09/1cfa"}}',
    ),
    (
        "batch",
        '{"id": 11, "method": "batch", "params": {"jobs": ['
        '{"language": "lam", "corpus": "eta", "preset": "0cfa", '
        '"label": "lam/eta/0cfa"}, '
        '{"language": "lam", "corpus": "eta", "preset": "0cfa", '
        '"label": "lam/eta/0cfa"}]}}',
    ),
    ("metrics", '{"id": 12, "method": "metrics"}'),
    ("stats", '{"id": 13, "method": "stats"}'),
    ("shutdown", '{"id": 14, "method": "shutdown"}'),
]


@pytest.fixture(scope="module")
def exchanges():
    """Run the whole script against one fresh server, in order."""
    import tempfile

    responses = {}
    with tempfile.TemporaryDirectory() as tmp:
        with ServerHandle(cache_dir=os.path.join(tmp, "cache"), workers=2) as handle:
            with RawConnection(handle.port) as raw:
                for name, line in SCRIPT:
                    responses[name] = masked(raw.exchange(line))
    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        for name, line in SCRIPT:
            fixture = {"send": line, "response": responses[name]}
            path = GOLDEN_DIR / f"{name}.json"
            path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    return responses


@pytest.mark.parametrize("name", [name for name, _line in SCRIPT])
def test_exchange_matches_golden(exchanges, name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"no golden fixture {path.name}; regenerate with "
        "REGEN_SERVE_GOLDENS=1 python -m pytest tests/test_serve_protocol.py"
    )
    fixture = json.loads(path.read_text())
    send = dict(SCRIPT)[name]
    assert fixture["send"] == send, f"{name}: script drifted from fixture"
    assert exchanges[name] == fixture["response"], name


def test_script_covers_every_method():
    """The golden script exercises the full method surface."""
    from repro.serve.protocol import METHODS

    sent = "\n".join(line for _name, line in SCRIPT)
    for method in METHODS:
        assert f'"{method}"' in sent, f"golden script never calls {method}"
