"""CPS terms: structure, free variables, traversals, alphatization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cps.parser import parse_cexp
from repro.cps.syntax import (
    Call,
    Exit,
    Lam,
    Ref,
    alphatize,
    call_sites,
    free_vars,
    is_closed,
    lambdas,
    pp,
    subterms,
    term_size,
    variables,
)

# -- a hypothesis strategy for random (possibly open) CPS terms -------------

var_names = st.sampled_from(["x", "y", "z", "k", "j"])


def cexps(depth=3):
    if depth == 0:
        return st.just(Exit())
    aexp = aexps(depth - 1)
    return st.one_of(
        st.just(Exit()),
        st.builds(lambda f, args: Call(f, tuple(args)), aexp, st.lists(aexp, max_size=2)),
    )


def aexps(depth=2):
    if depth == 0:
        return st.builds(Ref, var_names)
    return st.one_of(
        st.builds(Ref, var_names),
        st.builds(
            lambda params, body: Lam(tuple(dict.fromkeys(params)), body),
            st.lists(var_names, min_size=1, max_size=2),
            cexps(depth - 1),
        ),
    )


class TestStructure:
    def test_value_semantics(self):
        t1 = parse_cexp("((lambda (x k) (k x)) f g)")
        t2 = parse_cexp("((lambda (x k) (k x)) f g)")
        assert t1 == t2 and hash(t1) == hash(t2)

    def test_distinct_terms_differ(self):
        assert parse_cexp("(f a)") != parse_cexp("(f b)")

    def test_exit_is_singleton_like(self):
        assert Exit() == Exit()


class TestFreeVars:
    def test_ref(self):
        assert free_vars(Ref("x")) == frozenset(["x"])

    def test_lambda_binds(self):
        lam = parse_cexp("((lambda (x k) (k x)) a b)").fun
        assert free_vars(lam) == frozenset()

    def test_lambda_with_free(self):
        lam = Lam(("x",), Call(Ref("k"), (Ref("x"),)))
        assert free_vars(lam) == frozenset(["k"])

    def test_call_unions(self):
        assert free_vars(parse_cexp("(f a b)")) == frozenset(["f", "a", "b"])

    def test_exit_closed(self):
        assert free_vars(Exit()) == frozenset()

    def test_is_closed(self):
        assert is_closed(parse_cexp("((lambda (x k) (k x)) (lambda (y j) (j y)) (lambda (r) (exit)))"))
        assert not is_closed(parse_cexp("(f a)"))

    def test_shadowing(self):
        # inner x shadows; outer term still closed over x
        lam = Lam(("x",), Call(Lam(("x",), Call(Ref("x"), ())), (Ref("x"),)))
        assert free_vars(lam) == frozenset()


class TestTraversals:
    def setup_method(self):
        self.prog = parse_cexp(
            "((lambda (x k) (k x)) (lambda (y j) (j y)) (lambda (r) (exit)))"
        )

    def test_subterms_includes_self(self):
        assert self.prog in list(subterms(self.prog))

    def test_call_sites(self):
        sites = call_sites(self.prog)
        assert self.prog in sites
        assert all(isinstance(c, Call) for c in sites)
        assert len(sites) == 3  # outer, (k x), (j y)

    def test_lambdas(self):
        assert len(lambdas(self.prog)) == 3

    def test_variables(self):
        assert variables(self.prog) == frozenset(["x", "k", "y", "j", "r"])

    def test_term_size_positive(self):
        assert term_size(self.prog) > 5

    @given(cexps())
    def test_size_equals_subterm_count(self, t):
        assert term_size(t) == len(list(subterms(t)))


class TestPrettyPrinter:
    @given(cexps())
    def test_pp_parses_back(self, t):
        assert parse_cexp(pp(t)) == t

    def test_pp_shapes(self):
        assert pp(Exit()) == "(exit)"
        assert pp(Ref("x")) == "x"
        assert pp(Lam(("x",), Exit())) == "(lambda (x) (exit))"


class TestAlphatize:
    def test_unique_binders(self):
        # the same binder name used twice
        src = "((lambda (x k) (k x)) (lambda (x) (exit)) (lambda (x) (exit)))"
        t = alphatize(parse_cexp(src))
        binders = [p for lam in lambdas(t) for p in lam.params]
        assert len(binders) == len(set(binders))

    def test_preserves_structure(self):
        t = parse_cexp("((lambda (x k) (k x)) (lambda (y j) (j y)) (lambda (r) (exit)))")
        renamed = alphatize(t)
        assert term_size(renamed) == term_size(t)
        assert len(call_sites(renamed)) == len(call_sites(t))

    @given(cexps())
    def test_free_vars_preserved(self, t):
        assert free_vars(alphatize(t)) == free_vars(t)

    @given(cexps())
    def test_alphatize_makes_binders_unique(self, t):
        renamed = alphatize(t)
        binders = [p for lam in lambdas(renamed) for p in lam.params]
        assert len(binders) == len(set(binders))
