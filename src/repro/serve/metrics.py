"""The resident server's counter surface (the ``stats`` method's backing).

One :class:`ServerMetrics` instance per server, shared by every worker
thread, so there is exactly one place request counts, per-tier serving
counts, error counts, and latency percentiles accumulate -- the same
single-counter-source discipline the fixpoint cache follows (its
``lifetime`` block), extended to the protocol layer.

Counting discipline (load-bearing for the golden protocol tests):
requests are counted at *receipt* and errors/tiers/latencies at
*handler completion* -- all on the event-loop side, never inside the
worker job.  A timed-out request therefore contributes one request, one
``timeout`` error, and nothing else, even though its orphaned worker job
may still be running (and eventually finishing) when the next ``stats``
request is answered: counters reflect what the server *said*, which is
the only thing a deterministic test can pin.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict


def percentile(samples: list[float], fraction: float) -> float:
    """The nearest-rank percentile of a sample list (0 for no samples)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServerMetrics:
    """Thread-safe request/tier/error/latency accounting for one server."""

    #: Per-method latency samples kept for the percentiles; older samples
    #: roll off so a long-lived daemon's stats stay O(1) and current.
    MAX_SAMPLES = 1024

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests: dict[str, int] = defaultdict(int)
        self.errors: dict[str, int] = defaultdict(int)
        self.tiers: dict[str, int] = defaultdict(int)
        self._latencies: dict[str, list[float]] = defaultdict(list)
        self._evaluations = 0
        self._dedup_hits = 0
        self._max_rank = 0

    def record_request(self, method: str) -> None:
        """Count one request at receipt (before any validation or work)."""
        with self._lock:
            self.requests[method] += 1

    def record_error(self, name: str) -> None:
        """Count one error response by its stable protocol name."""
        with self._lock:
            self.errors[name] += 1

    def record_tier(self, tier: str) -> None:
        """Count which tier answered (hot | disk | warm | cold)."""
        with self._lock:
            self.tiers[tier] += 1

    def record_work(self, stats: dict) -> None:
        """Accumulate one outcome's engine-work counters (handler side).

        ``evaluations``/``dedup_hits`` sum across every analysed job
        (cache-served outcomes carry no stats and contribute nothing);
        ``max_rank`` keeps the deepest dependency rank any served
        analysis reached.  Together they make the scheduling win
        observable from the ``stats`` method without touching per-job
        report rows.
        """
        with self._lock:
            self._evaluations += stats.get("evaluations") or 0
            self._dedup_hits += stats.get("dedup_hits") or 0
            rank = stats.get("max_rank") or 0
            if rank > self._max_rank:
                self._max_rank = rank

    def record_latency(self, method: str, seconds: float) -> None:
        """Record one successful request's wall-clock service time."""
        with self._lock:
            samples = self._latencies[method]
            samples.append(seconds)
            if len(samples) > self.MAX_SAMPLES:
                del samples[: len(samples) - self.MAX_SAMPLES]

    def snapshot(self) -> dict:
        """One consistent stats document (the ``stats`` method's core).

        ``latency`` values are rounded to microseconds: precise enough
        for any consumer, and it keeps the document shape stable.
        """
        with self._lock:
            return {
                "uptime_seconds": round(time.monotonic() - self._started, 6),
                "requests": dict(sorted(self.requests.items())),
                "errors": dict(sorted(self.errors.items())),
                "tiers": dict(sorted(self.tiers.items())),
                "work": {
                    "evaluations": self._evaluations,
                    "dedup_hits": self._dedup_hits,
                    "max_rank": self._max_rank,
                },
                "latency": {
                    method: {
                        "count": len(samples),
                        "p50": round(percentile(samples, 0.50), 6),
                        "p99": round(percentile(samples, 0.99), 6),
                    }
                    for method, samples in sorted(self._latencies.items())
                },
            }
