"""``StoreLike`` instances: basic, counting and versioned stores (6.2-6.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import AbsNat
from repro.core.store import (
    BasicStore,
    CountingStore,
    GCOverlay,
    MutableStore,
    RecordingStore,
    VersionedCountingStore,
    VersionedStore,
)
from repro.util.pcollections import PMap, pmap

values = st.frozensets(st.integers(0, 5), min_size=1, max_size=3)
addrs = st.sampled_from(["a", "b", "c"])
#: a random script of (addr, value-set) bind operations
bind_scripts = st.lists(st.tuples(addrs, values), max_size=8)


class TestBasicStore:
    def setup_method(self):
        self.s = BasicStore()

    def test_empty_fetch_is_bottom(self):
        assert self.s.fetch(self.s.empty(), "a") == frozenset()

    def test_bind_then_fetch(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        assert self.s.fetch(store, "a") == frozenset([1])

    def test_bind_joins(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "a", frozenset([2]))
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_replace_overwrites(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1, 2]))
        store = self.s.replace(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([9])

    def test_bind_one_wraps_singleton(self):
        store = self.s.bind_one(self.s.empty(), "a", 7)
        assert self.s.fetch(store, "a") == frozenset([7])

    def test_filter_store(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "b", frozenset([2]))
        filtered = self.s.filter_store(store, lambda addr: addr == "a")
        assert set(self.s.addresses(filtered)) == {"a"}

    def test_update_defaults_to_weak(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.update(store, "a", frozenset([2]))
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_store_lattice_join(self):
        lat = self.s.lattice()
        s1 = self.s.bind(self.s.empty(), "a", frozenset([1]))
        s2 = self.s.bind(self.s.empty(), "a", frozenset([2]))
        joined = lat.join(s1, s2)
        assert self.s.fetch(joined, "a") == frozenset([1, 2])

    @given(bind_scripts)
    def test_fetch_returns_join_of_all_binds(self, script):
        store = self.s.empty()
        expected: dict = {}
        for addr, d in script:
            store = self.s.bind(store, addr, d)
            expected[addr] = expected.get(addr, frozenset()) | d
        for addr, d in expected.items():
            assert self.s.fetch(store, addr) == d

    @given(bind_scripts, addrs, values)
    def test_bind_monotone(self, script, addr, d):
        store = self.s.empty()
        for a, v in script:
            store = self.s.bind(store, a, v)
        bigger = self.s.bind(store, addr, d)
        assert self.s.lattice().leq(store, bigger)


class TestCountingStore:
    def setup_method(self):
        self.s = CountingStore()

    def test_unbound_counts_zero(self):
        assert self.s.count(self.s.empty(), "a") is AbsNat.ZERO

    def test_single_bind_counts_one(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        assert self.s.count(store, "a") is AbsNat.ONE
        assert self.s.fetch(store, "a") == frozenset([1])

    def test_double_bind_counts_many(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "a", frozenset([2]))
        assert self.s.count(store, "a") is AbsNat.MANY
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_replace_preserves_count(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.replace(store, "a", frozenset([9]))
        assert self.s.count(store, "a") is AbsNat.ONE
        assert self.s.fetch(store, "a") == frozenset([9])

    def test_update_is_strong_when_count_is_one(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.update(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([9])  # strong update

    def test_update_is_weak_when_count_is_many(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "a", frozenset([2]))
        store = self.s.update(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([1, 2, 9])  # weak update

    def test_singleton_addresses(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "b", frozenset([2]))
        store = self.s.bind(store, "b", frozenset([3]))
        assert self.s.singleton_addresses(store) == frozenset(["a"])

    def test_filter_store(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "b", frozenset([2]))
        filtered = self.s.filter_store(store, lambda addr: addr == "b")
        assert set(self.s.addresses(filtered)) == {"b"}
        assert self.s.count(filtered, "a") is AbsNat.ZERO

    def test_store_lattice_joins_counts(self):
        lat = self.s.lattice()
        s1 = self.s.bind(self.s.empty(), "a", frozenset([1]))
        s2 = self.s.bind(self.s.empty(), "a", frozenset([2]))
        joined = lat.join(s1, s2)
        # joining two independent single allocations cannot prove singleness
        # beyond ONE join ONE = ONE (the lattice join, not abstract addition)
        assert self.s.fetch(joined, "a") == frozenset([1, 2])
        assert self.s.count(joined, "a") is AbsNat.ONE

    @given(bind_scripts)
    def test_count_matches_number_of_binds(self, script):
        store = self.s.empty()
        per_addr: dict = {}
        for addr, d in script:
            store = self.s.bind(store, addr, d)
            per_addr[addr] = per_addr.get(addr, 0) + 1
        for addr, n in per_addr.items():
            expected = AbsNat.ONE if n == 1 else AbsNat.MANY
            assert self.s.count(store, addr) is expected

    @given(bind_scripts)
    def test_value_sets_agree_with_basic_store(self, script):
        basic = BasicStore()
        counting = CountingStore()
        bs, cs = basic.empty(), counting.empty()
        for addr, d in script:
            bs = basic.bind(bs, addr, d)
            cs = counting.bind(cs, addr, d)
        for addr, _ in script:
            assert basic.fetch(bs, addr) == counting.fetch(cs, addr)


class TestVersionedStore:
    def setup_method(self):
        self.s = VersionedStore()

    def test_empty_fetch_is_bottom(self):
        assert self.s.fetch(self.s.empty(), "a") == frozenset()
        assert self.s.empty().version("a") == 0

    def test_bind_mutates_in_place(self):
        store = self.s.empty()
        assert self.s.bind(store, "a", frozenset([1])) is store
        assert self.s.fetch(store, "a") == frozenset([1])

    def test_bind_bumps_version_and_logs_only_on_growth(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        assert store.version("a") == 1 and store.changelog == ["a"]
        # a subset re-bind adds nothing: no bump, no log entry
        self.s.bind(store, "a", frozenset([1]))
        assert store.version("a") == 1 and store.changelog == ["a"]
        self.s.bind(store, "a", frozenset([2]))
        assert store.version("a") == 2 and store.changelog == ["a", "a"]
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_mark_and_changed_since(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        mark = store.mark()
        self.s.bind(store, "a", frozenset([1]))  # no growth
        assert store.changed_since(mark) == []
        self.s.bind(store, "b", frozenset([2]))
        self.s.bind(store, "a", frozenset([3]))
        assert store.changed_since(mark) == ["b", "a"]

    def test_replace_overwrites_and_bumps(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1, 2]))
        self.s.replace(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([9])
        assert store.version("a") == 2
        # replacing with an equal value changes nothing
        self.s.replace(store, "a", frozenset([9]))
        assert store.version("a") == 2

    def test_freeze_and_fetch_from_snapshot(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        snapshot = self.s.freeze(store)
        assert isinstance(snapshot, PMap)
        assert self.s.fetch(snapshot, "a") == frozenset([1])
        assert self.s.fetch(snapshot, "missing") == frozenset()
        assert set(self.s.addresses(snapshot)) == {"a"}

    def test_thaw_copies(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        thawed = self.s.thaw(store)
        assert thawed is not store
        self.s.bind(thawed, "a", frozenset([2]))
        assert self.s.fetch(store, "a") == frozenset([1])
        # thawing a frozen snapshot works too
        from_snapshot = self.s.thaw(self.s.freeze(store))
        assert isinstance(from_snapshot, MutableStore)
        assert self.s.fetch(from_snapshot, "a") == frozenset([1])

    def test_filter_store(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        self.s.bind(store, "b", frozenset([2]))
        filtered = self.s.filter_store(store, lambda addr: addr == "b")
        assert set(self.s.addresses(filtered)) == {"b"}

    @given(bind_scripts)
    def test_freeze_agrees_with_basic_store(self, script):
        basic = BasicStore()
        versioned = VersionedStore()
        bs, vs = basic.empty(), versioned.empty()
        for addr, d in script:
            bs = basic.bind(bs, addr, d)
            versioned.bind(vs, addr, d)
        assert versioned.freeze(vs) == bs

    @given(bind_scripts)
    def test_versions_are_monotone_and_track_growth(self, script):
        versioned = VersionedStore()
        store = versioned.empty()
        history: dict = {}
        for addr, d in script:
            before_value = versioned.fetch(store, addr)
            before_version = store.version(addr)
            versioned.bind(store, addr, d)
            after_value = versioned.fetch(store, addr)
            # value sets only grow, versions never decrease
            assert before_value <= after_value
            assert store.version(addr) >= before_version
            # the version bumps exactly when the value set changed
            assert (store.version(addr) > before_version) == (
                after_value != before_value
            )
            history[addr] = after_value
        # the changelog length is the total number of value changes
        assert store.mark() == sum(store.versions.values())


class TestRecordingStoreBracketing:
    def test_nested_begin_log_raises(self):
        recorder = RecordingStore(BasicStore())
        recorder.begin_log()
        with pytest.raises(RuntimeError, match="already open"):
            recorder.begin_log()
        # the open bracket survives the failed reentry intact
        recorder.bind(recorder.empty(), "a", frozenset([1]))
        reads, writes = recorder.end_log()
        assert writes == frozenset(["a"]) and reads == frozenset()

    def test_sequential_brackets_are_fine(self):
        recorder = RecordingStore(BasicStore())
        sigma = recorder.empty()
        recorder.begin_log()
        sigma = recorder.bind(sigma, "a", frozenset([1]))
        recorder.end_log()
        recorder.begin_log()
        recorder.fetch(sigma, "a")
        reads, writes = recorder.end_log()
        assert reads == frozenset(["a"]) and writes == frozenset()


class TestVersionedCountingStore:
    """The counting co-domain on the mutable/versioned representation."""

    def setup_method(self):
        self.s = VersionedCountingStore()

    def test_bind_counts_like_counting_store(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        assert self.s.fetch(store, "a") == frozenset([1])
        assert self.s.count(store, "a") is AbsNat.ONE
        self.s.bind(store, "a", frozenset([2]))
        assert self.s.fetch(store, "a") == frozenset([1, 2])
        assert self.s.count(store, "a") is AbsNat.MANY

    def test_unbound_count_is_zero(self):
        assert self.s.count(self.s.empty(), "a") is AbsNat.ZERO
        assert self.s.fetch(self.s.empty(), "a") == frozenset()

    def test_changelog_records_value_growth_only(self):
        """A count-only change is invisible to ``fetch``, so it must not
        retrigger readers: the changelog skips it."""
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        assert store.changelog == ["a"]
        self.s.bind(store, "a", frozenset([1]))  # count ONE -> MANY, value same
        assert self.s.count(store, "a") is AbsNat.MANY
        assert store.changelog == ["a"]  # no new entry
        self.s.bind(store, "a", frozenset([2]))  # value grows
        assert store.changelog == ["a", "a"]

    def test_update_is_strong_exactly_at_count_one(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        self.s.update(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([9])  # strong
        self.s.bind(store, "b", frozenset([1]))
        self.s.bind(store, "b", frozenset([1]))
        self.s.update(store, "b", frozenset([9]))
        assert self.s.fetch(store, "b") == frozenset([1, 9])  # weak

    def test_merge_entry_joins_without_double_bump(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        self.s.merge_entry(store, "a", (frozenset([1]), AbsNat.ONE))
        # an entry-level join is not an allocation: count stays ONE
        assert self.s.count(store, "a") is AbsNat.ONE
        self.s.merge_entry(store, "a", (frozenset([2]), AbsNat.MANY))
        assert self.s.fetch(store, "a") == frozenset([1, 2])
        assert self.s.count(store, "a") is AbsNat.MANY

    def test_saturate_bumps_only_named_present_addresses(self):
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        self.s.bind(store, "b", frozenset([2]))
        self.s.saturate(store, ["a", "ghost"])
        assert self.s.count(store, "a") is AbsNat.MANY
        assert self.s.count(store, "b") is AbsNat.ONE
        assert "ghost" not in store

    def test_freeze_matches_counting_store_shape(self):
        persistent = CountingStore()
        p = persistent.bind(persistent.empty(), "a", frozenset([1]))
        p = persistent.bind(p, "a", frozenset([2]))
        store = self.s.empty()
        self.s.bind(store, "a", frozenset([1]))
        self.s.bind(store, "a", frozenset([2]))
        assert self.s.freeze(store) == p

    @given(bind_scripts)
    def test_versions_track_value_changes_exactly(self, script):
        versioned = VersionedCountingStore()
        store = versioned.empty()
        for addr, d in script:
            before_value = versioned.fetch(store, addr)
            before_version = store.version(addr)
            before_count = versioned.count(store, addr)
            versioned.bind(store, addr, d)
            after_value = versioned.fetch(store, addr)
            # value sets and counts only grow, versions never decrease
            assert before_value <= after_value
            assert before_count <= versioned.count(store, addr)
            assert store.version(addr) >= before_version
            # the version bumps exactly when the value set changed
            assert (store.version(addr) > before_version) == (
                after_value != before_value
            )
        assert store.mark() == sum(store.versions.values())


class TestGCOverlay:
    def test_reads_fall_through_to_the_base(self):
        versioned = VersionedStore()
        base = versioned.empty()
        versioned.bind(base, "a", frozenset([1]))
        overlay = GCOverlay(base)
        assert versioned.fetch(overlay, "a") == frozenset([1])
        assert "a" in overlay and len(overlay) == 1

    def test_writes_stay_private_until_merged(self):
        versioned = VersionedStore()
        base = versioned.empty()
        versioned.bind(base, "a", frozenset([1]))
        overlay = GCOverlay(base)
        versioned.bind(overlay, "b", frozenset([2]))
        versioned.bind(overlay, "a", frozenset([3]))
        # the overlay sees both writes, joined over the base values
        assert versioned.fetch(overlay, "b") == frozenset([2])
        assert versioned.fetch(overlay, "a") == frozenset([1, 3])
        # the base saw nothing
        assert versioned.fetch(base, "a") == frozenset([1])
        assert "b" not in base
        assert overlay.written() == {
            "b": frozenset([2]),
            "a": frozenset([1, 3]),
        }

    def test_no_growth_write_records_nothing(self):
        versioned = VersionedStore()
        base = versioned.empty()
        versioned.bind(base, "a", frozenset([1]))
        overlay = GCOverlay(base)
        versioned.bind(overlay, "a", frozenset([1]))  # subset: no growth
        assert overlay.written() == {}

    def test_merge_entry_propagates_live_writes(self):
        versioned = VersionedStore()
        base = versioned.empty()
        versioned.bind(base, "a", frozenset([1]))
        overlay = GCOverlay(base)
        versioned.bind(overlay, "a", frozenset([2]))
        mark = base.mark()
        for addr, entry in overlay.written().items():
            versioned.merge_entry(base, addr, entry)
        assert versioned.fetch(base, "a") == frozenset([1, 2])
        assert base.changed_since(mark) == ["a"]


class TestRecordingStoreGCRoots:
    """Regression: the GC root computation must see every read-log entry,
    including reads of addresses first bound *after* the log opened.

    The engine-side GC sweep runs inside the read/write-log bracket and
    its fetches -- which visit this evaluation's own fresh bindings
    through the overlay -- are the dependency roots.  A sweep performed
    after ``end_log``, or a ``fetch`` that skipped logging because the
    address was already in the write log, would silently drop those
    roots and the dependency-tracked engine would never retrigger the
    configuration (found while wiring GC into the worklist path;
    minimized here and pinned end-to-end below).
    """

    def test_fetch_of_address_bound_after_log_opened_is_recorded(self):
        recorder = RecordingStore(BasicStore())
        sigma = recorder.empty()
        recorder.begin_log()
        sigma = recorder.bind(sigma, "fresh", frozenset(["v"]))
        recorder.fetch(sigma, "fresh")
        reads, writes = recorder.end_log()
        assert "fresh" in writes
        assert "fresh" in reads  # the write must not shadow the read

    def test_gc_sweep_reads_land_in_the_open_log(self):
        from repro.core.gc import reachable_addresses

        recorder = RecordingStore(BasicStore())
        touched = lambda v: frozenset(v[1])  # noqa: E731
        sigma = recorder.bind(recorder.empty(), "root", frozenset([("clo", ("mid",))]))
        recorder.begin_log()
        # "mid" is bound after the log opened, then swept through
        sigma = recorder.bind(sigma, "mid", frozenset([("clo", ("leaf",))]))
        sigma = recorder.bind(sigma, "leaf", frozenset([("clo", ())]))
        live = reachable_addresses(recorder, sigma, frozenset(["root"]), touched)
        reads, _writes = recorder.end_log()
        assert live == frozenset(["root", "mid", "leaf"])
        assert frozenset(["root", "mid", "leaf"]) <= reads

    def test_versioned_gc_engine_retriggers_through_swept_only_address(self):
        """End-to-end minimization on the raw engine with a fake domain.

        Configuration A binds ``cell`` and its successor's GC sweep reads
        it -- that sweep read is A's *only* dependency on ``cell``.  When
        B later grows ``cell``, the engine must retrigger A (whose second
        evaluation reveals an extra successor).  If the sweep ran outside
        the bracket, the dependency would be missed and the extra
        successor never found.
        """
        from repro.core.fixpoint import global_store_explore

        versioned = VersionedStore()
        recorder = RecordingStore(versioned)

        class Touching:
            def touched_by_state(self, pstate):
                return frozenset(["cell"]) if pstate.startswith("S") else frozenset()

            def touched_by_value(self, value):
                return frozenset()

        class Collector:
            touching = Touching()

        class Inner:
            store_like = recorder
            collector = Collector()
            a_evals = 0

            def run_config_pairs(self, step, config, instrument=True):
                (pstate, guts), store = config
                if pstate == "A":
                    Inner.a_evals += 1
                    recorder.bind(store, "cell", frozenset(["v-from-A"]))
                    if Inner.a_evals > 1:
                        return [("SA", 0), ("EXTRA", 0)]
                    return [("SA", 0)]
                if pstate == "B":
                    recorder.bind(store, "cell", frozenset(["v-from-B"]))
                    return [("SB", 0)]
                return []

        class Domain:
            inner = Inner()

            def inject(self, initial):
                return (frozenset([("A", 0), ("B", 0)]), pmap())

        fp_states = {
            pstate
            for (pstate, _guts) in global_store_explore(Domain(), None, "ignored")[0]
        }
        assert "EXTRA" in fp_states


class TestSnapshotRestore:
    """The warm-start boundary: snapshot/restore on the mutable store."""

    def test_snapshot_is_an_immutable_image(self):
        from repro.core.store import VersionedStore

        vs = VersionedStore()
        store = vs.empty()
        vs.bind(store, "a", frozenset([1]))
        snap = store.snapshot()
        vs.bind(store, "a", frozenset([2]))
        vs.bind(store, "b", frozenset([3]))
        assert snap.data == {"a": frozenset([1])}
        assert snap.versions == {"a": 1}
        assert "b" not in snap.data

    def test_restore_resumes_versions_with_an_empty_changelog(self):
        from repro.core.store import MutableStore, VersionedStore

        vs = VersionedStore()
        store = vs.empty()
        vs.bind(store, "a", frozenset([1]))
        vs.bind(store, "a", frozenset([2]))
        resumed = MutableStore.restore(store.snapshot())
        assert resumed.mark() == 0
        assert resumed.changed_since(0) == []
        assert resumed.version("a") == 2  # history continues, not restarts
        # a bind that adds nothing neither bumps nor logs
        vs.bind(resumed, "a", frozenset([1]))
        assert resumed.changed_since(0) == []
        # genuine growth since the snapshot is exactly what the changelog shows
        vs.bind(resumed, "a", frozenset([9]))
        vs.bind(resumed, "c", frozenset([0]))
        assert resumed.changed_since(0) == ["a", "c"]
        assert resumed.version("a") == 3

    def test_of_mapping_wraps_unknown_history(self):
        from repro.core.store import MutableStore, StoreSnapshot
        from repro.util.pcollections import pmap

        snap = StoreSnapshot.of_mapping(pmap({"a": frozenset([1])}))
        assert snap.versions == {"a": 1}
        resumed = MutableStore.restore(snap)
        assert resumed.get("a") == frozenset([1])
        assert StoreSnapshot.of_mapping(resumed).data == snap.data

    def test_snapshots_pickle(self):
        import pickle

        from repro.core.store import StoreSnapshot
        from repro.util.pcollections import pmap

        snap = StoreSnapshot.of_mapping(pmap({"a": frozenset([1])}))
        loaded = pickle.loads(pickle.dumps(snap))
        assert loaded == snap
