"""The hash-consing layer: cached hashes, identity-fast equality, interning.

The contract is that :func:`repro.util.intern.hash_consed` and
:func:`repro.util.intern.intern` change the *cost* of hashing and
equality, never their meaning: structural equality, structural hashes
and reprs are untouched, which is what lets the layer sit under every
syntax node, machine state and address without a semantics test
noticing (the interned-vs-plain equivalence tests in
``tests/test_engines.py`` check exactly that end to end).
"""

import dataclasses
import pickle

from repro.core.addresses import Binding
from repro.cps.parser import parse_cexp
from repro.cps.semantics import PState, inject
from repro.cps.syntax import Call, Exit, Lam, Ref
from repro.util.intern import _HASH_SLOT, intern, intern_pool_size
from repro.util.pcollections import pmap

MJ09_SRC = """
((lambda (id k)
   (id (lambda (z kz) (kz z))
       (lambda (a)
         (id (lambda (y ky) (ky y))
             (lambda (b) (exit))))))
 (lambda (x j) (j x))
 (lambda (r) (exit)))
"""


def rebuild(value):
    """A structurally equal but pointer-fresh (un-interned) copy."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: rebuild(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
        return type(value)(**fields)
    if isinstance(value, tuple):
        return tuple(rebuild(item) for item in value)
    return value


class TestHashConsed:
    def test_hash_is_memoized_at_construction(self):
        node = Ref("x")
        assert object.__getattribute__(node, _HASH_SLOT) == hash(node)

    def test_hash_and_eq_stay_structural(self):
        a = Call(Ref("f"), (Ref("x"),))
        b = rebuild(a)
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_values_stay_unequal(self):
        assert Ref("x") != Ref("y")
        assert Lam(("v",), Exit()) != Lam(("w",), Exit())

    def test_deep_chain_hashes_without_recursion_blowup(self):
        # eager (bottom-up) memoization: hashing a 3000-deep term must not
        # recurse through the whole spine
        body = Exit()
        for i in range(3000):
            body = Call(Ref(f"f{i}"), (Lam((f"v{i}",), body),))
        assert isinstance(hash(body), int)

    def test_pickle_strips_and_recomputes_the_memo(self):
        # string hashes are per-process-randomized, so the memo must not
        # travel in the pickle; the lazy fallback recomputes it on demand
        node = Call(Ref("f"), (Ref("x"),))
        assert _HASH_SLOT.encode() not in pickle.dumps(node)
        clone = pickle.loads(pickle.dumps(node))
        assert clone == node and hash(clone) == hash(node)

    def test_hash_recomputed_when_memo_missing(self):
        # the lazy fallback (e.g. instances materialized without __init__)
        node = Ref("zz")
        expected = hash(node)
        object.__delattr__(node, _HASH_SLOT)
        assert hash(node) == expected

    def test_machine_states_and_addresses_are_cached_too(self):
        state = inject(parse_cexp(MJ09_SRC))
        addr = Binding("x", ("call-site",))
        assert object.__getattribute__(state, _HASH_SLOT) == hash(state)
        assert object.__getattribute__(addr, _HASH_SLOT) == hash(addr)

    def test_pstate_eq_is_identity_fast_on_self(self):
        state = PState(Exit(), pmap())
        assert state == state


class TestIntern:
    def test_intern_canonicalizes_equal_values(self):
        a = intern(Call(Ref("g"), (Ref("q"),)))
        b = intern(rebuild(a))
        assert a is b

    def test_intern_keeps_distinct_values_distinct(self):
        assert intern(Ref("only-a")) is not intern(Ref("only-b"))

    def test_parser_interns_shared_subterms(self):
        # the same source parsed twice yields pointer-identical trees
        t1 = parse_cexp(MJ09_SRC)
        t2 = parse_cexp(MJ09_SRC)
        assert t1 is t2

    def test_repeated_subterms_are_shared_within_one_parse(self):
        term = parse_cexp("((lambda (x k) (k x)) (lambda (x k) (k x)) (lambda (r) (exit)))")
        fun, arg = term.fun, term.args[0]
        assert fun is arg

    def test_pool_grows_monotonically(self):
        before = intern_pool_size()
        intern(Ref("fresh-pool-entry"))
        assert intern_pool_size() >= before


class TestPoolLifecycle:
    """``intern_stats`` / ``clear_intern_pool``: the pool in long-lived hosts.

    The pool is a global, unbounded, strong-reference dict -- fine for
    batch corpus analyses, unacceptable for a service that parses
    unboundedly many distinct programs.  These tests pin the escape
    hatch: stats expose growth, clearing bounds it, and clearing never
    breaks the identity-fast ``__eq__`` (equality stays structural; only
    cross-boundary pointer identity is lost).
    """

    def test_intern_stats_shape(self):
        from repro.util.intern import intern_stats

        stats = intern_stats()
        assert set(stats) == {"size", "hits", "misses"}
        assert stats["size"] == intern_pool_size()

    def test_stats_count_hits_and_misses(self):
        from repro.util.intern import intern_stats

        before = intern_stats()
        intern(Ref("stats-miss-probe"))  # new: a miss
        intern(Ref("stats-miss-probe"))  # equal again: a hit
        after = intern_stats()
        assert after["misses"] >= before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1

    def test_reinterning_the_canonical_object_is_a_hit(self):
        """misses == total pool growth: re-canonicalizing the canonical
        object itself must not count as a miss."""
        from repro.util.intern import intern_stats

        canonical = intern(Ref("canonical-hit-probe"))
        before = intern_stats()
        assert intern(canonical) is canonical
        after = intern_stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1
        assert after["size"] == before["size"]

    def test_clear_empties_the_pool_but_stats_accumulate(self):
        from repro.util.intern import clear_intern_pool, intern_stats

        intern(Ref("clear-probe"))
        grown = intern_stats()
        assert grown["size"] > 0
        clear_intern_pool()
        cleared = intern_stats()
        assert cleared["size"] == 0
        # hits/misses survive the clear: traffic is observable for the
        # process's whole life even when the pool itself is bounded
        assert cleared["misses"] >= grown["misses"]

    def test_clear_does_not_break_identity_fast_eq(self):
        from repro.util.intern import clear_intern_pool

        old = intern(Ref("survivor"))
        clear_intern_pool()
        new = intern(Ref("survivor"))
        # canonical representatives diverge across the boundary ...
        assert new is not old
        # ... but equality and hashing stay structural in every mix
        assert new == old and old == new
        assert hash(new) == hash(old)
        assert len({new, old}) == 1
        # and the identity fast path still fires within each epoch
        assert intern(Ref("survivor")) is new

    def test_clear_keeps_memoized_hashes_valid(self):
        from repro.util.intern import clear_intern_pool

        term = parse_cexp("((lambda (x k) (k x)) (lambda (y j) (j y)) (lambda (r) (exit)))")
        h = hash(term)
        clear_intern_pool()
        assert hash(term) == h  # the memo lives on the instance, not the pool
        assert term == parse_cexp(
            "((lambda (x k) (k x)) (lambda (y j) (j y)) (lambda (r) (exit)))"
        )


class TestRehydrate:
    """``rehydrate``: unpickled graphs become pool-canonical again."""

    def test_unpickled_term_is_equal_but_not_canonical(self):
        """The documented hazard, in-process: a pickle round trip yields a
        distinct object whose every comparison is a full structural walk."""
        from repro.util.intern import rehydrate

        term = intern(parse_cexp("((lambda (x k) (k x)) (lambda (z j) (j z)) (lambda (r) (exit)))"))
        copy = pickle.loads(pickle.dumps(term))
        assert copy == term and hash(copy) == hash(term)
        assert copy is not term
        assert rehydrate(copy) is term

    def test_rehydrate_recurses_through_containers(self):
        from repro.util.intern import rehydrate

        lam = intern(parse_cexp("((lambda (x k) (exit)) (lambda (z j) (exit)) (lambda (r) (exit)))"))
        nest = pickle.loads(
            pickle.dumps((frozenset([lam]), pmap({"k": (lam, [lam])}), {"d": lam}))
        )
        fs, pm, d = rehydrate(nest)
        assert next(iter(fs)) is lam
        assert pm["k"][0] is lam and pm["k"][1][0] is lam
        assert d["d"] is lam

    def test_rehydrate_is_deep_safe(self):
        """Chain-shaped terms far past the *default* recursion limit
        rehydrate fine: the walk is iterative.  (The pickle round trip
        itself recurses, which is why every service-layer pickle boundary
        calls ``ensure_deep_pickle`` first -- as here.)"""
        from repro.corpus.cps_programs import id_chain
        from repro.service.cache import ensure_deep_pickle
        from repro.util.intern import rehydrate

        ensure_deep_pickle()
        deep = id_chain(600)
        assert rehydrate(pickle.loads(pickle.dumps(deep))) is deep

    def test_rehydrate_preserves_atoms_and_unknown_objects(self):
        from repro.util.intern import rehydrate

        opaque = object()
        assert rehydrate(42) == 42
        assert rehydrate("x") == "x"
        assert rehydrate(opaque) is opaque

    def test_rehydrate_shares_across_duplicates(self):
        """Two structurally equal unpickled copies map to one canonical
        object."""
        from repro.util.intern import rehydrate

        term = intern(parse_cexp("((lambda (x k) (exit)) (lambda (z j) (exit)) (lambda (r) (exit)))"))
        one = pickle.loads(pickle.dumps(term))
        two = pickle.loads(pickle.dumps(term))
        a, b = rehydrate((one, two))
        assert a is b is term
