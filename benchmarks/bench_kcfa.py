"""E3 -- the k-CFA family from one ``Addressable`` swap (8.1, 2.4.1).

Claims regenerated: (1) swapping only the address/context policy yields
the whole k-CFA family; (2) precision improves monotonically with k on
context-sensitive programs (mj09, id-chains); (3) state counts and time
grow with k.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, precision_summary, timed
from repro.cps.analysis import analyse_kcfa, analyse_shared, analyse_with_engine
from repro.corpus.cps_programs import PROGRAMS, id_chain


def test_e3_k_sweep_mj09(benchmark):
    program = PROGRAMS["mj09"]

    def run():
        return {k: analyse_kcfa(program, k) for k in (0, 1, 2)}

    results = run_once(benchmark, run)
    rows = []
    for k, result in sorted(results.items()):
        flows = result.flows_to()
        summary = precision_summary(flows)
        rows.append((f"k={k}", result.num_states(), len(flows["a"]), len(flows["b"]), summary["mean_flow"]))
    print()
    print(fmt_table(["analysis", "states", "|flows(a)|", "|flows(b)|", "mean flow"], rows))
    # paper shape: 0CFA conflates (2 lambdas reach a and b), k>=1 is exact
    assert rows[0][2] == 2 and rows[1][2] == 1 and rows[2][2] == 1


def test_e3_k_sweep_id_chain(benchmark):
    # id-chains under monovariant *per-state* stores clone exponentially
    # (continuation merging times heap cloning), so this sweep uses the
    # single-threaded store -- standard practice, and sound (E4).
    program = id_chain(6)

    def run():
        return {k: analyse_shared(program, k) for k in (0, 1)}

    results = run_once(benchmark, run)
    f0 = precision_summary(results[0].flows_to())
    f1 = precision_summary(results[1].flows_to())
    print()
    print(
        fmt_table(
            ["analysis", "states", "mean flow", "max flow"],
            [
                ("0CFA", results[0].num_states(), f0["mean_flow"], f0["max_flow"]),
                ("1CFA", results[1].num_states(), f1["mean_flow"], f1["max_flow"]),
            ],
        )
    )
    # monovariance merges all 6 chain arguments through the shared parameter
    assert f0["max_flow"] == 6
    assert f1["mean_flow"] < f0["mean_flow"]


def test_e3_cost_grows_with_k(benchmark):
    program = id_chain(5)

    def run():
        out = {}
        for k in (0, 1, 2):
            result, seconds = timed(lambda k=k: analyse_shared(program, k))
            out[k] = (result.num_elements(), seconds)
        return out

    costs = run_once(benchmark, run)
    rows = [(f"k={k}", elements, f"{seconds:.4f}s") for k, (elements, seconds) in sorted(costs.items())]
    print()
    print(fmt_table(["analysis", "fixed-point size", "time"], rows))
    # finer contexts can only refine (split) the configuration space
    assert costs[2][0] >= costs[1][0] >= costs[0][0] > 0


def test_e3_depgraph_engine_speedup_k1(benchmark):
    # the global-store worklist with dependency tracking computes the same
    # widened fixed point as Kleene iteration but re-evaluates only the
    # configurations whose store reads changed; at k=1 on the id-chain
    # family this is an order of magnitude, asserted conservatively at 2x
    program = id_chain(10)

    def run():
        kleene, t_kleene = timed(lambda: analyse_shared(program, 1))
        stats = {}
        depgraph, t_depgraph = timed(
            lambda: analyse_with_engine(program, "depgraph", k=1, stats=stats)
        )
        return kleene, t_kleene, depgraph, t_depgraph, stats

    kleene, t_kleene, depgraph, t_depgraph, stats = run_once(benchmark, run)
    print()
    print(
        fmt_table(
            ["engine", "time", "states", "evaluations"],
            [
                ("kleene (shared store)", f"{t_kleene:.3f}s", kleene.num_states(), "-"),
                (
                    "depgraph",
                    f"{t_depgraph:.3f}s",
                    depgraph.num_states(),
                    stats["evaluations"],
                ),
            ],
        )
    )
    assert depgraph.flows_to() == kleene.flows_to()
    assert depgraph.configs() == kleene.configs()
    assert t_depgraph * 2 <= t_kleene, f"depgraph {t_depgraph:.3f}s vs kleene {t_kleene:.3f}s"


def test_e3_precision_monotone_in_k_everywhere(benchmark):
    names = ["identity", "mj09", "id-id", "self-apply", "omega"]

    def run():
        return {
            name: (analyse_kcfa(PROGRAMS[name], 0), analyse_kcfa(PROGRAMS[name], 1))
            for name in names
        }

    results = run_once(benchmark, run)
    for name, (r0, r1) in results.items():
        f0, f1 = r0.flows_to(), r1.flows_to()
        for var, lams in f1.items():
            assert lams <= f0.get(var, lams), f"{name}:{var}"
