"""Soundness smoke tests: the concrete run is covered by every abstraction.

The a posteriori soundness theorem (paper 6.1) says any allocation
policy abstracts the collecting semantics with unique addresses.  We
check the executable consequence on terminating corpus programs: for
every state in the concrete trace, some abstract state with the same
control expression is reached, and the concrete value of each variable
live there is represented in the abstract flows.
"""

import pytest

from repro.cps.analysis import (
    analyse_concrete_collecting,
    analyse_kcfa,
    analyse_shared,
    analyse_with_gc,
    analyse_zerocfa,
)
from repro.cps.concrete import ConcreteCPSInterface, interpret_trace
from repro.cps.semantics import inject, mnext
from repro.corpus.cps_programs import PROGRAMS, id_chain

TERMINATING = ["identity", "id-id", "mj09", "self-apply"]


def concrete_flows(program):
    """var -> set of lambdas actually bound during the concrete run."""
    interface = ConcreteCPSInterface()
    state = inject(program)
    flows: dict = {}
    for _ in range(100_000):
        if state.is_final():
            break
        state = mnext(interface, state)
        for var, addr in state.env.items():
            if addr in interface.heap:
                value = interface.heap[addr]
                flows.setdefault(var, set()).add(value.lam)
    return flows


def assert_covers(abstract_flows, concrete):
    for var, lams in concrete.items():
        assert var in abstract_flows, f"variable {var} missing from abstract result"
        assert lams <= abstract_flows[var], f"flows for {var} not covered"


@pytest.mark.parametrize("name", TERMINATING)
def test_zerocfa_covers_concrete(name):
    program = PROGRAMS[name]
    assert_covers(analyse_zerocfa(program).flows_to(), concrete_flows(program))


@pytest.mark.parametrize("name", TERMINATING)
@pytest.mark.parametrize("k", [0, 1, 2])
def test_kcfa_covers_concrete(name, k):
    program = PROGRAMS[name]
    assert_covers(analyse_kcfa(program, k).flows_to(), concrete_flows(program))


@pytest.mark.parametrize("name", TERMINATING)
def test_shared_store_covers_concrete(name):
    program = PROGRAMS[name]
    assert_covers(analyse_shared(program, 1).flows_to(), concrete_flows(program))


@pytest.mark.parametrize("name", TERMINATING)
def test_gc_covers_live_concrete_bindings(name):
    """GC drops dead bindings, so coverage is owed only for *live* ones:
    variables free in the control expression of some visited state."""
    from repro.cps.semantics import free_vars_cache

    program = PROGRAMS[name]
    interface = ConcreteCPSInterface()
    state = inject(program)
    live_flows: dict = {}
    for _ in range(100_000):
        if state.is_final():
            break
        state = mnext(interface, state)
        for var in free_vars_cache(state.ctrl):
            if var in state.env and state.env[var] in interface.heap:
                value = interface.heap[state.env[var]]
                live_flows.setdefault(var, set()).add(value.lam)
    abstract = analyse_with_gc(program, 1).flows_to()
    for var, lams in live_flows.items():
        assert var in abstract
        assert lams <= abstract[var]


@pytest.mark.parametrize("k", [0, 1])
def test_concrete_trace_states_covered(k):
    """Every control point the concrete machine visits appears abstractly."""
    for name in TERMINATING:
        program = PROGRAMS[name]
        concrete_ctrls = {s.ctrl for s in interpret_trace(program)}
        abstract_ctrls = {s.ctrl for s in analyse_kcfa(program, k).states()}
        assert concrete_ctrls <= abstract_ctrls


def test_concrete_collecting_covers_trace_exactly():
    """With unique addresses the collecting semantics visits exactly the
    concrete control points (no spurious merging)."""
    for name in TERMINATING:
        program = PROGRAMS[name]
        concrete_ctrls = {s.ctrl for s in interpret_trace(program)}
        collected = analyse_concrete_collecting(program)
        abstract_ctrls = {s.ctrl for s in collected.states()}
        assert abstract_ctrls == concrete_ctrls


def test_generated_chain_soundness():
    program = id_chain(3)
    assert_covers(analyse_zerocfa(program).flows_to(), concrete_flows(program))
