"""``Addressable``: polyvariance and context, independent of semantics (paper 6.1).

The paper's class::

    class (Ord a, Eq a) => Addressable a c | c -> a where
      tau0    :: c
      valloc  :: Var -> c -> a
      advance :: Val a -> PSigma a -> c -> c

A context ``c`` unambiguously determines the nature of addresses ``a``;
``tau0`` is the initial context, ``valloc`` mints an address for a
variable in a context, and ``advance`` evolves the context at a call
(the residue of ``tick``).  Because the whole interface sees the machine
state only through an opaque *context key* (the current call site), the
instances below are reused verbatim by the CPS, CESK and Featherweight
Java machines -- which is the paper's central claim, checked by
experiment E8.

Instances provided (paper sections in parentheses):

* :class:`ConcreteAddressing`  -- fresh addresses per allocation (5.3.2);
* :class:`ZeroCFA`             -- monovariance, ``Addr = Var`` (2.3.1);
* :class:`KCFA`                -- last-k-call-sites contours (2.4.1, 8.1);
* :class:`LContext`            -- Lakhotia-style sequences of *unique*
  enclosed calls (3.4);
* :class:`BoundedNat`          -- contexts from a bounded set of naturals
  ``{n | n <= N}`` (3.4).

Machine states participate through the tiny :class:`HasContextKey`
protocol: they expose the hashable label of their control point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Any, Hashable, Protocol, runtime_checkable


@runtime_checkable
class HasContextKey(Protocol):
    """A partial machine state that can name its control point.

    ``context_key()`` returns a hashable label for the current call site
    (CPS call, CESK application, FJ method invocation); this is the only
    thing address allocation ever needs to know about a state.
    """

    def context_key(self) -> Hashable: ...


@hash_consed
@dataclass(frozen=True)
class Binding:
    """An abstract address pairing a variable with a context (the paper's ``KAddr``).

    ``KBind Var Time`` in the paper; reused for every context-based
    addressing scheme since they differ only in the context component.
    """

    var: Any
    context: Hashable

    def __repr__(self) -> str:
        return f"{self.var}@{self.context!r}"


class Addressable(ABC):
    """The semantics-independent address/contour allocator."""

    @abstractmethod
    def tau0(self) -> Hashable:
        """The initial context (instantiates ``HasInitial`` for the guts)."""

    @abstractmethod
    def valloc(self, var: Any, context: Hashable) -> Hashable:
        """Allocate an address for ``var`` in ``context``."""

    @abstractmethod
    def advance(self, proc: Any, state: HasContextKey, context: Hashable) -> Hashable:
        """Evolve the context on a call to ``proc`` from ``state``."""


class ConcreteAddressing(Addressable):
    """Unique addresses for every allocation: the *concrete* collecting semantics.

    Contexts are naturals; ``advance`` increments, so every machine
    transition works in a fresh context and every variable bound there
    gets a fresh ``(var, n)`` address.  Per Might and Manolios' a
    posteriori soundness theorem (paper 6.1), any other allocation policy
    abstracts the semantics induced by this one.

    The paper's inline example (5.3.2) returns the bare time integer from
    ``alloc``, which would share one address among the parameters of a
    single call; we pair the variable in to keep allocation genuinely
    unique, as 6.1 requires of the reference semantics.
    """

    def tau0(self) -> int:
        return 0

    def valloc(self, var: Any, context: int) -> Binding:
        return Binding(var, context)

    def advance(self, proc: Any, state: HasContextKey, context: int) -> int:
        return context + 1


class ZeroCFA(Addressable):
    """Monovariant analysis (0CFA): variables are their own addresses (2.3.1)."""

    def tau0(self) -> tuple:
        return ()

    def valloc(self, var: Any, context: tuple) -> Any:
        return var

    def advance(self, proc: Any, state: HasContextKey, context: tuple) -> tuple:
        return ()


class KCFA(Addressable):
    """k-CFA: contexts are the last ``k`` call sites (paper 2.4.1, 6.1, 8.1).

    ``Time = Call^{<=k}``; ``advance`` conses the current call site and
    truncates to length ``k`` (the paper's ``advance proc (call, rho) t =
    take k (call : calls)``); addresses pair the variable with the
    context.  ``KCFA(0)`` coincides with :class:`ZeroCFA` up to the
    address representation.
    """

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def tau0(self) -> tuple:
        return ()

    def valloc(self, var: Any, context: tuple) -> Binding:
        return Binding(var, context)

    def advance(self, proc: Any, state: HasContextKey, context: tuple) -> tuple:
        return ((state.context_key(),) + context)[: self.k]

    def __repr__(self) -> str:
        return f"KCFA(k={self.k})"


class LContext(Addressable):
    """l-contexts: bounded sequences of *unique* call sites (paper 3.4).

    Following Lakhotia et al.'s analysis of obfuscated binaries, a
    context records the most recent calls with duplicates collapsed: on
    re-entering a call site already in the context, the context is
    truncated back to that occurrence (folding the cycle) instead of
    growing.  This keeps recursive churn from exhausting the context
    window that k-CFA would burn on repeated sites.
    """

    def __init__(self, depth: int):
        if depth < 0:
            raise ValueError("the context depth must be non-negative")
        self.depth = depth

    def tau0(self) -> tuple:
        return ()

    def valloc(self, var: Any, context: tuple) -> Binding:
        return Binding(var, context)

    def advance(self, proc: Any, state: HasContextKey, context: tuple) -> tuple:
        key = state.context_key()
        if key in context:
            trimmed = context[context.index(key) :]
        else:
            trimmed = (key,) + context
        return trimmed[: self.depth]

    def __repr__(self) -> str:
        return f"LContext(depth={self.depth})"


class BoundedNat(Addressable):
    """Contexts from a bounded set of naturals ``{n | n <= N}`` (paper 3.4).

    The context simply counts transitions, saturating at ``N``; "a good
    precision for sufficiently big N" since early bindings stay
    distinguished while the tail of a long run collapses.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("N must be non-negative")
        self.n = n

    def tau0(self) -> int:
        return 0

    def valloc(self, var: Any, context: int) -> Binding:
        return Binding(var, context)

    def advance(self, proc: Any, state: HasContextKey, context: int) -> int:
        return min(context + 1, self.n)

    def __repr__(self) -> str:
        return f"BoundedNat(N={self.n})"
