"""Galois connections and the store-sharing widening (paper 5.1, 6.5).

A Galois connection ``<C, leqC> <--gamma-- --alpha--> <A, leqA>`` is a
pair of maps with ``alpha(c) leqA a  iff  c leqC gamma(a)``.  The class
:class:`GaloisConnection` packages the two maps with their lattices and
offers executable law checks (used by the property-based tests: with
both lattices finite -- as in 6.5's equation (3) -- alpha and gamma are
computable, and so are the laws).

The concrete payoff in the paper is *store sharing* (Shivers'
single-threaded store) as a Galois connection between the per-state-store
domain and a set-of-states-plus-one-global-store domain::

    <P(Sigma_t x Store), subset>  <-->  <P(Sigma_t) x Store, subset>

``alpha`` joins all per-state stores into one global store; ``gamma``
spreads the global store back to every state.  Widening an analysis is
then just ``applyStep = alpha . applyStep' . gamma`` (6.5, 8.2) -- no
change to the semantics, the monad, or the addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.lattice import Lattice, PairLattice, PowersetLattice


@dataclass
class GaloisConnection:
    """An executable Galois connection between two lattices."""

    concrete: Lattice
    abstract: Lattice
    alpha: Callable[[Any], Any]
    gamma: Callable[[Any], Any]

    def is_adjoint_on(self, c: Any, a: Any) -> bool:
        """The defining equivalence, checked at a single point."""
        return self.abstract.leq(self.alpha(c), a) == self.concrete.leq(c, self.gamma(a))

    def check_laws(self, concrete_samples: Iterable[Any], abstract_samples: Iterable[Any]) -> bool:
        """Extensive/reductive/monotonicity checks over sample elements.

        Returns True when every sampled instance of
        ``c leq gamma(alpha(c))``, ``alpha(gamma(a)) leq a`` and the
        adjunction equivalence holds.
        """
        cs = list(concrete_samples)
        as_ = list(abstract_samples)
        for c in cs:
            if not self.concrete.leq(c, self.gamma(self.alpha(c))):
                return False
        for a in as_:
            if not self.abstract.leq(self.alpha(self.gamma(a)), a):
                return False
        for c in cs:
            for a in as_:
                if not self.is_adjoint_on(c, a):
                    return False
        return True


class ConfigHoareLattice(Lattice):
    """The per-state-store domain under the Hoare (lower powerdomain) order.

    The paper writes the store-sharing connection (equation (3)) over
    ``<P(Sigma_t x Store), subset>``, but literal set inclusion is too
    fine: after ``alpha`` joins the stores, the original configurations
    (with their smaller stores) are not literal members of
    ``gamma(alpha(c))``.  The order that makes (3) a genuine Galois
    connection compares configurations up to store growth::

        X leq Y  iff  forall ((p,g), s) in X.
                        exists ((p,g), s') in Y with s leq_store s'

    This is a preorder (two sets can dominate each other without being
    equal); ``equiv`` is the induced equivalence, which is all the
    fixed-point machinery and the law checks need.
    """

    def __init__(self, store_lattice: Lattice):
        self.store_lattice = store_lattice

    def bottom(self) -> frozenset:
        return frozenset()

    def leq(self, x: frozenset, y: frozenset) -> bool:
        for pair, store in x:
            if not any(
                pair == pair2 and self.store_lattice.leq(store, store2)
                for pair2, store2 in y
            ):
                return False
        return True

    def join(self, x: frozenset, y: frozenset) -> frozenset:
        return x | y

    def meet(self, x: frozenset, y: frozenset) -> frozenset:
        return x & y


def store_sharing_alpha(store_lattice: Lattice) -> Callable[[frozenset], tuple]:
    """``alpha``: collapse per-state stores into a single global store (6.5).

    ``alpha = joinWith (\\((p, g), sigma) -> (singleton (p, g), sigma))``
    """

    def alpha(configs: frozenset) -> tuple:
        states: set = set()
        store = store_lattice.bottom()
        for (pstate, guts), sigma in configs:
            states.add((pstate, guts))
            store = store_lattice.join(store, sigma)
        return (frozenset(states), store)

    return alpha


def store_sharing_gamma() -> Callable[[tuple], frozenset]:
    """``gamma``: spread the global store back over every state (6.5)."""

    def gamma(widened: tuple) -> frozenset:
        states, store = widened
        return frozenset((pair, store) for pair in states)

    return gamma


def store_sharing_connection(store_lattice: Lattice) -> GaloisConnection:
    """The full Galois connection of equation (3) in 6.5.

    The concrete side carries the Hoare order of
    :class:`ConfigHoareLattice` (see its docstring for why literal set
    inclusion is too fine).
    """
    concrete = ConfigHoareLattice(store_lattice)
    abstract = PairLattice(PowersetLattice(), store_lattice)
    return GaloisConnection(
        concrete=concrete,
        abstract=abstract,
        alpha=store_sharing_alpha(store_lattice),
        gamma=store_sharing_gamma(),
    )
