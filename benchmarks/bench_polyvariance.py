"""E7 -- polyvariance policies beyond k-CFA, from one class (2.3.1, 3.4, 6.1).

Claims regenerated: the ``Addressable`` abstraction covers 0CFA, k-CFA,
Lakhotia-style l-contexts and bounded-natural contexts; all are sound
(they cover the concrete flows); their precision ordering on the
id-chain family matches expectations (contexts that separate call
sites recover exactness; monovariance merges).
"""

from conftest import run_once

from repro.analysis.report import fmt_table, precision_summary
from repro.core.addresses import BoundedNat, KCFA, LContext, ZeroCFA
from repro.cps.analysis import analyse
from repro.cps.concrete import ConcreteCPSInterface, inject
from repro.cps.semantics import mnext
from repro.corpus.cps_programs import PROGRAMS, id_chain

POLICIES = [
    ("0CFA", ZeroCFA()),
    ("1CFA", KCFA(1)),
    ("2CFA", KCFA(2)),
    ("l-ctx(2)", LContext(2)),
    ("boundN(32)", BoundedNat(32)),
]


def concrete_flows(program):
    interface = ConcreteCPSInterface()
    state = inject(program)
    flows: dict = {}
    for _ in range(100_000):
        if state.is_final():
            break
        state = mnext(interface, state)
        for var, addr in state.env.items():
            if addr in interface.heap:
                flows.setdefault(var, set()).add(interface.heap[addr].lam)
    return flows


def test_e7_policy_sweep_mj09(benchmark):
    program = PROGRAMS["mj09"]

    def run():
        return {
            name: analyse(policy, shared=True).run(program)
            for name, policy in POLICIES
        }

    results = run_once(benchmark, run)
    rows = []
    for name, result in results.items():
        summary = precision_summary(result.flows_to())
        rows.append((name, result.num_states(), summary["mean_flow"], summary["max_flow"]))
    print()
    print(fmt_table(["policy", "states", "mean flow", "max flow"], rows))
    by_name = dict((r[0], r) for r in rows)
    # monovariance merges; every context-bearing policy separates mj09
    assert by_name["0CFA"][3] == 2
    for contextual in ("1CFA", "2CFA", "l-ctx(2)", "boundN(32)"):
        assert by_name[contextual][3] <= by_name["0CFA"][3]


def test_e7_policy_sweep_id_chain(benchmark):
    # the widened (shared-store) domain keeps monovariant chains tractable
    program = id_chain(5)

    def run():
        return {
            name: analyse(policy, shared=True).run(program)
            for name, policy in POLICIES
        }

    results = run_once(benchmark, run)
    rows = []
    for name, result in results.items():
        merged = precision_summary(result.flows_to())["max_flow"]
        per_addr = max(len(lams) for lams in result.flows_per_address().values())
        rows.append((name, merged, per_addr))
    print()
    print(fmt_table(["policy", "max flow (per var)", "max flow (per address)"], rows))
    by_name = {name: per_addr for name, _merged, per_addr in rows}
    # per-address width is the real precision measure: contexts split
    # the merged variable into exact bindings
    assert by_name["0CFA"] == 5  # all five arguments merge at one address
    assert by_name["1CFA"] == 1  # call-site contexts are exact here
    assert by_name["boundN(32)"] == 1  # "sufficiently big N" is exact (3.4)


def test_e7_all_policies_sound(benchmark):
    program = PROGRAMS["mj09"]
    reference = concrete_flows(program)

    def run():
        return {
            name: analyse(policy, shared=True).run(program).flows_to()
            for name, policy in POLICIES
        }

    results = run_once(benchmark, run)
    for name, flows in results.items():
        for var, lams in reference.items():
            assert lams <= flows.get(var, frozenset()), f"{name}:{var}"
