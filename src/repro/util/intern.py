"""Hash-consing: cached structural hashes and a canonicalizing intern pool.

The fixed-point engines spend their lives hashing machine configurations
into ``seen``/``queued`` sets and dependency maps.  Configurations are
tuples of frozen dataclasses (syntax nodes, environments, contexts), and
a dataclass-generated ``__hash__`` rehashes the whole subtree on every
call -- an O(term) cost paid millions of times on values that never
change.  Two complementary remedies live here:

* :func:`hash_consed` -- a class decorator for frozen dataclasses that
  memoizes the structural hash on the instance (computed once, then an
  attribute read) and short-circuits ``__eq__`` on object identity.
  Nested decorated values make a parent's *first* hash O(children)
  instead of O(subtree), and every later hash O(1).

* :func:`intern` -- a global pool mapping each value to a canonical
  representative, in the tradition of Lisp symbol interning and
  hash-consed term representations.  The parsers intern every node they
  build, so structurally equal subterms are pointer-equal and the
  ``self is other`` fast path in ``__eq__`` fires throughout the
  analyses (k-CFA contexts, for instance, are tuples *of the call terms
  themselves*).

Both are semantics-free: hashing and equality remain structural, only
their cost changes, which the interned-vs-plain equivalence tests pin
down across all three languages.
"""

from __future__ import annotations

from typing import Any, TypeVar

T = TypeVar("T")

#: Attribute under which a memoized hash is stashed on the instance.
_HASH_SLOT = "_hc_hash"


def hash_consed(cls: type) -> type:
    """Class decorator: memoize ``__hash__``, short-circuit ``__eq__`` on identity.

    Apply *above* ``@dataclass(frozen=True)`` so the dataclass-generated
    structural methods are already in place::

        @hash_consed
        @dataclass(frozen=True)
        class Node: ...

    The memo is stored through ``object.__setattr__`` (legal on frozen
    dataclasses) under a name no dataclass field uses, so structural
    equality and ``repr`` are unaffected.

    The hash is computed *eagerly at construction*.  Immutable values are
    built bottom-up -- children exist before their parent -- so eager
    hashing only ever recurses one level (the children's hashes are
    already memoized), where a first lazy hash of a deep term would
    recurse through the whole subtree and can blow the interpreter's
    recursion limit on chain-shaped programs.
    """
    structural_hash = cls.__hash__
    structural_eq = cls.__eq__
    structural_init = cls.__init__
    if structural_hash is None:  # pragma: no cover - decorator misuse
        raise TypeError(f"{cls.__name__} is unhashable; hash_consed needs frozen=True")

    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        structural_init(self, *args, **kwargs)
        object.__setattr__(self, _HASH_SLOT, structural_hash(self))

    def __hash__(self: Any) -> int:
        try:
            return object.__getattribute__(self, _HASH_SLOT)
        except AttributeError:  # unpickled pre-memo instance: re-memoize
            h = structural_hash(self)
            object.__setattr__(self, _HASH_SLOT, h)
            return h

    def __eq__(self: Any, other: Any) -> Any:
        if self is other:
            return True
        return structural_eq(self, other)

    def __getstate__(self: Any) -> dict:
        # Python randomizes string hashes per process, so a pickled memo
        # would be stale in the unpickling process; drop it and let the
        # lazy fallback in __hash__ re-memoize there.
        state = dict(self.__dict__)
        state.pop(_HASH_SLOT, None)
        return state

    cls.__init__ = __init__
    cls.__hash__ = __hash__
    cls.__eq__ = __eq__
    cls.__getstate__ = __getstate__
    return cls


#: The global intern pool: value -> its canonical representative.
_POOL: dict = {}


def intern(value: T) -> T:
    """Return the canonical representative of ``value``.

    The first structurally distinct value wins and is handed back for
    every later equal value, so ``intern(x) is intern(y)`` exactly when
    ``x == y``.  Values of different types never compare equal, so one
    pool serves every interned class.

    The pool holds strong references for the life of the process -- the
    right trade for batch analyses over a fixed corpus (canonical terms
    are live for the whole run anyway).  A long-lived host that parses
    unboundedly many distinct programs should call
    :func:`clear_intern_pool` between independent workloads.
    """
    return _POOL.setdefault(value, value)


def intern_pool_size() -> int:
    """How many canonical values the pool currently holds (for tests/stats)."""
    return len(_POOL)


def clear_intern_pool() -> None:
    """Drop every canonical value (test isolation; never needed in analyses)."""
    _POOL.clear()
