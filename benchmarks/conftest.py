"""Shared benchmark configuration.

Analyses are deterministic and relatively slow, so every benchmark uses
few rounds (pytest-benchmark's adaptive calibration would otherwise
re-run multi-second fixed-point computations dozens of times).
"""

import pytest


def run_once(benchmark, thunk):
    """Benchmark a thunk with a single measured round and return its value."""
    return benchmark.pedantic(thunk, rounds=1, iterations=1)
