"""``Collecting`` instances for the ``StorePassing`` analysis monad (5.3.3, 6.5).

These are the paper's two fixed-point domains, built *once* here and
shared by every language:

* :class:`PerStateStoreCollecting` -- the heap-cloning domain
  ``P((PSigma x guts) x Store)``: every configuration carries its own
  store (5.3.3).  Precise, potentially exponential (6.5).
* :class:`SharedStoreCollecting` -- the widened domain
  ``P(PSigma x guts) x Store`` obtained by sandwiching the per-state
  step between the store-sharing ``alpha``/``gamma`` (6.5, 8.2).

Both optionally weave an abstract garbage collector into the step
(6.4): ``applyStep step = ... do { s' <- step s; gc s'; return s' } ...``.

Both also accept a staged :class:`~repro.core.fused.FusedTransition` in
place of a generic monadic step: a fused step already *is* the desugared
``(pstate, guts, store) -> [((pstate', guts'), store')]`` shape, so
``run_config``/``run_config_pairs`` call it directly instead of going
through ``monad.run`` -- and apply the woven-in collector as one sweep
per branch, which is what the monadic weaving desugars to.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.core.fixpoint import Collecting
from repro.core.fused import FusedTransition
from repro.core.galois import store_sharing_alpha, store_sharing_gamma
from repro.core.gc import GarbageCollector
from repro.core.lattice import Lattice, PairLattice, PowersetLattice
from repro.core.monads import StorePassing
from repro.core.store import StoreLike


class PerStateStoreCollecting(Collecting):
    """The set-of-configurations domain ``P(((PSigma, guts), store))``.

    ``inject`` instruments a machine state with the initial guts (the
    ``HasInitial`` value, here ``initial_guts``) and the empty store;
    ``apply_step`` runs the monadic step in every configuration and
    collects all results -- the paper's

    ``runStep ((s, t), sigma) = Set.fromList (runStateT (runStateT (step s) t) sigma)``
    """

    def __init__(
        self,
        monad: StorePassing,
        store_like: StoreLike,
        initial_guts: Any,
        collector: GarbageCollector | None = None,
    ):
        self.monad = monad
        self.store_like = store_like
        self.initial_guts = initial_guts
        self.collector = collector
        self._lattice = PowersetLattice()

    def lattice(self) -> Lattice:
        return self._lattice

    def inject(self, state: Any) -> frozenset:
        return frozenset([((state, self.initial_guts), self.store_like.empty())])

    def _instrumented(self, step: Callable[[Any], Any]) -> Callable[[Any], Any]:
        """Weave GC into the step when a collector is configured (6.4)."""
        if self.collector is None:
            return step
        monad = self.monad

        def stepped(pstate: Any) -> Any:
            return monad.bind(
                step(pstate),
                lambda nxt: monad.then(self.collector.gc(nxt), monad.unit(nxt)),
            )

        return stepped

    def _swept_fused(self, results: list) -> list:
        """The woven-in collector (6.4) applied to staged results.

        The generic path sequences ``step s; gc s'`` in the monad; a
        :class:`~repro.core.fused.FusedTransition` returns its branches
        already desugared, so the same collection is
        ``collector.collect`` once per branch over its result store --
        a real sweep for a :class:`~repro.core.gc.MonadicStoreCollector`
        (going through the collector's ``store_like``, the recording
        wrapper when dependency tracking is on, so its fetches land in
        the open read log exactly as the monadic collector's do), and a
        no-op for the base :class:`~repro.core.gc.GarbageCollector`,
        mirroring its monadic no-op.
        """
        collect = self.collector.collect
        return [(pair, collect(store, pair[0])) for pair, store in results]

    def run_config(self, step: Callable[[Any], Any], config: tuple) -> frozenset:
        """All configurations one monadic step away from ``config``."""
        (pstate, guts), store = config
        if isinstance(step, FusedTransition):
            results = step(pstate, guts, store)
            if self.collector is not None:
                results = self._swept_fused(results)
            return frozenset(results)
        results = self.monad.run(self._instrumented(step)(pstate), guts, store)
        return frozenset(results)

    def run_config_pairs(
        self, step: Callable[[Any], Any], config: tuple, instrument: bool = True
    ) -> list:
        """One monadic step, returning only the ``(pstate, guts)`` pairs.

        The delta-driven engine threads one shared
        :class:`~repro.core.store.MutableStore`, so every branch's result
        store is the same object and all store growth is read off its
        changelog; only the successor pairs are informative.

        ``instrument=False`` skips the woven-in garbage collector: the
        versioned engine performs GC itself (an in-monad ``filterStore``
        would build a fresh store object as the inner state, and the
        engine -- which only looks at successor pairs here -- would
        never see it).
        """
        (pstate, guts), store = config
        if isinstance(step, FusedTransition):
            results = step(pstate, guts, store)
            if instrument and self.collector is not None:
                results = self._swept_fused(results)
            return [pair for pair, _store in results]
        stepped = self._instrumented(step) if instrument else step
        results = self.monad.run(stepped(pstate), guts, store)
        return [pair for pair, _store in results]

    def apply_step(self, step: Callable[[Any], Any], fp: frozenset) -> frozenset:
        out: set = set()
        for config in fp:
            out |= self.run_config(step, config)
        return frozenset(out)

    def successors_of(self, step: Callable[[Any], Any], config: tuple) -> Iterable[Hashable]:
        """Adapter for :func:`repro.core.fixpoint.worklist_explore`."""
        return self.run_config(step, config)


class SharedStoreCollecting(Collecting):
    """Shivers' single-threaded store as ``alpha . applyStep' . gamma`` (6.5).

    The fixed-point domain is ``(P(PSigma x guts), store)``; the inner
    per-state ``applyStep`` is reused on the gamma-expanded set, exactly
    the paper's 8.2 definition.  Soundness is the fixed-point transfer
    theorem across the store-sharing Galois connection.
    """

    def __init__(
        self,
        monad: StorePassing,
        store_like: StoreLike,
        initial_guts: Any,
        collector: GarbageCollector | None = None,
    ):
        self.inner = PerStateStoreCollecting(monad, store_like, initial_guts, collector)
        self.store_like = store_like
        self._alpha = store_sharing_alpha(store_like.lattice())
        self._gamma = store_sharing_gamma()
        self._lattice = PairLattice(PowersetLattice(), store_like.lattice())

    def lattice(self) -> Lattice:
        return self._lattice

    def inject(self, state: Any) -> tuple:
        return (
            frozenset([(state, self.inner.initial_guts)]),
            self.store_like.empty(),
        )

    def apply_step(self, step: Callable[[Any], Any], fp: tuple) -> tuple:
        return self._alpha(self.inner.apply_step(step, self._gamma(fp)))
