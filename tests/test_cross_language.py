"""Experiment E8 as a test: the meta-level components are shared verbatim.

The paper's central claim (sections 1, 6.1, 9): components implementing
nondeterministic transitions, polyvariance and abstract counting are
semantics-independent and can be reused for different calculi.  Here we
(1) drive all three machines with the *same component objects* -- one
``Addressable``, one ``StoreLike`` -- and (2) check that corresponding
programs in different languages get corresponding answers.
"""

from repro.core.addresses import KCFA, ZeroCFA
from repro.core.monads import StorePassing
from repro.core.store import BasicStore, CountingStore
from repro.cps.analysis import AbstractCPSInterface, analyse as analyse_cps
from repro.cesk.analysis import AbstractCESKInterface, analyse_cesk
from repro.fj.analysis import AbstractFJInterface, analyse_fj
from repro.fj.class_table import ClassTable
from repro.lam.cps_transform import cps_convert
from repro.corpus import cps_programs, fj_programs, lam_programs


class TestComponentSharing:
    """One component object drives machines for three languages."""

    def test_one_addressable_three_interfaces(self):
        addressing = KCFA(1)  # a single instance...
        cps_iface = AbstractCPSInterface(addressing, BasicStore())
        cesk_iface = AbstractCESKInterface(addressing, BasicStore())
        fj_table = ClassTable.of(fj_programs.PROGRAMS["pair"])
        fj_iface = AbstractFJInterface(fj_table, addressing, BasicStore())
        assert cps_iface.addressing is cesk_iface.addressing is fj_iface.addressing

    def test_one_store_like_shared(self):
        store = CountingStore()
        cps_iface = AbstractCPSInterface(ZeroCFA(), store)
        cesk_iface = AbstractCESKInterface(ZeroCFA(), store)
        assert cps_iface.store_like is cesk_iface.store_like

    def test_all_machines_use_store_passing(self):
        fj_table = ClassTable.of(fj_programs.PROGRAMS["pair"])
        interfaces = [
            AbstractCPSInterface(ZeroCFA(), BasicStore()),
            AbstractCESKInterface(ZeroCFA(), BasicStore()),
            AbstractFJInterface(fj_table, ZeroCFA(), BasicStore()),
        ]
        assert all(isinstance(i.monad, StorePassing) for i in interfaces)

    def test_shared_component_analyses_actually_run(self):
        addressing = KCFA(1)
        cps_result = analyse_cps(addressing).run(cps_programs.PROGRAMS["mj09"])
        cesk_result = analyse_cesk(addressing).run(lam_programs.PROGRAMS["mj09"])
        fj_result = analyse_fj(fj_programs.PROGRAMS["id-twice"], addressing).run(
            fj_programs.PROGRAMS["id-twice"]
        )
        assert cps_result.num_states() > 0
        assert cesk_result.num_states() > 0
        assert fj_result.num_states() > 0


class TestCorrespondingAnswers:
    """The mj09 pattern gives the same verdicts in every calculus."""

    def test_mj09_zerocfa_merges_everywhere(self):
        cps_flows = analyse_cps(ZeroCFA()).run(cps_programs.PROGRAMS["mj09"]).flows_to()
        cesk_flows = analyse_cesk(ZeroCFA()).run(lam_programs.PROGRAMS["mj09"]).flows_to()
        fj_flows = (
            analyse_fj(fj_programs.PROGRAMS["id-twice"], ZeroCFA())
            .run(fj_programs.PROGRAMS["id-twice"])
            .class_flows()
        )
        # the shared identity's parameter merges both arguments in all three
        assert len(cps_flows["x"]) == 2
        assert len(cesk_flows["x"]) == 2
        assert len(fj_flows["x"]) == 2

    def test_mj09_onecfa_separates_everywhere(self):
        k1 = KCFA(1)
        cps_result = analyse_cps(k1).run(cps_programs.PROGRAMS["mj09"])
        cesk_result = analyse_cesk(k1).run(lam_programs.PROGRAMS["mj09"])
        fj_result = analyse_fj(fj_programs.PROGRAMS["id-twice"], k1).run(
            fj_programs.PROGRAMS["id-twice"]
        )
        assert len(cps_result.flows_to()["b"]) == 1
        assert len(cesk_result.flows_to()["b"]) == 1
        # per-context x bindings are singletons in FJ too
        store = fj_result.global_store()
        x_addrs = [
            a
            for a in fj_result.store_like.addresses(store)
            if getattr(a, "var", None) == "x"
        ]
        assert x_addrs
        assert all(len(fj_result.store_like.fetch(store, a)) == 1 for a in x_addrs)


class TestTransformConsistency:
    """CESK on e agrees with CPS on cps(e) about user-lambda flows."""

    def _user_flow_skeletons(self, flows):
        """Compare flows by user parameter lists (continuation params are
        an artifact of the transform)."""
        out = {}
        for var, lams in flows.items():
            if var.startswith("$"):
                continue
            out[var] = frozenset(
                tuple(p for p in lam.params if not p.startswith("$")) for lam in lams
            )
        return out

    def test_mj09_flows_correspond(self):
        direct = lam_programs.PROGRAMS["mj09"]
        cesk_flows = analyse_cesk(KCFA(1)).run(direct).flows_to()
        cps_flows = analyse_cps(KCFA(1)).run(cps_convert(direct)).flows_to()
        cesk_user = self._user_flow_skeletons(cesk_flows)
        cps_user = self._user_flow_skeletons(cps_flows)
        for var in ("a", "b", "id"):
            assert len(cesk_user[var]) == len(cps_user[var])

    def test_final_answer_corresponds(self):
        direct = lam_programs.PROGRAMS["mj09"]
        cesk_final = analyse_cesk(KCFA(1)).run(direct).final_values()
        cps_result = analyse_cps(KCFA(1)).run(cps_convert(direct))
        cps_answers = cps_result.flows_to().get("r", frozenset())
        cesk_skeletons = {
            tuple(p for p in lam.params if not p.startswith("$")) for lam in cesk_final
        }
        cps_skeletons = {
            tuple(p for p in lam.params if not p.startswith("$")) for lam in cps_answers
        }
        assert cesk_skeletons == cps_skeletons
