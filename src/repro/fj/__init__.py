"""Featherweight Java, monadically analyzed.

The paper's third calculus: "by plugging the same 'context-insensitivity
monad' into a monadically-parameterized semantics for Java or for the
lambda calculus, it yields the expected context-insensitive analysis"
(section 1).  This package supplies the complete substrate --

* :mod:`repro.fj.syntax`      -- FJ terms, classes, programs
* :mod:`repro.fj.class_table` -- subtyping, field/method lookup
* :mod:`repro.fj.typecheck`   -- the FJ type system (with stupid-cast warnings)
* :mod:`repro.fj.parser`      -- a Java-ish concrete syntax
* :mod:`repro.fj.machine`     -- CESK-style states, objects, frames
* :mod:`repro.fj.semantics`   -- ``FJInterface`` and the monadic step
* :mod:`repro.fj.concrete`    -- the concrete machine
* :mod:`repro.fj.analysis`    -- the abstract analysis family

-- and instantiates it with the *same* meta-level monadic components as
the CPS and CESK machines.
"""

from repro.fj.syntax import Cast, ClassDef, FieldAccess, Invoke, MethodDef, New, Program, VarE
from repro.fj.class_table import ClassTable
from repro.fj.parser import parse_program
from repro.fj.typecheck import TypeError_, typecheck_program
from repro.fj.concrete import evaluate_fj
from repro.fj.analysis import (
    analyse_fj_kcfa,
    analyse_fj_shared,
    analyse_fj_zerocfa,
)

__all__ = [
    "Cast",
    "ClassDef",
    "ClassTable",
    "FieldAccess",
    "Invoke",
    "MethodDef",
    "New",
    "Program",
    "TypeError_",
    "VarE",
    "analyse_fj_kcfa",
    "analyse_fj_shared",
    "analyse_fj_zerocfa",
    "evaluate_fj",
    "parse_program",
    "typecheck_program",
]
