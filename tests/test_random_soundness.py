"""Randomized end-to-end soundness: abstract covers concrete, by construction.

hypothesis generates small *closed* direct-style programs; for each one
that terminates within a step budget we check the executable soundness
statement on three pipelines:

* the CESK 0CFA/1CFA final values cover the concrete CESK value;
* the CPS transform preserves the concrete answer;
* the CPS 0CFA analysis of the transformed program covers it too.

Divergent or stuck samples are skipped (CPS-converted programs are
closed and well-formed by construction, so sticking cannot happen; the
budget only filters omega-like loops).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cesk.analysis import analyse_cesk_shared
from repro.cesk.concrete import CESKTimeout, evaluate
from repro.cps.analysis import analyse_shared as analyse_cps_shared
from repro.cps.concrete import InterpreterTimeout, interpret_with_heap
from repro.lam.cps_transform import cps_convert
from repro.lam.syntax import App, Expr, Lam, Let, Var, free_vars


@st.composite
def closed_programs(draw, max_depth=4):
    """Small closed direct-style programs over a fixed variable pool.

    Built top-down, tracking the variables in scope so every reference
    is bound; every program is a ``let`` of an identity first, so there
    is always at least one value to apply.
    """

    def go(depth, scope):
        choices = []
        if scope:
            choices.append("var")
        choices.extend(["lam", "app", "let"] if depth > 0 else ["lam"])
        kind = draw(st.sampled_from(choices))
        if kind == "var":
            return Var(draw(st.sampled_from(sorted(scope))))
        if kind == "lam":
            param = f"v{len(scope)}"
            body = go(depth - 1, scope | {param}) if depth > 0 else Var(param)
            return Lam((param,), body)
        if kind == "let":
            name = f"v{len(scope)}"
            rhs = go(depth - 1, scope)
            body = go(depth - 1, scope | {name})
            return Let(name, rhs, body)
        fun = go(depth - 1, scope)
        arg = go(depth - 1, scope)
        return App(fun, (arg,))

    program = go(max_depth, frozenset())
    return Let("base", Lam(("b0",), Var("b0")), program)


def user_params(lam) -> tuple:
    return tuple(p for p in lam.params if not p.startswith("$"))


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(closed_programs())
def test_cesk_abstract_covers_concrete(program: Expr):
    assert not free_vars(program)
    try:
        concrete = evaluate(program, max_steps=2_000)
    except CESKTimeout:
        return  # divergent sample
    abstract = analyse_cesk_shared(program, 0).final_values()
    assert concrete.lam in abstract


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(closed_programs())
def test_transform_preserves_and_cps_covers(program: Expr):
    from repro.lam.syntax import uniquify

    # compare on the uniquified source: the transform renames duplicate
    # binders apart, so parameter names align only after uniquification
    program = uniquify(program)
    try:
        concrete = evaluate(program, max_steps=2_000)
    except CESKTimeout:
        return
    cps_program = cps_convert(program)
    try:
        final, heap = interpret_with_heap(cps_program, max_steps=20_000)
    except InterpreterTimeout:  # pragma: no cover - budget mismatch only
        return
    cps_value = heap[final.env["r"]]
    assert user_params(cps_value.lam) == concrete.lam.params

    result = analyse_cps_shared(cps_program, 0)
    answers = result.flows_to().get("r", frozenset())
    assert user_params(concrete.lam) in {user_params(a) for a in answers} or any(
        user_params(a) == concrete.lam.params for a in answers
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(closed_programs())
def test_precision_monotone_on_random_programs(program: Expr):
    f0 = analyse_cesk_shared(program, 0).flows_to()
    f1 = analyse_cesk_shared(program, 1).flows_to()
    for var, lams in f1.items():
        assert lams <= f0.get(var, lams)
