"""The fused transition backend: staged steps == the monadic normal form.

The tentpole claim of the staging work (``repro/core/fused.py`` and the
three ``*/fused.py`` backends): for every analysis configuration, the
fused first-order step computes the **identical fixed point** to the
generic monadic path -- same configurations, same stores, same flow
tables -- because it is the same transition with the monad unfolded at
assembly time rather than interpreted per bind.

Coverage here:

* corpus-wide fused-vs-generic equivalence on the global-store engines
  (every engine x store-impl), all three languages;
* composition with abstract GC and counting (engine paths) and with the
  per-state-store domains and the concrete reference semantics;
* the observational contract underneath the depgraph engine: a staged
  evaluation leaves the *same read/write logs* in the RecordingStore as
  the monadic step, so dependency-tracked retriggering is unchanged;
* the staged calling convention itself (``FusedTransition``, registry).

The preset matrix in ``tests/test_config.py`` additionally pins the
``*-fused`` presets against their generic Kleene references, and
``benchmarks/record.py --check`` gates the speedup this buys.
"""

import pytest

from repro.cesk.analysis import analyse_cesk, analyse_cesk_engine
from repro.config import TRANSITIONS, AnalysisConfig, assemble
from repro.core.addresses import ConcreteAddressing, KCFA
from repro.core.fused import FusedTransition, build_fused
from repro.core.store import CountingStore, RecordingStore
from repro.corpus.cps_programs import PROGRAMS as CPS_PROGRAMS
from repro.corpus.cps_programs import id_chain
from repro.corpus.fj_programs import PROGRAMS as FJ_PROGRAMS
from repro.corpus.lam_programs import PROGRAMS as LAM_PROGRAMS
from repro.cps.analysis import analyse, analyse_with_engine
from repro.fj.analysis import analyse_fj, analyse_fj_engine

CPS_NAMES = sorted(CPS_PROGRAMS)
LAM_NAMES = sorted(LAM_PROGRAMS)
FJ_NAMES = sorted(FJ_PROGRAMS)

#: Every engine x store-impl pair the global-store loop supports.
ENGINE_IMPLS = (
    ("kleene", "persistent"),
    ("worklist", "persistent"),
    ("worklist", "versioned"),
    ("depgraph", "persistent"),
    ("depgraph", "versioned"),
)


class TestTransitionAxis:
    def test_transitions_are_named(self):
        assert TRANSITIONS == ("generic", "fused")

    def test_default_is_generic(self):
        assert AnalysisConfig().validated().transition == "generic"

    def test_unknown_transition_rejected(self):
        with pytest.raises(ValueError, match="unknown transition"):
            AnalysisConfig(transition="jit").validated()

    def test_fused_composes_with_every_engine_combination(self):
        for engine, impl in ENGINE_IMPLS:
            AnalysisConfig(
                engine=engine, store_impl=impl, gc=True, transition="fused"
            ).validated()

    def test_fused_composes_with_per_state_and_concrete(self):
        AnalysisConfig(transition="fused").validated()
        AnalysisConfig(addressing="concrete", transition="fused").validated()

    def test_describe_mentions_fused(self):
        config = AnalysisConfig(engine="depgraph", transition="fused").validated()
        assert "fused" in config.describe()
        assert "fused" not in AnalysisConfig().validated().describe()

    def test_fused_presets_exist(self):
        from repro.config import PRESETS

        for name in ("1cfa-fused", "1cfa-gc-fused"):
            config = PRESETS[name].config
            assert config.transition == "fused"
            assert config.engine == "depgraph" and config.store_impl == "versioned"


class TestFusedCalling:
    def test_analysis_step_is_a_fused_transition(self):
        analysis = analyse(preset="1cfa-fused")
        assert isinstance(analysis.step(), FusedTransition)
        assert analyse(preset="1cfa").step().__class__ is not FusedTransition

    def test_build_fused_resolves_all_three_languages(self):
        for preset, make in (
            ("1cfa", lambda: analyse(preset="1cfa")),
            ("1cfa", lambda: analyse_cesk(preset="1cfa")),
        ):
            analysis = make()
            staged = build_fused(
                "cps" if "CPS" in type(analysis).__name__ else "lam",
                analysis.interface,
            )
            assert isinstance(staged, FusedTransition)

    def test_build_fused_rejects_unknown_language(self):
        with pytest.raises(ValueError, match="no fused backend"):
            build_fused("cobol", object())

    def test_fused_step_returns_desugared_branches(self):
        """One staged call == ``monad.run`` of the monadic step."""
        from repro.cps.semantics import inject, mnext

        program = CPS_PROGRAMS["mj09"]
        generic = analyse(KCFA(1), engine="depgraph", store_impl="persistent")
        fused = analyse(
            KCFA(1), engine="depgraph", store_impl="persistent", transition="fused"
        )
        pstate = inject(program)
        store = generic.interface.store_like.empty()
        want = generic.interface.monad.run(
            mnext(generic.interface, pstate), (), store
        )
        got = fused.step()(pstate, (), store)
        assert frozenset(got) == frozenset(want)


class TestCPSFusedEquivalence:
    @pytest.mark.parametrize("name", CPS_NAMES)
    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_corpus(self, name, engine, impl):
        program = CPS_PROGRAMS[name]
        generic = analyse_with_engine(program, engine, k=1, store_impl=impl)
        fused = analyse_with_engine(
            program, engine, k=1, store_impl=impl, transition="fused"
        )
        assert fused.fp == generic.fp
        assert fused.flows_to() == generic.flows_to()

    @pytest.mark.parametrize("name", CPS_NAMES)
    def test_corpus_k0(self, name):
        program = CPS_PROGRAMS[name]
        generic = analyse_with_engine(program, "depgraph", k=0, store_impl="versioned")
        fused = analyse_with_engine(
            program, "depgraph", k=0, store_impl="versioned", transition="fused"
        )
        assert fused.fp == generic.fp

    def test_generated_family(self):
        program = id_chain(40)
        generic = analyse_with_engine(program, "depgraph", k=1, store_impl="versioned")
        fused = analyse_with_engine(
            program, "depgraph", k=1, store_impl="versioned", transition="fused"
        )
        assert fused.fp == generic.fp

    @pytest.mark.parametrize("name", CPS_NAMES)
    def test_per_state_domain(self, name):
        program = CPS_PROGRAMS[name]
        generic = analyse(KCFA(1)).run(program, worklist=True)
        fused = analyse(KCFA(1), transition="fused").run(program, worklist=True)
        assert fused.fp == generic.fp

    def test_concrete_reference_semantics(self):
        for name in ("id-id", "identity", "mj09", "self-apply"):
            program = CPS_PROGRAMS[name]
            generic = analyse(ConcreteAddressing()).run(program, worklist=True)
            fused = analyse(ConcreteAddressing(), transition="fused").run(
                program, worklist=True
            )
            assert fused.fp == generic.fp, name


class TestLamFusedEquivalence:
    @pytest.mark.parametrize("name", LAM_NAMES)
    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_corpus(self, name, engine, impl):
        expr = LAM_PROGRAMS[name]
        generic = analyse_cesk_engine(expr, engine, k=1, store_impl=impl)
        fused = analyse_cesk_engine(
            expr, engine, k=1, store_impl=impl, transition="fused"
        )
        assert fused.fp == generic.fp
        assert fused.flows_to() == generic.flows_to()
        assert fused.final_values() == generic.final_values()

    def test_per_state_domain(self):
        expr = LAM_PROGRAMS["mj09"]
        generic = analyse_cesk(KCFA(1)).run(expr)
        fused = analyse_cesk(KCFA(1), transition="fused").run(expr)
        assert fused.fp == generic.fp


class TestFJFusedEquivalence:
    @pytest.mark.parametrize("name", FJ_NAMES)
    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_corpus(self, name, engine, impl):
        program = FJ_PROGRAMS[name]
        generic = analyse_fj_engine(program, engine, k=1, store_impl=impl)
        fused = analyse_fj_engine(
            program, engine, k=1, store_impl=impl, transition="fused"
        )
        assert fused.fp == generic.fp
        assert fused.class_flows() == generic.class_flows()
        assert fused.final_classes() == generic.final_classes()

    def test_per_state_domain(self):
        program = FJ_PROGRAMS["visitor"]
        generic = analyse_fj(program, KCFA(1)).run(program)
        fused = analyse_fj(program, KCFA(1), transition="fused").run(program)
        assert fused.fp == generic.fp


class TestFusedWithRefinements:
    """GC and counting compose with the staged step on every path."""

    @pytest.mark.parametrize("name", CPS_NAMES)
    @pytest.mark.parametrize(
        "engine,impl",
        (
            ("kleene", "persistent"),
            ("worklist", "persistent"),
            ("depgraph", "persistent"),
            ("depgraph", "versioned"),
        ),
    )
    def test_cps_gc_corpus(self, name, engine, impl):
        program = CPS_PROGRAMS[name]
        generic = analyse(KCFA(1), gc=True, engine=engine, store_impl=impl).run(program)
        fused = analyse(
            KCFA(1), gc=True, engine=engine, store_impl=impl, transition="fused"
        ).run(program)
        assert fused.fp == generic.fp

    @pytest.mark.parametrize("name", CPS_NAMES)
    def test_cps_counting_corpus(self, name):
        program = CPS_PROGRAMS[name]
        for engine, impl in (("kleene", "persistent"), ("depgraph", "versioned")):
            generic = analyse(
                KCFA(1), store_like=CountingStore(), engine=engine, store_impl=impl
            ).run(program)
            fused = analyse(
                KCFA(1),
                store_like=CountingStore(),
                engine=engine,
                store_impl=impl,
                transition="fused",
            ).run(program)
            assert fused.fp == generic.fp, (engine, impl)
            # singleton (must-alias) facts agree too; go through the
            # store-like so persistent and versioned counting compare alike
            assert fused.store_like.singleton_addresses(
                fused.global_store()
            ) == generic.store_like.singleton_addresses(generic.global_store())

    @pytest.mark.parametrize("name", LAM_NAMES)
    def test_lam_gc_fast_path(self, name):
        expr = LAM_PROGRAMS[name]
        generic = analyse_cesk(
            KCFA(1), gc=True, engine="depgraph", store_impl="versioned"
        ).run(expr)
        fused = analyse_cesk(
            KCFA(1),
            gc=True,
            engine="depgraph",
            store_impl="versioned",
            transition="fused",
        ).run(expr)
        assert fused.fp == generic.fp

    @pytest.mark.parametrize("name", FJ_NAMES)
    def test_fj_gc_and_counting_fast_path(self, name):
        program = FJ_PROGRAMS[name]
        for kwargs in (dict(gc=True), dict(store_like=CountingStore())):
            generic = analyse_fj(
                program, KCFA(1), engine="depgraph", store_impl="versioned", **kwargs
            ).run(program)
            fused = analyse_fj(
                program,
                KCFA(1),
                engine="depgraph",
                store_impl="versioned",
                transition="fused",
                **kwargs,
            ).run(program)
            assert fused.fp == generic.fp, tuple(kwargs)

    def test_cps_per_state_gc(self):
        program = CPS_PROGRAMS["mj09"]
        generic = analyse(KCFA(1), gc=True).run(program, worklist=True)
        fused = analyse(KCFA(1), gc=True, transition="fused").run(program, worklist=True)
        assert fused.fp == generic.fp

    def test_noop_collector_is_a_noop_on_the_fused_path(self):
        """The base GarbageCollector collects nothing in the monad; the
        fused path's per-branch ``collector.collect`` must mirror that
        no-op instead of assuming a real sweeper's attributes."""
        from repro.core.collecting import PerStateStoreCollecting
        from repro.core.gc import GarbageCollector
        from repro.cps.semantics import inject

        program = CPS_PROGRAMS["mj09"]
        results = {}
        for transition in ("generic", "fused"):
            analysis = analyse(KCFA(1), transition=transition)
            noop = GarbageCollector(analysis.interface.monad)
            analysis.collecting = PerStateStoreCollecting(
                analysis.interface.monad,
                analysis.interface.store_like,
                (),
                collector=noop,
            )
            config = next(iter(analysis.collecting.inject(inject(program))))
            results[transition] = analysis.collecting.run_config(
                analysis.step(), config
            )
            assert results[transition]  # the no-op must not crash or prune
        assert results["fused"] == results["generic"]


class TestFusedReadWriteParity:
    """The observational contract under the depgraph engine: a staged
    evaluation leaves the same RecordingStore footprint as the monadic
    one, so dependency-tracked retriggering cannot diverge."""

    @pytest.mark.parametrize("gc", [False, True])
    def test_single_evaluation_logs_match(self, gc):
        from repro.cps.semantics import inject

        program = CPS_PROGRAMS["mj09"]
        footprints = {}
        for transition in ("generic", "fused"):
            analysis = analyse(
                KCFA(1),
                gc=gc or None,
                engine="depgraph",
                store_impl="versioned",
                transition=transition,
            )
            recorder = analysis.interface.store_like
            assert isinstance(recorder, RecordingStore)
            # drive the engine to a fixed point, then replay the seed
            # configuration once under a fresh bracket to observe its logs
            analysis.run(program)
            inner = analysis.collecting.inner
            seed_configs, seed_store = analysis.collecting.inject(inject(program))
            from repro.core.store import VersionedStore

            mstore = VersionedStore().thaw(seed_store)
            recorder.begin_log()
            try:
                inner.run_config_pairs(
                    analysis.step(), (next(iter(seed_configs)), mstore),
                    instrument=False,
                )
            finally:
                reads, writes = recorder.end_log()
            footprints[transition] = (reads, writes)
        assert footprints["fused"] == footprints["generic"]

    def test_engine_work_counters_match(self):
        """Same logs => same retriggering: the deterministic work
        counters (evaluations, retriggers, configurations) agree."""
        program = id_chain(25)
        stats = {}
        for transition in ("generic", "fused"):
            counters: dict = {}
            analyse_with_engine(
                program,
                "depgraph",
                k=1,
                store_impl="versioned",
                stats=counters,
                transition=transition,
            )
            stats[transition] = counters
        assert stats["fused"] == stats["generic"]


class TestFusedAcceptance:
    """The ISSUE's acceptance shape: every engine x store-impl x gc /
    counting combination runs fused with the identical fixed point (one
    program per language here; the corpus-wide matrices above and the
    preset matrix in test_config.py cover the rest)."""

    @pytest.mark.parametrize("lang", ["cps", "lam", "fj"])
    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    @pytest.mark.parametrize("refinement", ["plain", "gc", "counting"])
    def test_matrix_cell(self, lang, engine, impl, refinement):
        program = {
            "cps": CPS_PROGRAMS["mj09"],
            "lam": LAM_PROGRAMS["mj09"],
            "fj": FJ_PROGRAMS["visitor"],
        }[lang]
        fixed_points = {}
        for transition in ("generic", "fused"):
            config = AnalysisConfig(
                language=lang,
                k=1,
                engine=engine,
                store_impl=impl,
                gc=refinement == "gc",
                counting=refinement == "counting",
                transition=transition,
            ).validated()
            analysis = assemble(config, program=program)
            fixed_points[transition] = analysis.run(program).fp
        assert fixed_points["fused"] == fixed_points["generic"]
