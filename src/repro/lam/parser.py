"""S-expression parser for direct-style lambda calculus.

Concrete syntax::

    expr ::= VAR
           | (lambda (VAR ...) expr)        -- 'lambda' or the Greek letter
           | (let ((VAR expr)) expr)        -- single binding; let* sugar
           | (let* ((VAR expr) ...) expr)   -- nested lets
           | (expr expr ...)                -- application
"""

from __future__ import annotations

from repro.cps.parser import ParseError, read_sexp, tokenize
from repro.lam.syntax import App, Expr, Lam, Let, Var
from repro.util.intern import intern

LAMBDA_KEYWORDS = ("lambda", "λ")
RESERVED = set(LAMBDA_KEYWORDS) | {"let", "let*"}


def _to_expr(sexp) -> Expr:
    if isinstance(sexp, str):
        if sexp in RESERVED:
            raise ParseError(f"keyword {sexp!r} is not an expression")
        return intern(Var(sexp))
    if not isinstance(sexp, list) or not sexp:
        raise ParseError(f"malformed expression: {sexp!r}")
    head = sexp[0]
    if head in LAMBDA_KEYWORDS:
        if len(sexp) != 3:
            raise ParseError(f"lambda needs a parameter list and a body: {sexp!r}")
        params = sexp[1]
        if not isinstance(params, list) or not all(isinstance(p, str) for p in params):
            raise ParseError(f"malformed parameter list: {params!r}")
        if len(set(params)) != len(params):
            raise ParseError(f"duplicate parameter in {params!r}")
        return intern(Lam(tuple(params), _to_expr(sexp[2])))
    if head in ("let", "let*"):
        if len(sexp) != 3 or not isinstance(sexp[1], list):
            raise ParseError(f"malformed let: {sexp!r}")
        bindings = sexp[1]
        if head == "let" and len(bindings) != 1:
            raise ParseError("let takes exactly one binding; use let* for several")
        body = _to_expr(sexp[2])
        for binding in reversed(bindings):
            if (
                not isinstance(binding, list)
                or len(binding) != 2
                or not isinstance(binding[0], str)
            ):
                raise ParseError(f"malformed binding: {binding!r}")
            body = intern(Let(binding[0], _to_expr(binding[1]), body))
        return body
    return intern(App(_to_expr(head), tuple(_to_expr(arg) for arg in sexp[1:])))


def parse_expr(source: str) -> Expr:
    """Parse a single direct-style expression."""
    tokens = tokenize(source)
    if not tokens:
        raise ParseError("empty input")
    sexp, index = read_sexp(tokens)
    if index != len(tokens):
        raise ParseError(f"trailing input after expression: {tokens[index:]!r}")
    return _to_expr(sexp)
