"""Warm-start incremental re-analysis: pay for the edit, not the program.

A cold analysis of an edited program repeats almost all of its
predecessor's work: the edit is a handful of sub-terms, interning makes
the unchanged rest *pointer-identical*, and the depgraph engine already
knows -- per configuration -- which store cells each evaluation read and
which successors it produced.  :func:`reanalyse` turns that into an
incremental pipeline over the fixpoint cache:

1. **Digest hit** -- the edited source parses to a term whose structural
   digest is already cached (an identity edit, a revert, a duplicate
   submission): the fixed point is loaded and rehydrated, zero
   evaluations.
2. **Warm start** -- the digest is new but the cache holds a
   records-bearing entry for the same configuration (the predecessor's
   run): the engine is seeded with that entry's store and
   :class:`~repro.core.fixpoint.EvalRecord` map.  Re-discovered
   configurations whose recorded reads are still clean *replay* their
   recorded successors instead of stepping; only configurations touched
   by the edit -- new ones, and ones whose cells grew -- are evaluated.
   Cost: O(reachable configurations) dictionary walks plus O(edit)
   evaluations, instead of O(program) evaluations with retriggers.
3. **Cold** -- no donor (or a non-warmable configuration): run normally.
   Either way the result (with fresh records, where supported) is
   written back, so the *next* edit warm-starts from this one: a chain
   of edits stays warm end to end.

Warm replay drains through the engine's configured worklist, so under
``schedule="priority"`` clean records replay in dependency-rank order
-- writes land forward along the discovery depth, which keeps the dirty
set from cascading into records that would have stayed clean under an
arbitrary replay order.  The replayed fixed point is identical either
way (the schedule axis never changes a fixed point, only the work to
reach it), which is why ``warmable`` does not look at ``schedule`` and
warm donors are shared across schedules through the cache key.

The pipeline itself lives in :func:`repro.service.jobs.dispatch` -- the
same tier cascade the batch runner, the CLI, and the resident server
run -- and this module is its incremental-facing entry: it accepts an
*already-parsed* program plus an optional explicit donor, and reports
provenance in the historical ``cache-hit``/``warm``/``cold`` vocabulary
(the server's hot/disk tier split both collapse to ``cache-hit`` here:
either way the digest matched and zero evaluations ran).

Soundness and exactness contract (also on
:class:`~repro.core.fixpoint.WarmStart`): the warm result equals the
cold fixed point whenever the donor's store lies at or below the edited
program's fixed-point store -- true for identity edits and for edits
that extend a program around its interned sub-terms (the ``id_chain``
append workload pinned in ``tests/test_service.py``).  An edit that
*removes* behavior can leave the donor's stale cells in the seed; the
result is then a sound over-approximation of the cold analysis, and a
caller that needs exactness re-runs cold (``donor=None``).  Use
:func:`edit_distance` to gate: when the edit replaces most of the
program, warm starting also stops being *profitable* (PERFORMANCE.md,
"Caching and warm starts").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.config import AnalysisConfig
from repro.service.cache import CachedFixpoint, FixpointCache
from repro.service.jobs import (  # noqa: F401  (historical import surface)
    contains_subterm,
    dispatch,
    iter_subvalues,
    warmable,
    wrap_fixpoint,
)


def edit_distance(old_program: Any, new_program: Any) -> dict:
    """How big an edit is, structurally: the changed-sub-term counts.

    Interning makes this cheap and exact: a sub-term survives the edit
    iff the same canonical object occurs in both programs, so the delta
    is a set difference over object identities.  Returns ``new_terms``
    (sub-terms of the edited program absent from the old one -- the work
    a warm start must actually evaluate scales with these), ``shared``
    and ``total``; ``ratio`` is ``new_terms / total``.
    """
    old_ids = {id(node) for node in iter_subvalues(old_program)}
    new_terms = 0
    total = 0
    for node in iter_subvalues(new_program):
        total += 1
        if id(node) not in old_ids:
            new_terms += 1
    return {
        "new_terms": new_terms,
        "shared": total - new_terms,
        "total": total,
        "ratio": round(new_terms / total, 4) if total else 0.0,
    }


@dataclass
class Reanalysis:
    """The outcome of one :func:`reanalyse` call, with provenance."""

    result: Any
    mode: str  # "cache-hit" | "warm" | "cold"
    seconds: float
    key: str
    stats: dict

    @property
    def fp(self) -> Any:
        """The fixed point (what the equivalence tests compare)."""
        return self.result.fp


def reanalyse(
    config: AnalysisConfig,
    program: Any,
    cache: FixpointCache,
    donor: CachedFixpoint | None = None,
    allow_warm: bool = True,
) -> Reanalysis:
    """Analyse ``program`` under ``config``, as incrementally as the cache allows.

    The three-path pipeline from the module docstring: digest hit, warm
    start, cold run.  Whatever path runs, the fixed point (plus fresh
    evaluation records for warmable configurations) is stored back under
    the program's digest.

    Donor selection is exactness-gated: an auto-selected donor (the
    cache's most recent records-bearing entry for this configuration) is
    used only when its program is an exact interned subterm of
    ``program`` (:func:`contains_subterm`) -- the extension-edit shape
    for which the warm result provably equals the cold one.  Sibling
    edits and unrelated programs run cold rather than risk a silently
    over-approximate result.  Passing ``donor=`` explicitly *bypasses*
    the gate: the result is then sound but possibly over-approximate for
    behavior-removing edits (module docstring contract) -- the caller
    takes responsibility, and the result is **not** written back to the
    cache (a later gate-respecting query must not receive a possibly
    inexact fixed point as a digest hit).  ``allow_warm=False`` forces
    path 1-or-3.
    """
    started = time.perf_counter()
    outcome = dispatch(
        config=config,
        program=program,
        cache=cache,
        allow_warm=allow_warm,
        donor=donor,
    )
    return Reanalysis(
        result=outcome.result,
        mode={"hot": "cache-hit", "disk": "cache-hit"}.get(outcome.tier, outcome.tier),
        seconds=time.perf_counter() - started,
        key=outcome.key,
        stats=dict(outcome.stats),
    )
