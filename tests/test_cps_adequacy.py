"""Adequacy of the monadic refactoring (experiment E10).

Three formulations of the CPS abstract transition must agree exactly:

1. ``mnext`` (explicit bind chains, Figure 2) through ``StorePassing``;
2. ``mnext_do`` (generator-replay do-notation);
3. the hand-written pre-monadic transition of section 2.4
   (:mod:`repro.cps.direct`).

Agreement is checked on the full reachable configuration sets of the
corpus, for several addressing policies.
"""

import pytest

from repro.core.addresses import KCFA, ZeroCFA
from repro.core.collecting import PerStateStoreCollecting
from repro.core.fixpoint import reachable
from repro.core.store import BasicStore
from repro.cps.analysis import AbstractCPSInterface
from repro.cps.direct import atomic_eval, direct_abstract_step
from repro.cps.semantics import inject, mnext, mnext_do
from repro.corpus.cps_programs import PROGRAMS, heap_clone, id_chain

ADDRESSINGS = [ZeroCFA(), KCFA(0), KCFA(1), KCFA(2)]
PROGRAM_NAMES = ["identity", "id-id", "mj09", "omega", "self-apply"]


def monadic_reachable(program, addressing, step_fn):
    store_like = BasicStore()
    interface = AbstractCPSInterface(addressing, store_like)
    collecting = PerStateStoreCollecting(
        interface.monad, store_like, addressing.tau0()
    )
    step = lambda ps: step_fn(interface, ps)
    return reachable(
        collecting.inject(inject(program)),
        lambda config: collecting.successors_of(step, config),
    )


def direct_reachable(program, addressing):
    store_like = BasicStore()
    step = direct_abstract_step(addressing, store_like)
    seed = ((inject(program), addressing.tau0()), store_like.empty())
    return reachable([seed], step)


@pytest.mark.parametrize("name", PROGRAM_NAMES)
@pytest.mark.parametrize("addressing", ADDRESSINGS, ids=repr)
def test_monadic_equals_direct(name, addressing):
    program = PROGRAMS[name]
    assert monadic_reachable(program, addressing, mnext) == direct_reachable(
        program, addressing
    )


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_mnext_do_equals_mnext(name):
    program = PROGRAMS[name]
    addressing = KCFA(1)
    assert monadic_reachable(program, addressing, mnext) == monadic_reachable(
        program, addressing, mnext_do
    )


def test_agreement_on_generated_families():
    for program in (id_chain(3), heap_clone(3)):
        addressing = KCFA(1)
        assert monadic_reachable(program, addressing, mnext) == direct_reachable(
            program, addressing
        )


def test_atomic_eval_matches_interface_on_lambdas():
    from repro.util.pcollections import pmap

    store_like = BasicStore()
    program = PROGRAMS["identity"]
    lam = program.fun
    direct_vals = atomic_eval(pmap(), store_like, store_like.empty(), lam)
    interface = AbstractCPSInterface(ZeroCFA(), store_like)
    monadic_vals = interface.monad.run(interface.arg(pmap(), lam), (), store_like.empty())
    assert direct_vals == frozenset(v for (v, _g), _s in monadic_vals)
