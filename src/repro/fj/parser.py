"""A recursive-descent parser for a Java-ish FJ concrete syntax.

Grammar::

    program  := classdef* expr
    classdef := 'class' ID 'extends' ID '{' fielddecl* methoddef* '}'
    fielddecl := ID ID ';'
    methoddef := ID ID '(' params ')' '{' 'return' expr ';' '}'
    params   := (ID ID (',' ID ID)*)?
    expr     := primary ('.' ID ('(' args ')')? )*
    primary  := 'new' ID '(' args ')'
              | '(' ID ')' expr            -- cast
              | ID
    args     := (expr (',' expr)*)?

Constructors are synthesized (FJ's canonical constructor is pure
boilerplate), so class bodies contain only field and method
declarations.  Comments: ``//`` to end of line.
"""

from __future__ import annotations

import re

from repro.fj.syntax import (
    Cast,
    ClassDef,
    Expr,
    FieldAccess,
    Invoke,
    MethodDef,
    New,
    Program,
    VarE,
)
from repro.util.intern import intern

KEYWORDS = {"class", "extends", "return", "new"}

_TOKEN_RE = re.compile(
    r"""
    \s+                       # whitespace
  | //[^\n]*                  # line comment
  | (?P<id>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[(){};,.])
    """,
    re.VERBOSE,
)


class FJParseError(Exception):
    """Malformed FJ source."""


def tokenize_fj(source: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise FJParseError(f"unexpected character {source[pos]!r} at offset {pos}")
        if m.lastgroup in ("id", "punct"):
            tokens.append(m.group(m.lastgroup))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, ahead: int = 0) -> str | None:
        index = self.pos + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise FJParseError("unexpected end of input")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise FJParseError(f"expected {token!r}, got {got!r}")

    def ident(self) -> str:
        token = self.next()
        if token in KEYWORDS or not token[0].isalpha() and token[0] != "_":
            raise FJParseError(f"expected an identifier, got {token!r}")
        return token

    # -- declarations ---------------------------------------------------------

    def program(self) -> Program:
        classes = []
        while self.peek() == "class":
            classes.append(self.classdef())
        main = self.expr()
        if self.pos != len(self.tokens):
            raise FJParseError(f"trailing input: {self.tokens[self.pos:]!r}")
        return Program(tuple(classes), main)

    def classdef(self) -> ClassDef:
        self.expect("class")
        name = self.ident()
        self.expect("extends")
        superclass = self.ident()
        self.expect("{")
        fields: list = []
        methods: list = []
        while self.peek() != "}":
            # both start with: TYPE NAME ; or TYPE NAME ( ...
            t = self.ident()
            n = self.ident()
            if self.peek() == ";":
                if methods:
                    raise FJParseError(
                        f"field {n} declared after methods in class {name}"
                    )
                self.next()
                fields.append((t, n))
            elif self.peek() == "(":
                methods.append(self.method_rest(t, n))
            else:
                raise FJParseError(f"expected ';' or '(' after {t} {n}")
        self.expect("}")
        return ClassDef(name, superclass, tuple(fields), tuple(methods))

    def method_rest(self, ret_type: str, name: str) -> MethodDef:
        self.expect("(")
        params: list = []
        if self.peek() != ")":
            while True:
                t = self.ident()
                n = self.ident()
                params.append((t, n))
                if self.peek() == ",":
                    self.next()
                else:
                    break
        self.expect(")")
        self.expect("{")
        self.expect("return")
        body = self.expr()
        self.expect(";")
        self.expect("}")
        return MethodDef(ret_type, name, tuple(params), body)

    # -- expressions ------------------------------------------------------------

    def expr(self) -> Expr:
        e = self.primary()
        while self.peek() == ".":
            self.next()
            member = self.ident()
            if self.peek() == "(":
                self.next()
                args = self.args()
                self.expect(")")
                e = intern(Invoke(e, member, args))
            else:
                e = intern(FieldAccess(e, member))
        return e

    def primary(self) -> Expr:
        token = self.peek()
        if token == "new":
            self.next()
            cls = self.ident()
            self.expect("(")
            args = self.args()
            self.expect(")")
            return intern(New(cls, args))
        if token == "(":
            # '(' ID ')' expr-start  => cast; otherwise a parenthesized expr
            if (
                self.peek(1) is not None
                and self.peek(2) == ")"
                and self.peek(3) in ("new", "(")
                or (
                    self.peek(3) is not None
                    and self.peek(2) == ")"
                    and self.peek(3) not in (None, ".", ")", ",", ";", "}")
                )
            ):
                self.next()
                cls = self.ident()
                self.expect(")")
                return intern(Cast(cls, self.expr()))
            self.next()
            inner = self.expr()
            self.expect(")")
            return inner
        return intern(VarE(self.ident()))

    def args(self) -> tuple[Expr, ...]:
        if self.peek() == ")":
            return ()
        out = [self.expr()]
        while self.peek() == ",":
            self.next()
            out.append(self.expr())
        return tuple(out)


def parse_program(source: str) -> Program:
    """Parse class definitions followed by the main expression."""
    return _Parser(tokenize_fj(source)).program()


def parse_expr_fj(source: str) -> Expr:
    """Parse a single FJ expression."""
    parser = _Parser(tokenize_fj(source))
    e = parser.expr()
    if parser.pos != len(parser.tokens):
        raise FJParseError(f"trailing input: {parser.tokens[parser.pos:]!r}")
    return e
