"""Record the engine-suite benchmark trajectory to ``BENCH_<n>.json``.

Runs every fixed-point engine / store-impl combination over one workload
per language -- plus the abstract-GC workloads, a counting workload, and
the generic-vs-fused transition rows -- and writes a machine-readable
baseline, so each PR leaves a ``BENCH_*.json`` behind and regressions
are visible as a series rather than one-off pytest-benchmark artifacts::

    PYTHONPATH=src python benchmarks/record.py            # writes BENCH_4.json
    PYTHONPATH=src python benchmarks/record.py --check    # also gate on speedup

Every workload is assembled through :func:`repro.config.assemble` -- the
benchmark harness exercises the same configuration layer as the CLI and
the tests.

The JSON shape (see PERFORMANCE.md for how to read it)::

    {
      "schema": "engine-suite/2",
      "workloads": {
        "<workload>": {
          "<engine>/<store_impl>": {            # generic transition
            "seconds": float,
            "evaluations": int, "retriggers": int, "configurations": int
          },
          "<engine>/<store_impl>/fused": {...}, # staged transition
          ...
        }, ...
      },
      "speedups": {
        "<workload>": {
          "depgraph-versioned-over-kleene-persistent": float,
          "fused-over-generic-depgraph-versioned": float, ...
        }
      }
    }

Timing: rows are best-of-N with N adaptive (fast workloads repeat up to
nine times), so millisecond-scale cells are stable enough to gate on.

``--check`` exits non-zero when (a) the depgraph/versioned configuration
is less than ``--min-speedup`` (default 2.0) times faster than kleene on
any workload that runs both, or (b) the fused transition is less than
``--min-fused-speedup`` (default 2.0) times faster than the generic
transition on any workload carrying both depgraph/versioned rows -- the
CI regression gates for the engine work and the staging work
respectively.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import AnalysisConfig, assemble
from repro.corpus.cps_programs import id_chain
from repro.corpus.fj_programs import PROGRAMS as FJ_PROGRAMS
from repro.corpus.lam_programs import PROGRAMS as LAM_PROGRAMS

#: (engine, store_impl, transition) combinations; kleene has no
#: mutable-store variant, and the fused row rides the fast configuration.
COMBINATIONS = (
    ("kleene", "persistent", "generic"),
    ("worklist", "persistent", "generic"),
    ("worklist", "versioned", "generic"),
    ("depgraph", "persistent", "generic"),
    ("depgraph", "versioned", "generic"),
    ("depgraph", "versioned", "fused"),
)

#: The GC comparison: the old kleene-only baseline against the
#: dependency-tracked engine (generic and fused) on the mutable store.
GC_COMBINATIONS = (
    ("kleene", "persistent", "generic"),
    ("depgraph", "persistent", "generic"),
    ("depgraph", "versioned", "generic"),
    ("depgraph", "versioned", "fused"),
)

#: Workloads carrying both depgraph/versioned transition rows that the
#: ``--check`` fused gate applies to.  The GC rows are exempt: there the
#: per-evaluation reachability sweep dominates, so staging the step
#: cannot buy a fixed multiple (PERFORMANCE.md explains the cost model).
FUSED_GATED = (
    "cps-id-chain-200-k1",
    "lam-church-two-two-k1",
    "fj-visitor-k1",
)

#: A row faster than this repeats (best of up to nine runs): the FJ and
#: small-chain cells are millisecond-scale and one run is all jitter.
_REPEAT_UNDER_SECONDS = 0.25
_MAX_REPS = 9


def _runner(language: str, program, k: int = 1, gc: bool = False, counting: bool = False):
    """A workload runner assembled through the configuration layer."""

    def run(engine: str, impl: str, transition: str, stats: dict):
        config = AnalysisConfig(
            language=language,
            k=k,
            gc=gc,
            counting=counting,
            engine=engine,
            store_impl="persistent" if engine == "kleene" else impl,
            transition=transition,
            label=f"bench-{language}-{engine}-{impl}-{transition}",
        )
        analysis = assemble(config, program=program)
        result = analysis.run(program)
        stats.update(analysis.last_stats)
        return result

    return run


def _timed_best(runner, engine: str, impl: str, transition: str, stats: dict) -> float:
    """Best-of-N wall clock; N adapts so fast cells are not pure jitter."""
    best = None
    for _ in range(_MAX_REPS):
        stats.clear()
        start = time.perf_counter()
        runner(engine, impl, transition, stats)
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
        if best >= _REPEAT_UNDER_SECONDS:
            break
    return best


def _workloads() -> dict:
    """Label -> (runner(engine, impl, transition, stats) -> result, combos)."""
    chain30 = id_chain(30)
    chain200 = id_chain(200)
    church = LAM_PROGRAMS["church-two-two"]
    visitor = FJ_PROGRAMS["visitor"]
    return {
        "cps-id-chain-30-k1": (_runner("cps", chain30), COMBINATIONS),
        "lam-church-two-two-k1": (_runner("lam", church), COMBINATIONS),
        "fj-visitor-k1": (_runner("fj", visitor), COMBINATIONS),
        # the scaling workload behind the headline speedup: the store
        # grows linearly with the chain, so the persistent path goes
        # quadratic; kleene and the blind worklist are far too slow here
        "cps-id-chain-200-k1": (
            _runner("cps", chain200),
            (
                ("depgraph", "persistent", "generic"),
                ("depgraph", "versioned", "generic"),
                ("depgraph", "versioned", "fused"),
            ),
        ),
        # abstract GC at worklist speed vs the Kleene+GC baseline (the
        # per-evaluation reachability sweep is the same; the worklist
        # engines win by re-evaluating far fewer configurations)
        "cps-id-chain-30-k1-gc": (_runner("cps", chain30, gc=True), GC_COMBINATIONS),
        "lam-church-two-two-k1-gc": (_runner("lam", church, gc=True), GC_COMBINATIONS),
        "fj-visitor-k1-gc": (_runner("fj", visitor, gc=True), GC_COMBINATIONS),
        # counting at worklist speed (write-log saturation)
        "cps-id-chain-30-k1-counting": (
            _runner("cps", chain30, counting=True),
            GC_COMBINATIONS,
        ),
    }


def _row_key(engine: str, impl: str, transition: str) -> str:
    key = f"{engine}/{impl}"
    return key if transition == "generic" else f"{key}/{transition}"


def run_suite() -> dict:
    record: dict = {
        "schema": "engine-suite/2",
        "python": sys.version.split()[0],
        "workloads": {},
        "speedups": {},
    }
    for label, (runner, combos) in _workloads().items():
        rows: dict = {}
        for engine, impl, transition in combos:
            # kleene runs report no store_impl distinction; the suffix
            # keys make every cell self-describing regardless
            stats: dict = {}
            seconds = _timed_best(runner, engine, impl, transition, stats)
            rows[_row_key(engine, impl, transition)] = {
                "seconds": round(seconds, 6),
                "evaluations": stats.get("evaluations"),
                "retriggers": stats.get("retriggers"),
                "configurations": stats.get("configurations"),
            }
            print(
                f"{label:28s} {engine:>8s}/{impl:<10s} {transition:<7s} "
                f"{seconds:8.3f}s evals={stats.get('evaluations', '-')}",
                file=sys.stderr,
            )
        record["workloads"][label] = rows
        speedups: dict = {}
        fast = rows.get("depgraph/versioned")
        if fast and fast["seconds"] > 0:
            for reference in ("kleene/persistent", "depgraph/persistent"):
                if reference in rows:
                    name = f"depgraph-versioned-over-{reference.replace('/', '-')}"
                    speedups[name] = round(rows[reference]["seconds"] / fast["seconds"], 2)
        fused = rows.get("depgraph/versioned/fused")
        if fast and fused and fused["seconds"] > 0:
            speedups["fused-over-generic-depgraph-versioned"] = round(
                fast["seconds"] / fused["seconds"], 2
            )
        record["speedups"][label] = speedups
    return record


def check(record: dict, min_speedup: float, min_fused_speedup: float) -> list[str]:
    """The CI gates.

    * depgraph/versioned must beat kleene by ``min_speedup`` on every
      workload that ran both (the ``*-gc`` rows included, so a
      regression in the worklist GC path fails the build too);
    * the fused transition must beat the generic one by
      ``min_fused_speedup`` on the :data:`FUSED_GATED` workloads.
    """
    failures = []
    for label, speedups in record["speedups"].items():
        ratio = speedups.get("depgraph-versioned-over-kleene-persistent")
        if ratio is not None and ratio < min_speedup:
            failures.append(
                f"{label}: depgraph/versioned only {ratio:.2f}x over kleene "
                f"(need >= {min_speedup:.1f}x)"
            )
        fused_ratio = speedups.get("fused-over-generic-depgraph-versioned")
        if (
            label in FUSED_GATED
            and fused_ratio is not None
            and fused_ratio < min_fused_speedup
        ):
            failures.append(
                f"{label}: fused transition only {fused_ratio:.2f}x over generic "
                f"(need >= {min_fused_speedup:.1f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_4.json", help="where to write the record")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if depgraph/versioned regresses below --min-speedup "
        "over kleene, or fused below --min-fused-speedup over generic",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-fused-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    record = run_suite()
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        failures = check(record, args.min_speedup, args.min_fused_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
