"""The Featherweight Java type system (Igarashi-Pierce-Wadler).

Expression typing (T-Var, T-Field, T-Invk, T-New, the three cast
rules), method and class well-formedness (including the covariant-free
override rule of FJ: overrides must preserve the full signature), and
whole-program checking.  Following the original paper, *stupid* casts
(between unrelated classes) are accepted but reported as warnings --
they exist only so subject reduction holds -- while downcasts are
accepted silently and can fail at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fj.class_table import ClassTable, ClassTableError
from repro.fj.syntax import (
    Cast,
    Expr,
    FieldAccess,
    Invoke,
    MethodDef,
    New,
    Program,
    VarE,
)


class TypeError_(Exception):
    """An FJ type error (named to avoid clashing with the builtin)."""


@dataclass
class CheckResult:
    """Outcome of a whole-program check."""

    main_type: str
    warnings: list[str] = field(default_factory=list)


def type_of(table: ClassTable, env: dict, expr: Expr, warnings: list | None = None) -> str:
    """Compute the type of ``expr`` under variable typing ``env``."""
    if warnings is None:
        warnings = []
    if isinstance(expr, VarE):
        if expr.name not in env:
            raise TypeError_(f"unbound variable {expr.name}")
        return env[expr.name]
    if isinstance(expr, FieldAccess):
        obj_type = type_of(table, env, expr.obj, warnings)
        try:
            return table.field_type(obj_type, expr.fld)
        except ClassTableError as err:
            raise TypeError_(str(err)) from err
    if isinstance(expr, Invoke):
        obj_type = type_of(table, env, expr.obj, warnings)
        sig = table.mtype(expr.method, obj_type)
        if sig is None:
            raise TypeError_(f"class {obj_type} has no method {expr.method}")
        param_types, ret_type = sig
        if len(param_types) != len(expr.args):
            raise TypeError_(
                f"{obj_type}.{expr.method} expects {len(param_types)} arguments, "
                f"got {len(expr.args)}"
            )
        for arg, expected in zip(expr.args, param_types):
            actual = type_of(table, env, arg, warnings)
            if not table.is_subtype(actual, expected):
                raise TypeError_(
                    f"argument of type {actual} where {expected} expected "
                    f"in call to {expr.method}"
                )
        return ret_type
    if isinstance(expr, New):
        if not table.defined(expr.cls):
            raise TypeError_(f"new of undefined class {expr.cls}")
        expected_fields = table.fields(expr.cls)
        if len(expected_fields) != len(expr.args):
            raise TypeError_(
                f"new {expr.cls} expects {len(expected_fields)} arguments, "
                f"got {len(expr.args)}"
            )
        for arg, (expected, fld) in zip(expr.args, expected_fields):
            actual = type_of(table, env, arg, warnings)
            if not table.is_subtype(actual, expected):
                raise TypeError_(
                    f"field {fld} of {expr.cls} needs {expected}, got {actual}"
                )
        return expr.cls
    if isinstance(expr, Cast):
        if not table.defined(expr.cls):
            raise TypeError_(f"cast to undefined class {expr.cls}")
        obj_type = type_of(table, env, expr.obj, warnings)
        if table.is_subtype(obj_type, expr.cls):
            return expr.cls  # upcast (T-UCast)
        if table.is_subtype(expr.cls, obj_type):
            return expr.cls  # downcast (T-DCast); may fail at run time
        warnings.append(f"stupid cast: ({expr.cls}) applied to {obj_type}")
        return expr.cls  # stupid cast (T-SCast), warned
    raise TypeError_(f"not an FJ expression: {expr!r}")


def check_method(table: ClassTable, cls_name: str, mdef: MethodDef, warnings: list) -> None:
    """``M OK in C``: body type, declared types, and valid overriding."""
    for t, name in mdef.params:
        if not table.defined(t):
            raise TypeError_(f"method {mdef.name}: unknown parameter type {t}")
    if not table.defined(mdef.ret_type):
        raise TypeError_(f"method {mdef.name}: unknown return type {mdef.ret_type}")
    env = {name: t for t, name in mdef.params}
    env["this"] = cls_name
    body_type = type_of(table, env, mdef.body, warnings)
    if not table.is_subtype(body_type, mdef.ret_type):
        raise TypeError_(
            f"method {cls_name}.{mdef.name} returns {body_type}, "
            f"declared {mdef.ret_type}"
        )
    superclass = table.superclass_of(cls_name)
    if superclass is not None:
        inherited = table.mtype(mdef.name, superclass)
        if inherited is not None and inherited != (mdef.param_types(), mdef.ret_type):
            raise TypeError_(
                f"method {cls_name}.{mdef.name} overrides with a different signature"
            )


def check_class(table: ClassTable, cls_name: str, warnings: list) -> None:
    """``C OK``: field types defined, no field shadowing, all methods OK."""
    cls = table.by_name[cls_name]
    inherited_fields = {f for _t, f in table.fields(cls.superclass)}
    seen = set()
    for t, f in cls.fields:
        if not table.defined(t):
            raise TypeError_(f"class {cls_name}: unknown field type {t}")
        if f in inherited_fields:
            raise TypeError_(f"class {cls_name} shadows inherited field {f}")
        if f in seen:
            raise TypeError_(f"class {cls_name} declares field {f} twice")
        seen.add(f)
    method_names = set()
    for mdef in cls.methods:
        if mdef.name in method_names:
            raise TypeError_(f"class {cls_name} declares method {mdef.name} twice")
        method_names.add(mdef.name)
        check_method(table, cls_name, mdef, warnings)


def typecheck_program(program: Program) -> CheckResult:
    """Check every class and the main expression; return main's type."""
    table = ClassTable.of(program)
    warnings: list = []
    for cls_name in table.all_classes():
        check_class(table, cls_name, warnings)
    main_type = type_of(table, {}, program.main, warnings)
    return CheckResult(main_type=main_type, warnings=warnings)
