"""Docstring presence checker for the documented core (CI docs job).

A dependency-free mirror of pydocstyle's D100/D101/D103/D419 rules
(missing module / public class / public function docstring, empty
docstring), so the docs gate runs identically on a bare checkout and in
CI -- the CI job additionally runs ruff's D rules when available::

    python tools/check_docs.py src/repro/core src/repro/config.py

Exit status is the number of files with findings (0 = clean).  Private
names (leading underscore) and methods are exempt: overridden protocol
methods inherit their contract from the ABC's documented declaration.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    doc = ast.get_docstring(tree)
    if doc is None:
        problems.append(f"{path}:1: D100 missing module docstring")
    elif not doc.strip():
        problems.append(f"{path}:1: D419 empty module docstring")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            doc = ast.get_docstring(node)
            if doc is None:
                problems.append(
                    f"{path}:{node.lineno}: D101 missing docstring on class {node.name}"
                )
            elif not doc.strip():
                problems.append(
                    f"{path}:{node.lineno}: D419 empty docstring on class {node.name}"
                )
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and not node.name.startswith("_"):
            doc = ast.get_docstring(node)
            if doc is None:
                problems.append(
                    f"{path}:{node.lineno}: D103 missing docstring on function {node.name}"
                )
            elif not doc.strip():
                problems.append(
                    f"{path}:{node.lineno}: D419 empty docstring on function {node.name}"
                )
    return problems


def main(argv: list[str]) -> int:
    targets = argv or ["src/repro/core", "src/repro/config.py"]
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    bad = 0
    for path in files:
        problems = check_file(path)
        for problem in problems:
            print(problem)
        bad += bool(problems)
    if not bad:
        print(f"docstrings ok across {len(files)} files")
    return bad


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
