"""The seeded program generator: determinism, closedness, affordability.

The generator's contract (see :mod:`repro.corpus.generate`) is that a
corpus is a pure function of ``(seed, count, GenConfig)`` and that every
program it emits is closed, well-typed and concretely terminating --
*by construction*, no rejection sampling.  These tests pin each clause,
plus the bit-identity the nightly fuzz lane's reproducibility depends
on.
"""

import random

from repro.cesk.concrete import evaluate
from repro.corpus.generate import (
    GenConfig,
    corpus_digest,
    generate_corpus,
    generate_program,
)
from repro.imp import lower_program, parse_program, pp
from repro.imp.syntax import EInt, SWhile, stmt_blocks, stmt_exprs
from repro.lam.syntax import free_vars


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        first = generate_corpus(42, 30)
        second = generate_corpus(42, 30)
        assert first == second
        assert corpus_digest(first) == corpus_digest(second)

    def test_different_seeds_differ(self):
        assert corpus_digest(generate_corpus(42, 30)) != corpus_digest(
            generate_corpus(43, 30)
        )

    def test_longer_corpus_extends_shorter(self):
        assert generate_corpus(7, 40)[:15] == generate_corpus(7, 15)

    def test_digest_is_over_canonical_source(self):
        corpus = generate_corpus(3, 5)
        rendered = [pp(program) for program in corpus]
        assert [parse_program(text) for text in rendered] == corpus


class TestWellFormedness:
    def test_programs_parse_back_and_lower_closed(self):
        for program in generate_corpus(11, 40):
            assert parse_program(pp(program)) == program
            assert not free_vars(lower_program(program))

    def test_programs_terminate_concretely(self):
        for program in generate_corpus(11, 40):
            evaluate(lower_program(program), max_steps=200_000)

    def test_literals_respect_the_knob(self):
        config = GenConfig(max_literal=2)

        def walk_expr(expr):
            if isinstance(expr, EInt):
                assert expr.value <= 2
            for attr in ("lhs", "rhs", "operand", "fun"):
                if hasattr(expr, attr):
                    walk_expr(getattr(expr, attr))
            for sub in getattr(expr, "args", ()):
                walk_expr(sub)
            for stmt in getattr(expr, "body", ()) if hasattr(expr, "params") else ():
                walk_stmt(stmt)

        def walk_stmt(stmt):
            for expr in stmt_exprs(stmt):
                walk_expr(expr)
            for block in stmt_blocks(stmt):
                for sub in block:
                    walk_stmt(sub)

        for program in generate_corpus(5, 25, config):
            for stmt in program.body:
                walk_stmt(stmt)

    def test_loop_counters_have_one_write(self):
        """The termination argument: only the final increment writes a
        counter, so a loop of bound k runs exactly k iterations."""

        def loops_in(block):
            for stmt in block:
                if isinstance(stmt, SWhile):
                    yield stmt
                for sub in stmt_blocks(stmt):
                    yield from loops_in(sub)

        found = 0
        for program in generate_corpus(13, 60):
            for loop in loops_in(program.body):
                found += 1
                counter = loop.cond.lhs.name
                writes = [
                    stmt
                    for stmt in loop.body
                    if getattr(stmt, "name", None) == counter
                ]
                assert len(writes) == 1
                assert writes[0] is loop.body[-1]
        assert found > 0  # the sample actually exercised loops


class TestGenerateProgram:
    def test_single_program_stream_is_deterministic(self):
        assert generate_program(random.Random(1)) == generate_program(random.Random(1))

    def test_every_program_returns(self):
        from repro.imp.syntax import SReturn

        for program in generate_corpus(17, 20):
            assert isinstance(program.body[-1], SReturn)
