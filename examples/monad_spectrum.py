"""The spectrum of machines from one semantics (the paper in one script).

One CPS program; one transition function (Figure 2's ``mnext``); and a
spectrum of machines obtained purely by swapping monadic components:

* the concrete interpreter (Identity monad, real heap),
* the concrete collecting semantics (unique addresses),
* 0CFA / 1CFA / 2CFA (swap the ``Addressable``),
* the store-widened 1CFA (swap the ``Collecting``),
* 1CFA with a counting store (swap the ``StoreLike``),
* 1CFA with abstract garbage collection (swap in a collector).

Run with::

    python examples/monad_spectrum.py
"""

import time

from repro.analysis.report import fmt_table, precision_summary
from repro.cps import (
    analyse_concrete_collecting,
    analyse_kcfa,
    analyse_shared,
    analyse_with_count,
    analyse_with_gc,
    analyse_zerocfa,
    interpret_trace,
    parse_program,
)

SOURCE = """
((lambda (id k)
   (id (lambda (z kz) (kz z))
       (lambda (a)
         (id (lambda (y ky) (ky y))
             (lambda (b) (exit))))))
 (lambda (x j) (j x))
 (lambda (r) (exit)))
"""


def main() -> None:
    program = parse_program(SOURCE)

    rows = []

    start = time.perf_counter()
    trace = interpret_trace(program)
    rows.append(("concrete interpreter", len(trace), "-", f"{time.perf_counter()-start:.4f}s"))

    spectrum = [
        ("concrete collecting", lambda: analyse_concrete_collecting(program)),
        ("0CFA", lambda: analyse_zerocfa(program)),
        ("1CFA", lambda: analyse_kcfa(program, 1)),
        ("2CFA", lambda: analyse_kcfa(program, 2)),
        ("1CFA + shared store", lambda: analyse_shared(program, 1)),
        ("1CFA + counting", lambda: analyse_with_count(program, 1, shared=False)),
        ("1CFA + abstract GC", lambda: analyse_with_gc(program, 1)),
    ]
    for label, run in spectrum:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        mean_flow = precision_summary(result.flows_to())["mean_flow"]
        rows.append((label, result.num_states(), mean_flow, f"{elapsed:.4f}s"))

    print(fmt_table(["machine", "states/steps", "mean flow", "time"], rows))
    print()
    print(
        "Same mnext, same program -- every row is a different plug-in\n"
        "combination of monad, Addressable, StoreLike and Collecting."
    )


if __name__ == "__main__":
    main()
