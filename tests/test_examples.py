"""Smoke tests: every example script runs and prints its headline result.

Examples are documentation that executes; these tests keep them from
rotting.  Each example module is imported from the examples directory
and its ``main()`` invoked under captured stdout.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,expected_fragments",
    [
        ("quickstart", ["|flows| 0CFA", "1CFA distinguishes"]),
        ("monad_spectrum", ["concrete interpreter", "1CFA + abstract GC", "Same mnext"]),
        (
            "direct_style_pipeline",
            ["concrete CESK value", "agree on the final user value"],
        ),
        ("fj_class_flow", ["typechecked", "Bark", "1CFA resolves each dispatch"]),
        ("polyvariance_zoo", ["0CFA", "max values/address", "N=64 is exact"]),
    ],
)
def test_example_runs(name, expected_fragments, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    for fragment in expected_fragments:
        assert fragment in out, f"{name}: missing {fragment!r}"


def test_all_examples_have_smoke_tests():
    scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart",
        "monad_spectrum",
        "direct_style_pipeline",
        "fj_class_flow",
        "polyvariance_zoo",
    }
    assert scripts == covered
