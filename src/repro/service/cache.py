"""Content-addressed fixpoint cache: never compute the same analysis twice.

A fixed point is a pure function of ``(program, configuration)``.  Both
inputs already carry stable identities -- programs are interned term
graphs (:func:`program_digest` folds one into a structural SHA-256) and
configurations render to :meth:`repro.config.AnalysisConfig.cache_key` --
so a cache entry is addressed by content, never by file name or
timestamp: two differently-sourced but alpha-identical programs under a
preset and the equivalent hand-built configuration all share one entry.

On disk a cache is a directory::

    <root>/index.json            # key -> entry metadata (deterministic JSON)
    <root>/objects/<key>.pkl     # pickled {"fp": ..., "records": ...}

The index is rendered with sorted keys and stable value types so two
caches that saw the same traffic diff cleanly (the same property the
batch reports have, via :mod:`repro.analysis.report`).

Loading is more than unpickling: pickled terms arrive in a fresh process
as non-canonical object graphs (the fork/pickle hazard documented in
:mod:`repro.util.intern`), so :meth:`FixpointCache.get` rehydrates every
load through :func:`repro.util.intern.rehydrate` -- after which
``@hash_consed`` identity-fast equality holds against locally parsed
programs again.  ``hit``/``miss``/``evict``/``store`` counts are kept
per instance (:meth:`FixpointCache.stats`) and per entry (in the index).
"""

from __future__ import annotations

import hashlib
import json
import pickle
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.report import render_json
from repro.config import AnalysisConfig
from repro.core.fixpoint import WarmStart
from repro.obs.metrics import default_registry
from repro.util.intern import decompose, rehydrate

#: Bump when the pickle payload layout changes; mismatched entries are
#: treated as misses (and evicted) instead of being misread.
PAYLOAD_SCHEMA = 1

#: Recursion headroom for (un)pickling fixed points.  ``pickle`` recurses
#: once per nesting level and the ``@hash_consed`` ``__getstate__`` hook
#: adds a Python frame per node, so a chain-shaped program of depth ``d``
#: needs roughly ``3d`` frames -- far past the interpreter default of
#: 1000 for the corpus generator families.  20k supports chains several
#: thousand calls deep while staying well inside an 8 MiB thread stack.
DEEP_RECURSION_LIMIT = 20_000


def ensure_deep_pickle() -> None:
    """Raise the interpreter recursion limit for deep-term (un)pickling.

    Idempotent and monotone (never lowers a higher limit).  Called at
    every cache/pool pickle boundary: the cache's own load/store and --
    because ``multiprocessing`` serializes results outside any code we
    can wrap -- once per worker process and once in the batch parent.
    """
    sys.setrecursionlimit(max(sys.getrecursionlimit(), DEEP_RECURSION_LIMIT))


# ---------------------------------------------------------------------------
# Structural digests
# ---------------------------------------------------------------------------


def _atom_token(value: Any) -> str:
    """A type-discriminating token for digest leaves.

    ``repr`` alone would conflate ``"1"`` and ``1`` only if reprs
    collide across types -- they do not for the atoms terms are built
    from (strings, ints, bools, None, enums), but the type name is
    prefixed anyway so the invariant is free.
    """
    return f"{type(value).__name__}:{value!r}"


def program_digest(program: Any) -> str:
    """A stable structural SHA-256 of an interned program term.

    Depends only on the term's structure -- not on the process, the
    intern pool's state, Python's randomized string hashes, or object
    identity -- so the same source parsed in any process, any session,
    digests identically (pinned by the cache tests).  Structure comes
    from the shared :func:`repro.util.intern.decompose`, so digesting
    can never diverge from rehydration or the warm-start subterm checks;
    order-free containers (frozensets; dict/PMap key-value pairs) digest
    order-independently.  Computed iteratively post-order with an
    identity memo: interned sharing makes it O(distinct subterms) and
    safe on chain-shaped programs whose depth would break a recursive
    walk.
    """
    memo: dict[int, str] = {}
    stack: list[tuple[Any, bool]] = [(program, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in memo:
            continue
        kind, children = decompose(node)
        if kind is None:
            memo[key] = _atom_token(node)
            continue
        tag = type(node).__name__ if kind == "dataclass" else kind
        if expanded:
            child_digests = [memo[id(child)] for child in children]
            if kind == "frozenset":
                child_digests.sort()
            elif kind in ("dict", "pmap"):
                # children are flattened key/value pairs; make the digest
                # independent of mapping iteration order
                pairs = [
                    f"{key_digest}:{value_digest}"
                    for key_digest, value_digest in zip(
                        child_digests[0::2], child_digests[1::2]
                    )
                ]
                child_digests = sorted(pairs)
            payload = f"{tag}({','.join(child_digests)})"
            memo[key] = hashlib.sha256(payload.encode()).hexdigest()
        else:
            stack.append((node, True))
            for child in children:
                if id(child) not in memo:
                    stack.append((child, False))
    digest = memo[id(program)]
    if len(digest) != 64:  # the whole program was a single atom
        digest = hashlib.sha256(digest.encode()).hexdigest()
    return digest


def cache_key(program: Any, config: AnalysisConfig) -> str:
    """The content address of one ``(program, configuration)`` cell."""
    config_part = hashlib.sha256(config.cache_key().encode()).hexdigest()
    return f"{program_digest(program)[:32]}-{config_part[:16]}"


# ---------------------------------------------------------------------------
# The on-disk cache
# ---------------------------------------------------------------------------


@dataclass
class CachedFixpoint:
    """One loaded (and rehydrated) cache entry.

    ``program`` is the term the entry was computed from (stored in the
    records sidecar): the donor-eligibility check in
    :func:`repro.service.incremental.reanalyse` needs the actual term --
    a digest cannot answer "is the old program an exact subterm of the
    new one", which is what makes an automatic warm start exact.
    """

    key: str
    fp: Any
    records: Mapping | None
    config_key: str
    program_digest: str
    program: Any = None

    @property
    def warmable(self) -> bool:
        """Whether the entry carries evaluation records to warm-start from."""
        return bool(self.records)

    def warm_start(self) -> WarmStart:
        """Package the entry as an engine seed (shared-store entries only)."""
        if not self.records:
            raise ValueError(
                f"cache entry {self.key} carries no evaluation records; "
                "it cannot seed a warm start"
            )
        return WarmStart(store=self.fp[1], records=self.records)


@dataclass
class FixpointCache:
    """A content-addressed, LRU-evicting, on-disk fixpoint store.

    ``max_entries`` bounds the object store (least-recently-*used* entry
    evicted first); ``None`` means unbounded -- the right default for CI
    and batch sweeps over a fixed corpus.

    Concurrency contract: hits are read-only (per-entry hit counters and
    recency live in memory and reach disk with the next ``put``), so any
    number of concurrent *readers* share a directory safely.  Within one
    process, concurrent writers (the analysis server's worker threads)
    are serialized through an internal lock -- the index rewrite and the
    write-then-rename of payloads happen under it.  Concurrent writers in
    *separate processes* remain unsupported: the index is rewritten whole
    on ``put``, so two simultaneously-writing processes race
    last-writer-wins (the batch runner keeps all writes in one parent
    process, and the server owns its cache directory, for exactly this
    reason).

    Counter lifetimes: ``hits``/``misses``/``evictions``/``stores`` count
    *this instance's* traffic (a CLI invocation, one server process).
    The cumulative counters across every instance that ever wrote this
    directory persist in the index document and surface as the
    ``lifetime`` block of :meth:`stats` -- so a cache directory's history
    survives process exits instead of resetting with each invocation.
    They reach disk with every index write; a host that serves reads
    without writing (a hit-only server session) flushes them explicitly
    via :meth:`flush_stats` (the server's graceful shutdown does).
    """

    root: Path
    max_entries: int | None = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    _index: dict = field(default_factory=dict, repr=False)
    _base_stats: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        document = self._read_document()
        self._index = document["entries"]
        self._base_stats = document["stats"]

    # -- paths & index -----------------------------------------------------

    @property
    def index_path(self) -> Path:
        """Where the deterministic JSON index lives."""
        return self.root / "index.json"

    @property
    def objects_dir(self) -> Path:
        """Where the pickled fixpoints live."""
        return self.root / "objects"

    def _read_document(self) -> dict:
        empty = {"entries": {}, "stats": {}}
        if not self.index_path.exists():
            return empty
        try:
            with open(self.index_path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # unreadable state is a miss everywhere else in this class;
            # a damaged index likewise degrades to an empty cache (the
            # orphaned object files are simply overwritten by future
            # puts of the same content address)
            return empty
        if not isinstance(document, dict):
            return empty
        entries = document.get("entries", {})
        stats = document.get("stats", {})
        return {
            "entries": entries if isinstance(entries, dict) else {},
            "stats": stats if isinstance(stats, dict) else {},
        }

    def _write_index(self) -> None:
        document = {
            "schema": f"fixpoint-cache/{PAYLOAD_SCHEMA}",
            "entries": self._index,
            "stats": self._lifetime_stats(),
        }
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(render_json(document))
        tmp.replace(self.index_path)

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.pkl"

    def _records_path(self, key: str) -> Path:
        # warm-start records are typically larger than the fixed point
        # itself, so they live in a sidecar loaded only on demand
        return self.objects_dir / f"{key}.records.pkl"

    def _count(self, counter: str) -> None:
        # the instance attribute stays authoritative (BatchReport and the
        # persisted lifetime block read it); the process registry gets a
        # mirrored increment so `repro stats` sees cache traffic too
        setattr(self, counter, getattr(self, counter) + 1)
        default_registry().counter("cache_events_total", kind=counter).inc()

    # -- the cache protocol ------------------------------------------------

    def get(
        self, program: Any, config: AnalysisConfig, with_records: bool = True
    ) -> CachedFixpoint | None:
        """Load the entry for ``(program, config)``, rehydrated, or ``None``."""
        key = cache_key(program, config)
        return self.get_key(key, with_records=with_records)

    def get_key(
        self, key: str, with_records: bool = True, count: bool = True
    ) -> CachedFixpoint | None:
        """Load an entry by its content address (see :func:`cache_key`).

        ``with_records=False`` skips the warm-start sidecar: callers that
        only need the fixed point (the batch runner's hit path) avoid
        unpickling and rehydrating the per-configuration records, which
        usually outweigh the fixed point.  ``count=False`` keeps the
        hit/recency bookkeeping untouched (donor *probes*, which may be
        rejected, must not read as answered queries).  Hits touch nothing
        on disk; the per-entry counters reach the index with the next
        ``put``.  An entry that cannot be read back (gone, truncated,
        foreign schema) is a miss and is forgotten, never an exception.
        """
        meta = self._index.get(key)
        if meta is None:
            if count:
                self._count("misses")
            return None
        path = self._object_path(key)
        ensure_deep_pickle()
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # dangling or corrupt entry (removed/truncated behind our
            # back): forget it so e.g. latest_for cannot keep selecting a
            # ghost donor, and report a miss rather than crash
            if count:
                self._count("misses")
            self._forget(key)
            return None
        if not isinstance(payload, dict) or payload.get("schema") != PAYLOAD_SCHEMA:
            if count:
                self._count("misses")
            self._forget(key)
            return None
        records = program = None
        if with_records and meta.get("has_records"):
            records_path = self._records_path(key)
            try:
                with open(records_path, "rb") as handle:
                    sidecar = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                # a damaged sidecar only costs the warm start, not the
                # fixed point: serve the entry records-free
                sidecar = {}
                meta["has_records"] = False
            records = sidecar.get("records")
            program = sidecar.get("program")
        # one rehydration pass over everything together, so fixed point,
        # records and program share canonical representatives
        fp, records, program = rehydrate((payload["fp"], records, program))
        if count:
            self._count("hits")
            meta["hits"] = meta.get("hits", 0) + 1
            meta["last_used"] = self._now()
        return CachedFixpoint(
            key=key,
            fp=fp,
            records=records,
            config_key=meta.get("config_key", ""),
            program_digest=meta.get("program_digest", ""),
            program=program,
        )

    def put(
        self,
        program: Any,
        config: AnalysisConfig,
        fp: Any,
        records: Mapping | None = None,
        seconds: float | None = None,
    ) -> str:
        """Store a fixed point (plus optional warm-start records); return its key."""
        key = cache_key(program, config)
        path = self._object_path(key)
        records_path = self._records_path(key)
        ensure_deep_pickle()
        with self._lock:
            # write-then-rename, like the index: a process killed mid-write
            # must never leave a truncated pickle behind a valid index entry
            tmp = path.with_suffix(".pkl.tmp")
            with open(tmp, "wb") as handle:
                pickle.dump({"schema": PAYLOAD_SCHEMA, "fp": fp}, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
            if records:
                # the program rides along so warm-start donor eligibility can
                # be decided against the actual term (see CachedFixpoint)
                sidecar = {"records": dict(records), "program": program}
                tmp = records_path.with_suffix(".pkl.tmp")
                with open(tmp, "wb") as handle:
                    pickle.dump(sidecar, handle, protocol=pickle.HIGHEST_PROTOCOL)
                tmp.replace(records_path)
            else:
                records_path.unlink(missing_ok=True)
            now = self._now()
            self._index[key] = {
                "program_digest": program_digest(program),
                "config_key": config.cache_key(),
                "created": now,
                "last_used": now,
                "hits": 0,
                "size_bytes": path.stat().st_size,
                "has_records": bool(records),
                "seconds": round(seconds, 6) if seconds is not None else None,
            }
            self._count("stores")
            self._evict_over_budget()
            self._write_index()
        return key

    def put_payload(
        self,
        program: Any,
        config: AnalysisConfig,
        object_blob: bytes,
        records_blob: bytes | None = None,
        seconds: float | None = None,
    ) -> str:
        """Store pre-pickled payload bytes directly; return the entry's key.

        The batch runner's transport optimisation: workers already
        serialize their results to cross the process boundary, so they
        pickle the exact on-disk shapes (``object_blob`` an encoding of
        ``{"schema": PAYLOAD_SCHEMA, "fp": fp}``, ``records_blob`` of
        the records sidecar) and the parent writes those bytes straight
        through -- no parent-side unpickle/rehydrate/repickle of the
        records, which usually outweigh the fixed point.  The disk
        format is byte-compatible with :meth:`put`; ``get``/``get_key``
        cannot tell the difference.
        """
        key = cache_key(program, config)
        path = self._object_path(key)
        records_path = self._records_path(key)
        with self._lock:
            tmp = path.with_suffix(".pkl.tmp")
            tmp.write_bytes(object_blob)
            tmp.replace(path)
            if records_blob is not None:
                tmp = records_path.with_suffix(".pkl.tmp")
                tmp.write_bytes(records_blob)
                tmp.replace(records_path)
            else:
                records_path.unlink(missing_ok=True)
            now = self._now()
            self._index[key] = {
                "program_digest": program_digest(program),
                "config_key": config.cache_key(),
                "created": now,
                "last_used": now,
                "hits": 0,
                "size_bytes": path.stat().st_size,
                "has_records": records_blob is not None,
                "seconds": round(seconds, 6) if seconds is not None else None,
            }
            self._count("stores")
            self._evict_over_budget()
            self._write_index()
        return key

    def latest_for(self, config: AnalysisConfig) -> CachedFixpoint | None:
        """The most recently used *warmable* entry for this configuration.

        This is the donor-lookup behind automatic warm starts: an edited
        program digests to a fresh key, but its predecessor ran under the
        same configuration, so the youngest records-bearing entry with a
        matching ``config_key`` is the natural seed
        (:mod:`repro.service.incremental` decides whether to use it).
        """
        config_key = config.cache_key()
        candidates = sorted(
            (
                (meta.get("last_used", 0.0), key)
                for key, meta in self._index.items()
                if meta.get("config_key") == config_key and meta.get("has_records")
            ),
            reverse=True,
        )
        for _stamp, key in candidates:
            # a donor probe is not an answered query: keep hit/recency
            # bookkeeping untouched (the caller may yet reject the donor)
            entry = self.get_key(key, count=False)
            if entry is not None and entry.warmable:
                return entry
        return None

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/evict/store counters plus the current entry count.

        The top-level counters are this instance's (one process's)
        traffic -- unchanged shape, so batch reports stay comparable.
        ``lifetime`` adds the cumulative counters across every instance
        that ever wrote this directory (persisted in the index; see the
        class docstring): one counter source whether the numbers are
        read from a ``BatchReport``, the server's ``stats`` method, or a
        later CLI invocation over the same cache directory.
        """
        return {
            "entries": len(self._index),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "lifetime": self._lifetime_stats(),
        }

    def _lifetime_stats(self) -> dict:
        """Session counters folded onto the persisted base counters."""
        base = self._base_stats
        return {
            "hits": base.get("hits", 0) + self.hits,
            "misses": base.get("misses", 0) + self.misses,
            "evictions": base.get("evictions", 0) + self.evictions,
            "stores": base.get("stores", 0) + self.stores,
        }

    def flush_stats(self) -> None:
        """Persist the lifetime counters (and per-entry recency) now.

        ``put`` already writes the index; this is for sessions that only
        *read* (a hit-serving server, a cache-hot batch): without it their
        hits would evaporate with the process.  The server's graceful
        shutdown calls this; ``run_batch`` does too when it used a cache.
        """
        with self._lock:
            self._write_index()

    def _forget(self, key: str) -> None:
        """Drop an unusable entry from the in-memory index only.

        Called from read paths, which must stay read-only on disk (the
        class's concurrency contract): the on-disk index self-repairs at
        the next ``put``, and any stale object files are content-addressed
        so a future put of the same key simply overwrites them.
        """
        self._index.pop(key, None)

    def _evict_over_budget(self) -> None:
        if self.max_entries is None:
            return
        while len(self._index) > self.max_entries:
            key = min(self._index, key=lambda k: self._index[k].get("last_used", 0.0))
            self._index.pop(key)
            self._object_path(key).unlink(missing_ok=True)
            self._records_path(key).unlink(missing_ok=True)
            self._count("evictions")

    @staticmethod
    def _now() -> float:
        return time.time()
