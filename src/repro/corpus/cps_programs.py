"""Handwritten CPS programs and scalable generator families.

Conventions: user functions take their continuation as the last
parameter; the top-level halt continuation is ``(lambda (r) (exit))``.
Programs in :data:`PROGRAMS` are closed, terminating (except ``omega``)
and small enough for the concrete collecting semantics; the generators
below produce the parameterized families the benchmarks sweep over.
"""

from __future__ import annotations

from repro.cps.parser import parse_cexp
from repro.cps.syntax import Call, CExp, Exit, Lam, Ref
from repro.util.intern import intern

HALT = "(lambda (r) (exit))"

#: The identity function applied once: the smallest sanity check.
IDENTITY = f"""
((lambda (x k) (k x))
 (lambda (z j) (j z))
 {HALT})
"""

#: Identity applied to itself, then to a second lambda: two call sites.
ID_ID = f"""
((lambda (id k)
   (id id (lambda (v) (v (lambda (w jw) (jw w)) k))))
 (lambda (x j) (j x))
 {HALT})
"""

#: The Might-Smaragdakis-Van Horn example behind the k-CFA paradox:
#: one identity applied at two sites.  0CFA conflates the two results;
#: 1CFA keeps them apart (experiments E3, E7).
MJ09 = """
((lambda (id k)
   (id (lambda (z kz) (kz z))
       (lambda (a)
         (id (lambda (y ky) (ky y))
             (lambda (b) (exit))))))
 (lambda (x j) (j x))
 (lambda (r) (exit)))
"""

#: The divergent omega combinator in CPS: the concrete machine loops
#: forever; every abstract analysis terminates on it.
OMEGA = f"""
((lambda (x k) (x x k))
 (lambda (y j) (y y j))
 {HALT})
"""

#: Self-application through a shared helper; stresses closure capture.
SELF_APPLY = f"""
((lambda (apply k)
   (apply (lambda (g jg) (g (lambda (q jq) (jq q)) jg)) k))
 (lambda (f j) (f f j))
 {HALT})
"""

PROGRAMS: dict[str, CExp] = {}


def _register(name: str, source: str) -> None:
    PROGRAMS[name] = parse_cexp(source)


_register("identity", IDENTITY)
_register("id-id", ID_ID)
_register("mj09", MJ09)
_register("omega", OMEGA)
_register("self-apply", SELF_APPLY)


def program(name: str) -> CExp:
    """Fetch a corpus program by name."""
    return PROGRAMS[name]


# ---------------------------------------------------------------------------
# Generator families
# ---------------------------------------------------------------------------


def id_chain(n: int) -> CExp:
    """``n`` nested applications of one identity function to ``n`` distinct lambdas.

    Monovariant (0CFA) analysis merges all ``n`` arguments through the
    shared parameter ``x``; 1CFA distinguishes the call sites.  The
    average flow-set size therefore separates the two analyses cleanly
    (experiments E3/E7), and the program's size grows linearly for
    scaling curves.
    """
    if n < 1:
        raise ValueError("chain length must be at least 1")
    # nodes are interned bottom-up, as the parsers intern theirs: a
    # second build of the same chain is then pointer-equal to the first,
    # so cache lookups never fall back to a structural comparison that
    # recurses through the whole (depth-n) term
    body: CExp = intern(Exit())
    for i in reversed(range(n)):
        distinct_arg = intern(
            Lam((f"u{i}", f"ju{i}"), Call(Ref(f"ju{i}"), (Ref(f"u{i}"),)))
        )
        body = intern(
            Call(intern(Ref("id")), (distinct_arg, intern(Lam((f"r{i}",), body))))
        )
    identity = intern(Lam(("x", "j"), Call(Ref("j"), (Ref("x"),))))
    return intern(
        Call(intern(Lam(("id", "k"), body)), (identity, intern(Lam(("r",), Exit()))))
    )


def id_chain_edited(n: int) -> CExp:
    """One incremental edit applied to :func:`id_chain`: append a link at the entry.

    The canonical warm-start workload: a fresh identity application is
    wrapped *around* the chain, so every sub-term of ``id_chain(n)`` is
    shared (pointer-identical, thanks to interning) with the unedited
    program, and after one application step the machine configurations
    coincide with the original run's -- exactly the shape of a small
    edit to a large program.  Editing the chain at its inner end would
    instead rebuild every enclosing term, which is the
    whole-program-rewrite case warm starts are *not* for (see
    PERFORMANCE.md, "Caching and warm starts").
    """
    base = id_chain(n)
    extra = intern(Lam(("w0", "jw0"), Call(Ref("jw0"), (Ref("w0"),))))
    return intern(Call(intern(Lam(("pre",), base)), (extra,)))


def heap_clone(n: int) -> CExp:
    """A per-state-store (heap-cloning) blowup family (experiment E4).

    A one-field "cell" is built by applying a maker *twice through the
    same call site* (the ``ap`` trampoline), so under any k-CFA the
    cell's captured variable ``w`` holds two closures at a single
    address.  The returned getter is then read ``n`` times, each read
    binding a *fresh* variable nondeterministically to one of the two
    closures.  With per-state stores the fixed point holds one store per
    choice prefix -- ``Theta(2^n)`` configurations -- while the
    single-threaded store (6.5) stays linear.  This realizes, on a
    family our machines can sweep, the exponential-vs-polynomial
    separation the paper attributes to store cloning.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    body: CExp = Exit()
    for i in reversed(range(n)):
        body = Call(Ref("g0"), (Ref("g0"), Lam((f"r{i}",), body)))
    f1 = Lam(("p1", "jp1"), Call(Ref("jp1"), (Ref("p1"),)))
    f2 = Lam(("p2", "jp2"), Call(Ref("jp2"), (Ref("p2"),)))
    seeded = Call(
        Ref("ap"),
        (
            Ref("mk"),
            f1,
            Lam(
                ("s0",),
                Call(Ref("ap"), (Ref("mk"), f2, Lam(("g0",), body))),
            ),
        ),
    )
    trampoline = Lam(("g", "v", "k"), Call(Ref("g"), (Ref("v"), Ref("k"))))
    maker = Lam(
        ("w", "j"),
        Call(Ref("j"), (Lam(("q", "jq"), Call(Ref("jq"), (Ref("w"),))),)),
    )
    return Call(Lam(("ap", "mk", "k0"), seeded), (trampoline, maker, Lam(("r",), Exit())))


def deep_call_tower(n: int) -> CExp:
    """``n`` distinct unary workers chained linearly; ``n`` call sites,
    no merging.  A pure size-scaling family for timing curves."""
    if n < 1:
        raise ValueError("tower height must be at least 1")
    body: CExp = Exit()
    for i in reversed(range(n)):
        body = Call(Ref(f"f{i}"), (Lam((f"v{i}",), body),))
    # Build: ((lambda (f0 ... f{n-1} k) body) w0 ... w{n-1} halt)
    params = tuple(f"f{i}" for i in range(n)) + ("k",)
    workers = tuple(
        Lam((f"c{i}",), Call(Ref(f"c{i}"), (Lam((f"z{i}", f"jz{i}"), Call(Ref(f"jz{i}"), (Ref(f"z{i}"),))),)))
        for i in range(n)
    )
    return Call(Lam(params, body), workers + (Lam(("r",), Exit()),))


def generated_families() -> dict:
    """Small representatives of every generator, for smoke tests."""
    return {
        "id-chain-4": id_chain(4),
        "heap-clone-4": heap_clone(4),
        "call-tower-4": deep_call_tower(4),
    }
