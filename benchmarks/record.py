"""Record the engine-suite benchmark trajectory to ``BENCH_<n>.json``.

Runs every fixed-point engine / store-impl combination over one workload
per language -- plus the abstract-GC workloads, a counting workload, the
generic-vs-fused transition rows, and the service-layer workloads
(sharded batch pool, fixpoint-cache hits, warm-start re-analysis, and
the resident-server hot-request latency against a cold CLI run) -- and
writes a machine-readable baseline, so each PR leaves a ``BENCH_*.json``
behind and regressions are visible as a series rather than one-off
pytest-benchmark artifacts::

    PYTHONPATH=src python benchmarks/record.py            # next BENCH_<n>.json
    PYTHONPATH=src python benchmarks/record.py --check    # also gate on speedup
    PYTHONPATH=src python benchmarks/record.py --output BENCH_9.json \\
        --baseline BENCH_4.json                           # compare to a prior PR

``--output`` defaults to the next free ``BENCH_<n>.json`` in the
working directory and ``--baseline`` prints per-workload deltas against
any earlier record, so growing the series requires no code edits.

Every workload is assembled through :func:`repro.config.assemble` -- the
benchmark harness exercises the same configuration layer as the CLI and
the tests; the service workloads go through
:func:`repro.service.batch.run_batch` and the warm-start engine path,
the same code the ``repro batch`` CLI runs.

The JSON shape (see PERFORMANCE.md for how to read it)::

    {
      "schema": "engine-suite/7",
      "workloads": {
        "<workload>": {
          "<engine>/<store_impl>": {            # generic transition
            "seconds": float,
            "evaluations": int, "retriggers": int, "dedup_hits": int,
            "configurations": int
          },
          "<engine>/<store_impl>/fused": {...}, # staged transition
          ...
        }, ...
      },
      "schedule": {
        "<workload>": {                         # fifo vs priority drain
          "engine": "worklist" | "depgraph", "gated": bool,
          "fifo":     {"seconds", "evaluations", "dedup_hits", "max_rank"},
          "priority": {"seconds", "evaluations", "dedup_hits", "max_rank"},
          "eval_reduction": float               # fifo evals / priority evals
        }, ...
      },
      "speedups": {
        "<workload>": {
          "depgraph-versioned-over-kleene-persistent": float,
          "fused-over-generic-depgraph-versioned": float, ...
        }
      },
      "service": {
        "batch-pool":  {"serial_seconds", "pool_seconds", "workers",
                        "pool_workers", "inline_fallbacks", "jobs",
                        "speedup", "cpu_count"},
        "parallel-fixpoint": {"sequential_seconds", "sharded_seconds",
                              "speedup", "shards", "cpu_count",
                              "gil_enabled", "rounds", "peak_frontier"},
        "cache":       {"cold_seconds", "hit_seconds", "speedup"},
        "warm-chain":  {"cold_seconds", "warm_seconds", "speedup",
                        "cold_evaluations", "warm_evaluations"},
        "serve-latency": {"cold_cli_seconds", "hot_request_seconds",
                          "speedup", "requests"}
      },
      "observability": {
        "trace-overhead": {"untraced_seconds", "noop_seconds",
                           "traced_seconds", "noop_ratio", "traced_ratio",
                           "trace_events", "rounds"}
      }
    }

Timing: rows are best-of-N with N adaptive (fast workloads repeat up to
nine times), so millisecond-scale cells are stable enough to gate on.

``--check`` exits non-zero when (a) the depgraph/versioned configuration
is less than ``--min-speedup`` (default 2.0) times faster than kleene on
any workload that runs both, (b) the fused transition is less than
``--min-fused-speedup`` (default 2.0) times faster than the generic
transition on any workload carrying both depgraph/versioned rows, (c)
the adaptive batch pool *loses* to the serial sweep: less than
``--min-pool-speedup`` (default 1.0, minus a small timing-jitter
tolerance) at **any** core count -- the adaptive runner degrades to the
inline path when a pool cannot pay, so a loss is a bug, not a hardware
limitation -- (d) the pool actually engaged on enough cores but beat
serial by less than ``--min-engaged-pool-speedup`` (default 2.0), (e)
the sharded fixpoint is less than ``--min-sharded-speedup`` (default
1.5) times faster than the sequential engine -- gated only on >= 4
cores with the GIL disabled, since worker threads over pure-Python
evaluations cannot overlap under a GIL; skipped with a notice
otherwise (the fixed-point *equality* is asserted unconditionally) --
(f) warm-starting the one-edit chain workload is less than
``--min-warm-speedup`` (default 5.0) times faster than re-analysing it
cold, (g) a repeat request through the resident server's hot tier is
less than ``--min-serve-speedup`` (default 20.0) times faster than a
cold ``repro analyze`` CLI invocation of the same cell -- the whole
point of keeping an engine resident is amortizing interpreter start-up,
imports, and the analysis itself, so this gate holds on any hardware --
or (h) the priority schedule fails its evaluation-count contract: on
the gated chain/loop cells of the dependency-blind engine it must
evaluate at least ``--min-eval-reduction`` (default 1.5) times fewer
configurations than FIFO, and on *every* schedule cell it must never
evaluate more than :data:`_SCHEDULE_NEVER_WORSE` times FIFO's count.
Evaluation counts, unlike seconds, are hardware-independent, so this
gate never needs a skip condition.  Finally (i) tracing must stay
cheap: on the cps id-chain-200 depgraph/versioned cell a live tracer
may cost at most ``--min-trace-overhead-ratio`` (default 1.10) times
the plain run, and the always-on no-op instrumentation path at most
:data:`_NOOP_TRACE_BUDGET` (1.03) times -- the observability layer's
overhead promise, measured on every record.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time

from repro.config import AnalysisConfig, assemble, preset_config
from repro.corpus.cps_programs import id_chain_edited
from repro.util.workloads import resolve_workload

#: (engine, store_impl, transition) combinations; kleene has no
#: mutable-store variant, and the fused row rides the fast configuration.
COMBINATIONS = (
    ("kleene", "persistent", "generic"),
    ("worklist", "persistent", "generic"),
    ("worklist", "versioned", "generic"),
    ("depgraph", "persistent", "generic"),
    ("depgraph", "versioned", "generic"),
    ("depgraph", "versioned", "fused"),
)

#: The GC comparison: the old kleene-only baseline against the
#: dependency-tracked engine (generic and fused) on the mutable store.
GC_COMBINATIONS = (
    ("kleene", "persistent", "generic"),
    ("depgraph", "persistent", "generic"),
    ("depgraph", "versioned", "generic"),
    ("depgraph", "versioned", "fused"),
)

#: Workloads carrying both depgraph/versioned transition rows that the
#: ``--check`` fused gate applies to.  The GC rows are exempt: there the
#: per-evaluation reachability sweep dominates, so staging the step
#: cannot buy a fixed multiple (PERFORMANCE.md explains the cost model).
FUSED_GATED = (
    "cps-id-chain-200-k1",
    "lam-church-two-two-k1",
    "fj-visitor-k1",
)

#: A row faster than this repeats (best of up to nine runs): the FJ and
#: small-chain cells are millisecond-scale and one run is all jitter.
_REPEAT_UNDER_SECONDS = 0.25
_MAX_REPS = 9


def _runner(language: str, program, k: int = 1, gc: bool = False, counting: bool = False):
    """A workload runner assembled through the configuration layer."""

    def run(engine: str, impl: str, transition: str, stats: dict):
        config = AnalysisConfig(
            language=language,
            k=k,
            gc=gc,
            counting=counting,
            engine=engine,
            store_impl="persistent" if engine == "kleene" else impl,
            transition=transition,
            label=f"bench-{language}-{engine}-{impl}-{transition}",
        )
        analysis = assemble(config, program=program)
        result = analysis.run(program)
        stats.update(analysis.last_stats)
        return result

    return run


def _timed_best(runner, engine: str, impl: str, transition: str, stats: dict) -> float:
    """Best-of-N wall clock; N adapts so fast cells are not pure jitter."""
    best = None
    for _ in range(_MAX_REPS):
        stats.clear()
        start = time.perf_counter()
        runner(engine, impl, transition, stats)
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
        if best >= _REPEAT_UNDER_SECONDS:
            break
    return best


def _workloads() -> dict:
    """Label -> (runner(engine, impl, transition, stats) -> result, combos)."""
    chain30 = resolve_workload("cps", "id-chain-30")
    chain200 = resolve_workload("cps", "id-chain-200")
    church = resolve_workload("lam", "church-two-two")
    visitor = resolve_workload("fj", "visitor")
    return {
        "cps-id-chain-30-k1": (_runner("cps", chain30), COMBINATIONS),
        "lam-church-two-two-k1": (_runner("lam", church), COMBINATIONS),
        "fj-visitor-k1": (_runner("fj", visitor), COMBINATIONS),
        # the scaling workload behind the headline speedup: the store
        # grows linearly with the chain, so the persistent path goes
        # quadratic; kleene and the blind worklist are far too slow here
        "cps-id-chain-200-k1": (
            _runner("cps", chain200),
            (
                ("depgraph", "persistent", "generic"),
                ("depgraph", "versioned", "generic"),
                ("depgraph", "versioned", "fused"),
            ),
        ),
        # abstract GC at worklist speed vs the Kleene+GC baseline (the
        # per-evaluation reachability sweep is the same; the worklist
        # engines win by re-evaluating far fewer configurations)
        "cps-id-chain-30-k1-gc": (_runner("cps", chain30, gc=True), GC_COMBINATIONS),
        "lam-church-two-two-k1-gc": (_runner("lam", church, gc=True), GC_COMBINATIONS),
        "fj-visitor-k1-gc": (_runner("fj", visitor, gc=True), GC_COMBINATIONS),
        # counting at worklist speed (write-log saturation)
        "cps-id-chain-30-k1-counting": (
            _runner("cps", chain30, counting=True),
            GC_COMBINATIONS,
        ),
    }


def _row_key(engine: str, impl: str, transition: str) -> str:
    key = f"{engine}/{impl}"
    return key if transition == "generic" else f"{key}/{transition}"


#: Priority may never evaluate more than this multiple of FIFO's count
#: on any schedule cell (PYTHONHASHSEED moves FIFO's exact counts a few
#: per cent between runs; a real scheduling regression is far larger).
_SCHEDULE_NEVER_WORSE = 1.05


def _schedule_workloads() -> tuple:
    """The fifo-vs-priority comparison cells.

    The ``gated`` cells run the dependency-*blind* worklist engine on
    chain- and loop-shaped workloads -- the shape the rank order exists
    for, where FIFO re-evaluates once per growth wave and priority once
    per stable input -- and must clear ``--min-eval-reduction``.  The
    depgraph cells are ungated on the reduction (the dependency map
    already suppresses most wasted work, so priority is only neutral to
    modestly better there) but still bound by the never-worse check.
    """
    chain30 = resolve_workload("cps", "id-chain-30")
    chain200 = resolve_workload("cps", "id-chain-200")
    church = resolve_workload("lam", "church-two-two")
    visitor = resolve_workload("fj", "visitor")
    return (
        # (label, language, program, engine, gated)
        ("cps-id-chain-30-k1", "cps", chain30, "worklist", True),
        ("cps-id-chain-200-k1", "cps", chain200, "worklist", True),
        ("lam-church-two-two-k1", "lam", church, "worklist", True),
        ("fj-visitor-k1", "fj", visitor, "worklist", True),
        ("cps-id-chain-200-k1-depgraph", "cps", chain200, "depgraph", False),
        ("lam-church-two-two-k1-depgraph", "lam", church, "depgraph", False),
    )


def run_schedule_suite() -> dict:
    """Time fifo vs priority drains, asserting bit-identical fixed points.

    Every cell runs the fused transition over the versioned store --
    only the engine (blind vs dependency-tracked) and the ``schedule``
    axis vary, so ``eval_reduction`` isolates exactly what the drain
    order buys.
    """
    suite: dict = {}
    for label, language, program, engine, gated in _schedule_workloads():
        cells: dict = {}
        fps: dict = {}
        for schedule in ("fifo", "priority"):
            config = AnalysisConfig(
                language=language,
                k=1,
                engine=engine,
                store_impl="versioned",
                transition="fused",
                schedule=schedule,
                label=f"bench-schedule-{label}-{schedule}",
            )
            stats: dict = {}

            def run(_engine, _impl, _transition, stats, config=config):
                analysis = assemble(config, program=program)
                result = analysis.run(program)
                stats.update(analysis.last_stats)
                return result

            best = None
            for _ in range(_MAX_REPS):
                stats.clear()
                start = time.perf_counter()
                result = run(None, None, None, stats)
                seconds = time.perf_counter() - start
                best = seconds if best is None else min(best, seconds)
                if best >= _REPEAT_UNDER_SECONDS:
                    break
            fps[schedule] = result.fp
            cells[schedule] = {
                "seconds": round(best, 6),
                "evaluations": stats.get("evaluations"),
                "dedup_hits": stats.get("dedup_hits"),
                "max_rank": stats.get("max_rank"),
            }
        assert fps["priority"] == fps["fifo"], f"schedule fp mismatch on {label}"
        reduction = cells["fifo"]["evaluations"] / cells["priority"]["evaluations"]
        suite[label] = {
            "engine": engine,
            "gated": gated,
            "fifo": cells["fifo"],
            "priority": cells["priority"],
            "eval_reduction": round(reduction, 2),
        }
        print(
            f"{label:28s} {engine:>8s} schedule fifo {cells['fifo']['evaluations']:6d} "
            f"-> priority {cells['priority']['evaluations']:6d} evals "
            f"({reduction:5.2f}x fewer{', gated' if gated else ''})",
            file=sys.stderr,
        )
    return suite


#: The one-edit warm-start workload: chain length for ``id_chain``.
WARM_CHAIN_LENGTH = 400

#: Worker count for the pool-speedup row (and its gate).
POOL_WORKERS = 4

#: Shard count for the parallel-fixpoint row (and its gate).
SHARDS = 4

#: Identical serial/adaptive-inline runs land on either side of exactly
#: 1.0x by scheduler noise; the never-lose pool gate subtracts this.
_POOL_JITTER_TOLERANCE = 0.05


def _gil_enabled() -> bool:
    """Whether this interpreter serializes threads (no free-threading)."""
    return getattr(sys, "_is_gil_enabled", lambda: True)()


def _pool_jobs() -> list:
    """The corpus sweep behind the pool-speedup row.

    Several roughly-balanced, substantial cells (no single job dominates,
    so 4 workers have real parallelism to find), built from the same
    corpus programs the engine rows time.
    """
    from repro.service.batch import BatchJob

    church = [
        ("1cfa", {}),
        ("1cfa", {"store_impl": "persistent"}),
        ("1cfa", {"engine": "worklist"}),
        ("1cfa-gc", {}),
        ("1cfa-gc-fused", {}),
        ("kcfa-counting-fast", {}),
    ]
    jobs = [
        BatchJob(
            config=preset_config(name, "lam").replace(**overrides),
            corpus="church-two-two",
            label=f"lam/church/{name}{'+' if overrides else ''}",
        )
        for name, overrides in church
    ]
    from repro.cps.syntax import pp
    from repro.service.cache import ensure_deep_pickle

    ensure_deep_pickle()  # pp/parse of a deep chain out-recurse the default
    chain_source = pp(resolve_workload("cps", "id-chain-500"))
    jobs.append(
        BatchJob(
            config=preset_config("1cfa", "cps").replace(store_impl="persistent"),
            source=chain_source,
            label="cps/chain-500/1cfa-persistent",
        )
    )
    jobs.append(
        BatchJob(
            config=preset_config("1cfa-gc", "fj"),
            corpus="list-walk",
            label="fj/list-walk/1cfa-gc",
        )
    )
    return jobs


def run_parallel_fixpoint_row() -> dict:
    """Sequential vs sharded worklist on one substantial workload.

    Both cells run the fused depgraph/versioned configuration; the
    sharded cell adds ``parallelism="sharded"`` with :data:`SHARDS`
    worker threads.  The fixed points are asserted bit-identical every
    time -- the speedup is hardware-dependent (and gated only on >= 4
    GIL-free cores; see :func:`check`), the equality never is.
    """
    program = resolve_workload("lam", "church-two-two")
    sequential = preset_config("1cfa-fused", "lam")
    sharded = preset_config("1cfa-sharded", "lam").replace(shards=SHARDS).validated()

    seq_seconds = shard_seconds = None
    shard_stats: dict = {}
    for _ in range(3):  # best-of-3: both cells are well under a second
        analysis = assemble(sequential, program=program)
        start = time.perf_counter()
        seq_result = analysis.run(program)
        elapsed = time.perf_counter() - start
        seq_seconds = elapsed if seq_seconds is None else min(seq_seconds, elapsed)

        analysis = assemble(sharded, program=program)
        start = time.perf_counter()
        shard_result = analysis.run(program)
        elapsed = time.perf_counter() - start
        if shard_seconds is None or elapsed < shard_seconds:
            shard_seconds, shard_stats = elapsed, dict(analysis.last_stats)
        assert shard_result.fp == seq_result.fp, "sharded/sequential fp mismatch"
    return {
        "workload": "lam-church-two-two-k1",
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "gil_enabled": _gil_enabled(),
        "sequential_seconds": round(seq_seconds, 6),
        "sharded_seconds": round(shard_seconds, 6),
        "speedup": round(seq_seconds / shard_seconds, 2),
        "rounds": shard_stats.get("rounds"),
        "peak_frontier": shard_stats.get("peak_frontier"),
    }


#: The serve-latency cell: one corpus program, one preset.
SERVE_CELL = ("cps", "mj09", "1cfa")

#: Repeat counts for the serve-latency row (cold subprocesses are
#: expensive; hot socket requests are not).
_SERVE_COLD_REPS = 3
_SERVE_HOT_REPS = 9


def run_serve_latency_row() -> dict:
    """A hot request through the resident server vs a cold CLI run.

    The cold cell is the honest baseline a user without the server pays:
    a fresh ``python -m repro analyze`` subprocess (interpreter start-up,
    imports, parse, cold fixed point).  The hot cell is the same analysis
    asked of an already-running :class:`~repro.serve.server.ServerHandle`
    whose hot tier was primed by one prior request -- every timed
    response is asserted to carry ``tier: "hot"``, so the row measures
    the memoized path, not a lucky disk hit.
    """
    import subprocess
    import tempfile

    import repro
    from repro.corpus import corpus_program
    from repro.cps.syntax import pp as cps_pp
    from repro.serve.client import ServeClient
    from repro.serve.server import ServerHandle

    lang, corpus, preset = SERVE_CELL
    source = cps_pp(corpus_program(lang, corpus))
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")

    cold_seconds = None
    with tempfile.TemporaryDirectory() as tmp:
        program_path = os.path.join(tmp, f"{corpus}.{lang}")
        with open(program_path, "w") as handle:
            handle.write(source)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "analyze",
            program_path,
            "--lang",
            lang,
            "--preset",
            preset,
        ]
        for _ in range(_SERVE_COLD_REPS):
            start = time.perf_counter()
            subprocess.run(argv, env=env, check=True, capture_output=True)
            elapsed = time.perf_counter() - start
            cold_seconds = elapsed if cold_seconds is None else min(cold_seconds, elapsed)

        hot_seconds = None
        params = {"language": lang, "corpus": corpus, "preset": preset}
        with ServerHandle(cache_dir=os.path.join(tmp, "cache"), workers=2) as handle:
            with ServeClient(handle.port) as client:
                primer = client.call("analyse", params)
                assert primer["tier"] in ("cold", "disk"), primer["tier"]
                for _ in range(_SERVE_HOT_REPS):
                    start = time.perf_counter()
                    row = client.call("analyse", params)
                    elapsed = time.perf_counter() - start
                    assert row["tier"] == "hot", f"repeat request not hot: {row['tier']}"
                    hot_seconds = (
                        elapsed if hot_seconds is None else min(hot_seconds, elapsed)
                    )
    return {
        "workload": f"{lang}-{corpus}-{preset}",
        "requests": _SERVE_HOT_REPS,
        "cold_cli_seconds": round(cold_seconds, 6),
        "hot_request_seconds": round(hot_seconds, 6),
        "speedup": round(cold_seconds / hot_seconds, 2),
    }


#: The no-op tracing path (instrumented code, null tracer) may cost at
#: most this multiple of the plain run -- the instrumentation is
#: phase-level (a handful of ``current_tracer()`` lookups per analysis,
#: nothing in the per-evaluation loop), so the honest budget is tight.
_NOOP_TRACE_BUDGET = 1.03

#: Interleaved best-of rounds for the trace-overhead row: each round
#: runs all three cells back to back so clock drift hits them equally.
_TRACE_OVERHEAD_ROUNDS = 5


def run_trace_overhead_row() -> dict:
    """Untraced vs null-tracer vs actively-traced on the scaling workload.

    Three cells over the cps id-chain-200 depgraph/versioned/fused
    configuration (the hot path the ≤3% no-op budget is promised on):

    * ``untraced`` -- the plain run, no tracer anywhere in sight;
    * ``noop`` -- the same run under an explicitly installed
      :class:`~repro.obs.trace.NullTracer`, i.e. the instrumentation
      fires but every span is the preallocated no-op;
    * ``traced`` -- a live :class:`~repro.obs.trace.Tracer` recording
      every span and event.

    Best-of-N with the cells interleaved per round, so a thermal or
    scheduler shift cannot land on one cell only.  Fixed points are
    asserted bit-identical across all three -- tracing must observe,
    never perturb.
    """
    from repro.obs.trace import NullTracer, Tracer, use_tracer

    program = resolve_workload("cps", "id-chain-200")
    config = AnalysisConfig(
        language="cps",
        k=1,
        engine="depgraph",
        store_impl="versioned",
        transition="fused",
        label="bench-trace-overhead",
    )

    def timed(tracer):
        analysis = assemble(config, program=program)
        if tracer is None:
            start = time.perf_counter()
            result = analysis.run(program)
            return time.perf_counter() - start, result
        with use_tracer(tracer):
            start = time.perf_counter()
            result = analysis.run(program)
            return time.perf_counter() - start, result

    best = {"untraced": None, "noop": None, "traced": None}
    fps: dict = {}
    events = 0
    for _ in range(_TRACE_OVERHEAD_ROUNDS):
        live = Tracer(process_name="bench-trace-overhead")
        for cell, tracer in (
            ("untraced", None),
            ("noop", NullTracer()),
            ("traced", live),
        ):
            seconds, result = timed(tracer)
            if best[cell] is None or seconds < best[cell]:
                best[cell] = seconds
            fps[cell] = result.fp
        events = max(events, len(live.events()))
    assert fps["noop"] == fps["untraced"], "null tracer perturbed the fixed point"
    assert fps["traced"] == fps["untraced"], "live tracer perturbed the fixed point"
    return {
        "workload": "cps-id-chain-200-k1",
        "rounds": _TRACE_OVERHEAD_ROUNDS,
        "untraced_seconds": round(best["untraced"], 6),
        "noop_seconds": round(best["noop"], 6),
        "traced_seconds": round(best["traced"], 6),
        "noop_ratio": round(best["noop"] / best["untraced"], 4),
        "traced_ratio": round(best["traced"] / best["untraced"], 4),
        "trace_events": events,
    }


def run_service_suite() -> dict:
    """Time the service layer: pool sharding, cache hits, warm starts."""
    import tempfile

    from repro.service.batch import run_batch
    from repro.service.cache import FixpointCache
    from repro.service.incremental import reanalyse

    service: dict = {}

    jobs = _pool_jobs()
    start = time.perf_counter()
    serial = run_batch(jobs, workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run_batch(jobs, workers=POOL_WORKERS)
    pool_seconds = time.perf_counter() - start
    for left, right in zip(serial.outcomes, pooled.outcomes):
        assert left.fp == right.fp, f"pool/serial mismatch on {left.job.label}"
    service["batch-pool"] = {
        "jobs": len(jobs),
        "workers": POOL_WORKERS,
        "pool_workers": pooled.pool_workers,
        "inline_fallbacks": pooled.inline_fallbacks,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 6),
        "pool_seconds": round(pool_seconds, 6),
        "speedup": round(serial_seconds / pool_seconds, 2),
    }
    print(
        f"{'service-batch-pool':28s} serial {serial_seconds:7.3f}s  "
        f"pool({POOL_WORKERS}->{pooled.pool_workers}) {pool_seconds:7.3f}s  "
        f"{service['batch-pool']['speedup']:.2f}x",
        file=sys.stderr,
    )

    service["parallel-fixpoint"] = run_parallel_fixpoint_row()
    row = service["parallel-fixpoint"]
    print(
        f"{'service-parallel-fixpoint':28s} seq    {row['sequential_seconds']:7.3f}s  "
        f"sharded({row['shards']}) {row['sharded_seconds']:7.3f}s  "
        f"{row['speedup']:.2f}x (gil={'on' if row['gil_enabled'] else 'off'})",
        file=sys.stderr,
    )

    with tempfile.TemporaryDirectory() as tmp:
        cache = FixpointCache(root=tmp)
        config = preset_config("1cfa-gc", "lam")
        program = resolve_workload("lam", "church-two-two")
        cold = reanalyse(config, program, cache)
        hit = reanalyse(config, program, cache)
        assert hit.mode == "cache-hit" and hit.fp == cold.fp
        service["cache"] = {
            "cold_seconds": round(cold.seconds, 6),
            "hit_seconds": round(hit.seconds, 6),
            "speedup": round(cold.seconds / hit.seconds, 2),
        }
    print(
        f"{'service-cache':28s} cold   {service['cache']['cold_seconds']:7.3f}s  "
        f"hit     {service['cache']['hit_seconds']:7.3f}s  "
        f"{service['cache']['speedup']:.2f}x",
        file=sys.stderr,
    )

    from repro.core.fixpoint import FixpointCapture

    config = preset_config("1cfa", "cps")
    base = resolve_workload("cps", f"id-chain-{WARM_CHAIN_LENGTH}")
    edited = id_chain_edited(WARM_CHAIN_LENGTH)
    capture = FixpointCapture()
    base_result = assemble(config).run(base, capture=capture)
    seed = capture.warm_start(base_result.fp[1])

    cold_stats: dict = {}
    warm_stats: dict = {}
    cold_seconds = warm_seconds = None
    for _ in range(3):  # best-of-3: both cells are well under a second
        analysis = assemble(config)
        start = time.perf_counter()
        cold_result = analysis.run(edited)
        elapsed = time.perf_counter() - start
        if cold_seconds is None or elapsed < cold_seconds:
            cold_seconds, cold_stats = elapsed, dict(analysis.last_stats)
        analysis = assemble(config)
        start = time.perf_counter()
        warm_result = analysis.run(edited, warm_start=seed)
        elapsed = time.perf_counter() - start
        if warm_seconds is None or elapsed < warm_seconds:
            warm_seconds, warm_stats = elapsed, dict(analysis.last_stats)
        assert warm_result.fp == cold_result.fp, "warm-start fp mismatch"
    service["warm-chain"] = {
        "chain_length": WARM_CHAIN_LENGTH,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "cold_evaluations": cold_stats.get("evaluations"),
        "warm_evaluations": warm_stats.get("evaluations"),
        "reused": warm_stats.get("reused"),
    }
    print(
        f"{'service-warm-chain':28s} cold   {cold_seconds:7.3f}s  "
        f"warm    {warm_seconds:7.3f}s  "
        f"{service['warm-chain']['speedup']:.2f}x "
        f"(evals {cold_stats.get('evaluations')} -> {warm_stats.get('evaluations')})",
        file=sys.stderr,
    )

    service["serve-latency"] = run_serve_latency_row()
    row = service["serve-latency"]
    print(
        f"{'service-serve-latency':28s} cli    {row['cold_cli_seconds']:7.3f}s  "
        f"hot     {row['hot_request_seconds']:7.3f}s  "
        f"{row['speedup']:.2f}x",
        file=sys.stderr,
    )
    return service


def run_suite() -> dict:
    record: dict = {
        "schema": "engine-suite/7",
        "python": sys.version.split()[0],
        "workloads": {},
        "speedups": {},
    }
    for label, (runner, combos) in _workloads().items():
        rows: dict = {}
        for engine, impl, transition in combos:
            # kleene runs report no store_impl distinction; the suffix
            # keys make every cell self-describing regardless
            stats: dict = {}
            seconds = _timed_best(runner, engine, impl, transition, stats)
            rows[_row_key(engine, impl, transition)] = {
                "seconds": round(seconds, 6),
                "evaluations": stats.get("evaluations"),
                "retriggers": stats.get("retriggers"),
                "dedup_hits": stats.get("dedup_hits"),
                "configurations": stats.get("configurations"),
            }
            print(
                f"{label:28s} {engine:>8s}/{impl:<10s} {transition:<7s} "
                f"{seconds:8.3f}s evals={stats.get('evaluations', '-')}",
                file=sys.stderr,
            )
        record["workloads"][label] = rows
        speedups: dict = {}
        fast = rows.get("depgraph/versioned")
        if fast and fast["seconds"] > 0:
            for reference in ("kleene/persistent", "depgraph/persistent"):
                if reference in rows:
                    name = f"depgraph-versioned-over-{reference.replace('/', '-')}"
                    speedups[name] = round(rows[reference]["seconds"] / fast["seconds"], 2)
        fused = rows.get("depgraph/versioned/fused")
        if fast and fused and fused["seconds"] > 0:
            speedups["fused-over-generic-depgraph-versioned"] = round(
                fast["seconds"] / fused["seconds"], 2
            )
        record["speedups"][label] = speedups
    record["schedule"] = run_schedule_suite()
    record["service"] = run_service_suite()
    trace_row = run_trace_overhead_row()
    record["observability"] = {"trace-overhead": trace_row}
    print(
        f"{'obs-trace-overhead':28s} plain  {trace_row['untraced_seconds']:7.3f}s  "
        f"noop {trace_row['noop_ratio']:5.2f}x  traced {trace_row['traced_ratio']:5.2f}x "
        f"({trace_row['trace_events']} events)",
        file=sys.stderr,
    )
    return record


def check(
    record: dict,
    min_speedup: float,
    min_fused_speedup: float,
    min_pool_speedup: float = 1.0,
    min_warm_speedup: float = 5.0,
    min_engaged_pool_speedup: float = 2.0,
    min_sharded_speedup: float = 1.5,
    min_serve_speedup: float = 20.0,
    min_eval_reduction: float = 1.5,
    min_trace_overhead_ratio: float = 1.10,
) -> list[str]:
    """The CI gates.

    * depgraph/versioned must beat kleene by ``min_speedup`` on every
      workload that ran both (the ``*-gc`` rows included, so a
      regression in the worklist GC path fails the build too);
    * the fused transition must beat the generic one by
      ``min_fused_speedup`` on the :data:`FUSED_GATED` workloads;
    * the adaptive batch pool must never lose to the serial sweep:
      ``min_pool_speedup`` (minus :data:`_POOL_JITTER_TOLERANCE`) at
      *any* core count -- below the inline threshold, or on too few
      cores, the adaptive runner degrades to the serial path, so the
      two runs are the same work and a real loss is a bug;
    * when the pool actually *engaged* (``pool_workers >= 2``) on a
      machine with at least :data:`POOL_WORKERS` cores, it must beat
      serial by ``min_engaged_pool_speedup``; skipped with a notice
      otherwise;
    * the sharded fixpoint must beat the sequential engine by
      ``min_sharded_speedup`` -- gated only on >= 4 cores with the GIL
      disabled (worker threads over pure-Python evaluations cannot
      overlap under a GIL); skipped with a notice otherwise.  The
      fixed-point equality was already asserted when the row was
      recorded, on every machine;
    * the one-edit warm start must beat the cold re-analysis by
      ``min_warm_speedup``;
    * a hot repeat request through the resident server must beat a cold
      ``repro analyze`` subprocess by ``min_serve_speedup`` -- no skip
      condition: the hot tier is a dictionary lookup and the cold cell
      pays interpreter start-up, so the margin is enormous everywhere;
    * the priority schedule must reduce evaluation counts by
      ``min_eval_reduction`` on every *gated* schedule cell (the
      blind-engine chain/loop workloads), and must never exceed
      :data:`_SCHEDULE_NEVER_WORSE` times FIFO's count on *any*
      schedule cell -- counts are hardware-independent, so neither
      bound ever needs a skip condition;
    * tracing must stay cheap: on the trace-overhead row an actively
      recording tracer may cost at most ``min_trace_overhead_ratio``
      times the plain run, and the no-op path (instrumentation with the
      null tracer) at most :data:`_NOOP_TRACE_BUDGET` times -- the
      observability layer's ≤3% promise, measured rather than assumed.
    """
    failures = []
    for label, speedups in record["speedups"].items():
        ratio = speedups.get("depgraph-versioned-over-kleene-persistent")
        if ratio is not None and ratio < min_speedup:
            failures.append(
                f"{label}: depgraph/versioned only {ratio:.2f}x over kleene "
                f"(need >= {min_speedup:.1f}x)"
            )
        fused_ratio = speedups.get("fused-over-generic-depgraph-versioned")
        if (
            label in FUSED_GATED
            and fused_ratio is not None
            and fused_ratio < min_fused_speedup
        ):
            failures.append(
                f"{label}: fused transition only {fused_ratio:.2f}x over generic "
                f"(need >= {min_fused_speedup:.1f}x)"
            )
    service = record.get("service", {})
    pool = service.get("batch-pool")
    if pool is not None:
        cores = pool.get("cpu_count") or 0
        if pool["speedup"] < min_pool_speedup - _POOL_JITTER_TOLERANCE:
            failures.append(
                f"service-batch-pool: {pool['speedup']:.2f}x over serial on "
                f"{cores} core(s) -- the adaptive pool must never lose "
                f"(need >= {min_pool_speedup:.1f}x - {_POOL_JITTER_TOLERANCE} jitter)"
            )
        engaged = pool.get("pool_workers", 0) >= 2
        if cores < pool["workers"] or not engaged:
            print(
                f"engaged-pool gate skipped: {cores} core(s), "
                f"{pool.get('pool_workers', 0)} pool worker(s) engaged "
                f"(need >= {pool['workers']} cores and an engaged pool)",
                file=sys.stderr,
            )
        elif pool["speedup"] < min_engaged_pool_speedup:
            failures.append(
                f"service-batch-pool: only {pool['speedup']:.2f}x over serial "
                f"with {pool['pool_workers']} engaged workers "
                f"(need >= {min_engaged_pool_speedup:.1f}x)"
            )
    sharded = service.get("parallel-fixpoint")
    if sharded is not None:
        cores = sharded.get("cpu_count") or 0
        if cores < 4 or sharded.get("gil_enabled", True):
            print(
                f"sharded gate skipped: {cores} core(s), "
                f"gil={'on' if sharded.get('gil_enabled', True) else 'off'} "
                "(need >= 4 cores and a GIL-free interpreter; equality was "
                "still asserted)",
                file=sys.stderr,
            )
        elif sharded["speedup"] < min_sharded_speedup:
            failures.append(
                f"service-parallel-fixpoint: only {sharded['speedup']:.2f}x over "
                f"sequential with {sharded['shards']} shards "
                f"(need >= {min_sharded_speedup:.1f}x)"
            )
    warm = service.get("warm-chain")
    if warm is not None and warm["speedup"] < min_warm_speedup:
        failures.append(
            f"service-warm-chain: warm start only {warm['speedup']:.2f}x over "
            f"cold (need >= {min_warm_speedup:.1f}x)"
        )
    serve = service.get("serve-latency")
    if serve is not None and serve["speedup"] < min_serve_speedup:
        failures.append(
            f"service-serve-latency: hot request only {serve['speedup']:.2f}x over "
            f"a cold CLI run (need >= {min_serve_speedup:.1f}x)"
        )
    for label, cell in record.get("schedule", {}).items():
        reduction = cell["eval_reduction"]
        if cell.get("gated") and reduction < min_eval_reduction:
            failures.append(
                f"schedule-{label}: priority only {reduction:.2f}x fewer "
                f"evaluations than fifo (need >= {min_eval_reduction:.1f}x)"
            )
        if reduction * _SCHEDULE_NEVER_WORSE < 1.0:
            failures.append(
                f"schedule-{label}: priority evaluated MORE than fifo "
                f"({cell['priority']['evaluations']} vs "
                f"{cell['fifo']['evaluations']}; allowed at most "
                f"{_SCHEDULE_NEVER_WORSE:.2f}x fifo's count)"
            )
    trace = record.get("observability", {}).get("trace-overhead")
    if trace is not None:
        if trace["traced_ratio"] > min_trace_overhead_ratio:
            failures.append(
                f"obs-trace-overhead: live tracing cost {trace['traced_ratio']:.2f}x "
                f"the plain run on {trace['workload']} "
                f"(allowed at most {min_trace_overhead_ratio:.2f}x)"
            )
        if trace["noop_ratio"] > _NOOP_TRACE_BUDGET:
            failures.append(
                f"obs-trace-overhead: the no-op tracing path cost "
                f"{trace['noop_ratio']:.2f}x the plain run on {trace['workload']} "
                f"(allowed at most {_NOOP_TRACE_BUDGET:.2f}x)"
            )
    return failures


def next_output_name(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` -- no code edit per PR required."""
    taken = [
        int(match.group(1))
        for name in os.listdir(directory)
        if (match := re.fullmatch(r"BENCH_(\d+)\.json", name))
    ]
    return f"BENCH_{max(taken, default=0) + 1}.json"


def compare_to_baseline(record: dict, baseline_path: str) -> None:
    """Print per-workload speedup deltas against an earlier BENCH record.

    Informational, never a gate: absolute times are machine-bound, so the
    series is read by a human (or plotted), while the ``--check`` gates
    stay ratio-based within one run.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    print(f"-- vs {baseline_path} --", file=sys.stderr)
    for label, rows in record["workloads"].items():
        base_rows = baseline.get("workloads", {}).get(label)
        if not base_rows:
            continue
        for key, cell in rows.items():
            base_cell = base_rows.get(key)
            if not base_cell or not base_cell.get("seconds"):
                continue
            ratio = cell["seconds"] / base_cell["seconds"]
            print(
                f"  {label:28s} {key:32s} {base_cell['seconds']:8.3f}s -> "
                f"{cell['seconds']:8.3f}s ({ratio:5.2f}x)",
                file=sys.stderr,
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the record (default: the next free BENCH_<n>.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="an earlier BENCH_<n>.json to print per-cell deltas against",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if depgraph/versioned regresses below --min-speedup "
        "over kleene, fused below --min-fused-speedup over generic, the batch "
        "pool below --min-pool-speedup over serial at any core count (or below "
        "--min-engaged-pool-speedup when it engaged on enough cores), the "
        "sharded fixpoint below --min-sharded-speedup on >= 4 GIL-free cores, "
        "the warm start below --min-warm-speedup over cold, the resident "
        "server's hot tier below --min-serve-speedup over a cold CLI run, or "
        "the priority schedule below --min-eval-reduction on the gated "
        "chain/loop cells (it must also never beat fifo's evaluation count "
        "by less than 1/1.05x anywhere), or tracing overhead above "
        "--min-trace-overhead-ratio (live) / 1.03x (no-op path)",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-fused-speedup", type=float, default=2.0)
    parser.add_argument("--min-pool-speedup", type=float, default=1.0)
    parser.add_argument("--min-engaged-pool-speedup", type=float, default=2.0)
    parser.add_argument("--min-sharded-speedup", type=float, default=1.5)
    parser.add_argument("--min-warm-speedup", type=float, default=5.0)
    parser.add_argument("--min-serve-speedup", type=float, default=20.0)
    parser.add_argument("--min-eval-reduction", type=float, default=1.5)
    parser.add_argument(
        "--min-trace-overhead-ratio",
        type=float,
        default=1.10,
        help="max allowed traced/untraced wall-clock ratio on the "
        "trace-overhead cell (the no-op bound is fixed at 1.03)",
    )
    args = parser.parse_args(argv)

    output = args.output or next_output_name()
    record = run_suite()
    with open(output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}", file=sys.stderr)

    if args.baseline:
        compare_to_baseline(record, args.baseline)

    if args.check:
        failures = check(
            record,
            args.min_speedup,
            args.min_fused_speedup,
            args.min_pool_speedup,
            args.min_warm_speedup,
            min_engaged_pool_speedup=args.min_engaged_pool_speedup,
            min_sharded_speedup=args.min_sharded_speedup,
            min_serve_speedup=args.min_serve_speedup,
            min_eval_reduction=args.min_eval_reduction,
            min_trace_overhead_ratio=args.min_trace_overhead_ratio,
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
