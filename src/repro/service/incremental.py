"""Warm-start incremental re-analysis: pay for the edit, not the program.

A cold analysis of an edited program repeats almost all of its
predecessor's work: the edit is a handful of sub-terms, interning makes
the unchanged rest *pointer-identical*, and the depgraph engine already
knows -- per configuration -- which store cells each evaluation read and
which successors it produced.  :func:`reanalyse` turns that into an
incremental pipeline over the fixpoint cache:

1. **Digest hit** -- the edited source parses to a term whose structural
   digest is already cached (an identity edit, a revert, a duplicate
   submission): the fixed point is loaded and rehydrated, zero
   evaluations.
2. **Warm start** -- the digest is new but the cache holds a
   records-bearing entry for the same configuration (the predecessor's
   run): the engine is seeded with that entry's store and
   :class:`~repro.core.fixpoint.EvalRecord` map.  Re-discovered
   configurations whose recorded reads are still clean *replay* their
   recorded successors instead of stepping; only configurations touched
   by the edit -- new ones, and ones whose cells grew -- are evaluated.
   Cost: O(reachable configurations) dictionary walks plus O(edit)
   evaluations, instead of O(program) evaluations with retriggers.
3. **Cold** -- no donor (or a non-warmable configuration): run normally.
   Either way the result (with fresh records, where supported) is
   written back, so the *next* edit warm-starts from this one: a chain
   of edits stays warm end to end.

Soundness and exactness contract (also on
:class:`~repro.core.fixpoint.WarmStart`): the warm result equals the
cold fixed point whenever the donor's store lies at or below the edited
program's fixed-point store -- true for identity edits and for edits
that extend a program around its interned sub-terms (the ``id_chain``
append workload pinned in ``tests/test_service.py``).  An edit that
*removes* behavior can leave the donor's stale cells in the seed; the
result is then a sound over-approximation of the cold analysis, and a
caller that needs exactness re-runs cold (``donor=None``).  Use
:func:`edit_distance` to gate: when the edit replaces most of the
program, warm starting also stops being *profitable* (PERFORMANCE.md,
"Caching and warm starts").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.config import AnalysisConfig, assemble
from repro.core.fixpoint import FixpointCapture
from repro.service.cache import CachedFixpoint, FixpointCache, cache_key
from repro.util.intern import decompose


def warmable(config: AnalysisConfig) -> bool:
    """Whether a configuration's runs can capture and replay evaluations.

    Warm starts live on the dependency-tracked engine (replayed
    configurations are re-triggered through the dependency map) and do
    not compose with abstract GC or counting, whose per-evaluation sweep
    and post-convergence saturation an evaluation record cannot replay
    (see :func:`repro.core.fixpoint.global_store_explore`).  The sharded
    worklist is excluded too: its overlay write sets omit no-growth
    binds (the versioned ``bind`` early-returns before the private map
    sees them), so captured records would under-approximate the live
    writes that warm restriction depends on.  Every other preset still
    gets path 1 (digest hits) of :func:`reanalyse`.
    """
    return (
        config.engine == "depgraph"
        and not config.gc
        and not config.counting
        and config.parallelism == "none"
    )


def iter_subvalues(value: Any):
    """Every structural sub-value of a term, itself included (iterative).

    Language-agnostic: walks whatever the shared
    :func:`repro.util.intern.decompose` recognizes (dataclass fields,
    tuples, sets, mappings), so subterm checks can never diverge from
    content digesting or rehydration.  Shared (interned) sub-terms are
    visited once.
    """
    seen: set[int] = set()
    stack = [value]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        _kind, children = decompose(node)
        stack.extend(children)


def contains_subterm(program: Any, candidate: Any) -> bool:
    """Whether ``candidate`` occurs verbatim (pointer-equal) inside ``program``.

    The donor-eligibility test behind automatic warm starts: when the
    old program is an *exact interned subterm* of the new one, the edit
    is an extension -- the old program is closed, so nothing the new
    wrapper binds can flow into its cells, its internal contexts (hence
    addresses and values) re-arise unchanged after at most ``k`` steps,
    and the seeded store therefore lies below the new fixed point: the
    warm result is exactly the cold one.  A sibling edit (shared pieces,
    different surroundings) offers no such guarantee -- shared addresses
    can carry donor-only values -- so it must re-run cold.
    """
    return any(node is candidate for node in iter_subvalues(program))


def edit_distance(old_program: Any, new_program: Any) -> dict:
    """How big an edit is, structurally: the changed-sub-term counts.

    Interning makes this cheap and exact: a sub-term survives the edit
    iff the same canonical object occurs in both programs, so the delta
    is a set difference over object identities.  Returns ``new_terms``
    (sub-terms of the edited program absent from the old one -- the work
    a warm start must actually evaluate scales with these), ``shared``
    and ``total``; ``ratio`` is ``new_terms / total``.
    """
    old_ids = {id(node) for node in iter_subvalues(old_program)}
    new_terms = 0
    total = 0
    for node in iter_subvalues(new_program):
        total += 1
        if id(node) not in old_ids:
            new_terms += 1
    return {
        "new_terms": new_terms,
        "shared": total - new_terms,
        "total": total,
        "ratio": round(new_terms / total, 4) if total else 0.0,
    }


@dataclass
class Reanalysis:
    """The outcome of one :func:`reanalyse` call, with provenance."""

    result: Any
    mode: str  # "cache-hit" | "warm" | "cold"
    seconds: float
    key: str
    stats: dict

    @property
    def fp(self) -> Any:
        """The fixed point (what the equivalence tests compare)."""
        return self.result.fp


def wrap_fixpoint(analysis: Any, fp: Any, program: Any, language: str) -> Any:
    """Wrap a bare fixed point in the language's result type.

    The one home of the FJ-vs-others ``wrap_result`` signature split
    (FJ results carry the program for its class table); the batch runner
    routes through here too.
    """
    if language == "fj":
        return analysis.wrap_result(fp, program)
    return analysis.wrap_result(fp)


def reanalyse(
    config: AnalysisConfig,
    program: Any,
    cache: FixpointCache,
    donor: CachedFixpoint | None = None,
    allow_warm: bool = True,
) -> Reanalysis:
    """Analyse ``program`` under ``config``, as incrementally as the cache allows.

    The three-path pipeline from the module docstring: digest hit, warm
    start, cold run.  Whatever path runs, the fixed point (plus fresh
    evaluation records for warmable configurations) is stored back under
    the program's digest.

    Donor selection is exactness-gated: an auto-selected donor (the
    cache's most recent records-bearing entry for this configuration) is
    used only when its program is an exact interned subterm of
    ``program`` (:func:`contains_subterm`) -- the extension-edit shape
    for which the warm result provably equals the cold one.  Sibling
    edits and unrelated programs run cold rather than risk a silently
    over-approximate result.  Passing ``donor=`` explicitly *bypasses*
    the gate: the result is then sound but possibly over-approximate for
    behavior-removing edits (module docstring contract) -- the caller
    takes responsibility, and the result is **not** written back to the
    cache (a later gate-respecting query must not receive a possibly
    inexact fixed point as a digest hit).  ``allow_warm=False`` forces
    path 1-or-3.
    """
    config = config.validated()
    started = time.perf_counter()
    cached = cache.get(program, config, with_records=False)
    if cached is not None:
        analysis = assemble(config, program=program)
        return Reanalysis(
            result=wrap_fixpoint(analysis, cached.fp, program, config.language),
            mode="cache-hit",
            seconds=time.perf_counter() - started,
            key=cached.key,
            stats={"evaluations": 0},
        )

    analysis = assemble(config, program=program)
    capture = FixpointCapture() if warmable(config) else None
    warm_start = None
    gate_bypassed = donor is not None
    if allow_warm and warmable(config):
        if donor is None:
            candidate = cache.latest_for(config)
            if (
                candidate is not None
                and candidate.warmable
                and candidate.program is not None
                and contains_subterm(program, candidate.program)
            ):
                donor = candidate
        if donor is not None and donor.warmable:
            warm_start = donor.warm_start()

    result = analysis.run(
        program,
        worklist=not config.shared,
        warm_start=warm_start,
        capture=capture,
    )
    if warm_start is not None and gate_bypassed:
        # a gate-bypassing donor may have produced a (sound) over-
        # approximation; caching it under the program's digest would let
        # later gate-respecting callers receive it as an exact cache hit
        key = cache_key(program, config)
    else:
        key = cache.put(
            program,
            config,
            result.fp,
            records=dict(capture.records) if capture is not None else None,
            seconds=time.perf_counter() - started,
        )
    return Reanalysis(
        result=result,
        mode="warm" if warm_start is not None else "cold",
        seconds=time.perf_counter() - started,
        key=key,
        stats=dict(analysis.last_stats),
    )
