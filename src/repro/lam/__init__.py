"""Direct-style lambda calculus: syntax, parser and the CPS transform.

The paper's implementation replays the monadic development "for a
direct-style lambda-calculus" (section 1); this package supplies that
language's front end.  The CESK machine that animates it lives in
:mod:`repro.cesk`; :func:`repro.lam.cps_transform.cps_convert` connects
the two worlds, letting the cross-language experiments compare a CESK
analysis of ``e`` with a CPS analysis of ``cps(e)``.
"""

from repro.lam.syntax import App, Expr, Lam, Let, Var, free_vars, pp
from repro.lam.parser import parse_expr
from repro.lam.cps_transform import cps_convert

__all__ = [
    "App",
    "Expr",
    "Lam",
    "Let",
    "Var",
    "cps_convert",
    "free_vars",
    "parse_expr",
    "pp",
]
