"""E6 -- abstract garbage collection (6.4).

Claims regenerated: weaving ``gc`` into ``applyStep`` (one line, store
effect only) prunes unreachable bindings, which (a) shrinks stores, (b)
can shrink the reachable configuration space, and (c) never loses
coverage of the concrete run.  The paper promises "an often dramatic
increase in precision as well as a corresponding drop in analysis time";
the chain family below shows both directions measurably.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, timed
from repro.cps.analysis import analyse_kcfa, analyse_with_gc
from repro.cesk.analysis import analyse_cesk_gc, analyse_cesk_kcfa
from repro.cesk.concrete import evaluate
from repro.corpus.cps_programs import PROGRAMS, id_chain
from repro.corpus.lam_programs import eta_chain

TERMINATING = ["identity", "id-id", "mj09", "self-apply"]


def test_e6_gc_shrinks_stores(benchmark):
    def run():
        out = {}
        for name in TERMINATING:
            plain = analyse_kcfa(PROGRAMS[name], 1)
            gc = analyse_with_gc(PROGRAMS[name], 1)
            out[name] = (plain.store_size(), gc.store_size())
        return out

    results = run_once(benchmark, run)
    rows = [(name, plain, gc) for name, (plain, gc) in results.items()]
    print()
    print(fmt_table(["program", "store (plain)", "store (gc)"], rows))
    assert all(gc <= plain for _name, plain, gc in rows)
    assert any(gc < plain for _name, plain, gc in rows)


def test_e6_gc_time_and_space_on_chains(benchmark):
    def run():
        out = {}
        for n in (4, 8):
            program = id_chain(n)
            plain, t_plain = timed(lambda p=program: analyse_kcfa(p, 1))
            gc, t_gc = timed(lambda p=program: analyse_with_gc(p, 1))
            out[n] = (plain.num_elements(), t_plain, gc.num_elements(), t_gc)
        return out

    table = run_once(benchmark, run)
    rows = [
        (n, ps, f"{tp:.3f}s", gs, f"{tg:.3f}s")
        for n, (ps, tp, gs, tg) in sorted(table.items())
    ]
    print()
    print(fmt_table(["n", "|fp| plain", "time plain", "|fp| gc", "time gc"], rows))
    for n, (plain_elems, _tp, gc_elems, _tg) in table.items():
        assert gc_elems <= plain_elems


def test_e6_gc_never_loses_the_concrete_answer(benchmark):
    def run():
        return {name: analyse_with_gc(PROGRAMS[name], 1) for name in TERMINATING}

    results = run_once(benchmark, run)
    for name, result in results.items():
        assert result.reaching_exit(), name


def test_e6_gc_on_cesk(benchmark):
    """The same collector machinery drives the direct-style machine."""
    program = eta_chain(3)

    def run():
        return analyse_cesk_kcfa(program, 1), analyse_cesk_gc(program, 1)

    plain, gc = run_once(benchmark, run)
    assert gc.store_size() <= plain.store_size()
    assert evaluate(program).lam in gc.final_values()
