"""Shared harness for the resident-server tests (and their goldens).

Three things live here so ``tests/test_serve.py`` (soak/equality/faults)
and ``tests/test_serve_protocol.py`` (golden wire fixtures) cannot drift
apart:

* the **preset x language matrix** the server is swept over (the same
  ``MATRIX_PROGRAMS`` cells ``tests/test_service.py`` pins the batch
  layer with) and the request params for one cell;
* the **cold reference row**: what a server ``analyse`` response for a
  cell must contain, computed in-process with a bare
  ``assemble(config).run(program)`` -- no cache, no server, no dispatch
  core -- plus the volatile-field discipline (:data:`VOLATILE_ROW_FIELDS`
  are provenance: which tier answered and what it cost; everything else
  must be byte-identical across tiers);
* the **golden masking** rules and a raw-line connection for driving the
  protocol below the client abstraction (malformed JSON, wrong shapes).
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.analysis.report import render_json, result_summary
from repro.config import LANGUAGES, PRESETS, assemble, preset_config
from repro.corpus import corpus_program
from repro.service.cache import cache_key

#: One small corpus program per language (the test_service matrix).
MATRIX_PROGRAMS = {"cps": "mj09", "lam": "eta", "fj": "animals"}

CELLS = [
    (preset_name, lang) for preset_name in sorted(PRESETS) for lang in LANGUAGES
]

#: Row fields that legitimately differ by serving tier: provenance
#: (which tier answered, whether the cache hit, what it cost).  Every
#: other field of an ``analyse`` response is analysis content and must
#: be byte-identical to the cold reference.
VOLATILE_ROW_FIELDS = frozenset(
    {"seconds", "cache", "tier", "evaluations", "reused", "dedup_hits", "max_rank"}
)

#: Keys masked (at any nesting depth) in golden protocol fixtures:
#: wall-clock, process identity, and interning counters that depend on
#: what else the test process has parsed.  The ``prometheus`` text blob
#: is masked wholesale -- it embeds latency quantiles and uptime; its
#: *reconciliation* with ``stats`` is asserted semantically in
#: ``tests/test_serve.py``, not byte-pinned here.
GOLDEN_MASK = frozenset(
    {
        "seconds",
        "total_seconds",
        "uptime_seconds",
        "latency",
        "pid",
        "inflight",
        "intern",
        "prometheus",
    }
)


def cell_params(preset_name: str, lang: str, include_flows: bool = True) -> dict:
    """The ``analyse``/``reanalyse`` request params for one matrix cell."""
    return {
        "language": lang,
        "corpus": MATRIX_PROGRAMS[lang],
        "preset": preset_name,
        "label": f"{lang}/{preset_name}",
        "include_flows": include_flows,
    }


def cold_row(preset_name: str, lang: str, include_flows: bool = True) -> dict:
    """The content a server response for this cell must carry, computed
    cold in this process with none of the serving machinery."""
    config = preset_config(preset_name, lang).validated()
    program = corpus_program(lang, MATRIX_PROGRAMS[lang])
    analysis = assemble(config, program=program)
    result = analysis.run(program, worklist=not config.shared)
    summary = result_summary(result, label=f"{lang}/{preset_name}")
    if not include_flows:
        summary.pop("flows")
    summary.update(
        key=cache_key(program, config),
        language=config.language,
        config=config.cache_key(),
    )
    return content_of(summary)


def content_of(row: dict) -> dict:
    """A row with its per-tier provenance fields dropped."""
    return {k: v for k, v in row.items() if k not in VOLATILE_ROW_FIELDS}


def content_bytes(row: dict) -> str:
    """The content of a row as deterministic JSON (byte-comparable)."""
    return render_json(content_of(row))


def masked(value: Any) -> Any:
    """A response with every :data:`GOLDEN_MASK` key's value replaced."""
    if isinstance(value, dict):
        return {
            key: "<masked>" if key in GOLDEN_MASK else masked(child)
            for key, child in value.items()
        }
    if isinstance(value, list):
        return [masked(child) for child in value]
    return value


class RawConnection:
    """A line-level connection for protocol tests: send bytes, read one
    response line -- no request validation, no error-to-exception
    translation (both are exactly what the goldens pin)."""

    def __init__(
        self, port: int, host: str = "127.0.0.1", timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def exchange(self, line: str) -> dict:
        """Send one raw line, return the parsed response object."""
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        return json.loads(response)

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "RawConnection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


assert set(MATRIX_PROGRAMS) == set(LANGUAGES)
