"""Analysis-result reporting, graphs, and the benchmark measurement layer."""

from repro.analysis.graph import TransitionGraph, to_dot, transition_graph
from repro.analysis.report import (
    AnalysisMetrics,
    fmt_table,
    measure_cps,
    metrics_of,
    precision_summary,
)

__all__ = [
    "AnalysisMetrics",
    "TransitionGraph",
    "fmt_table",
    "measure_cps",
    "metrics_of",
    "precision_summary",
    "to_dot",
    "transition_graph",
]
