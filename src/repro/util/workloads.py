"""Shared workload/preset resolution for the measurement harnesses.

``tools/profile_analysis.py`` and ``benchmarks/record.py`` grew the same
plumbing independently: look a workload up by ``(language, name)`` --
a corpus program, or the synthetic CPS ``id-chain-N`` family -- and
turn a preset plus fine-grained override flags into a validated
:class:`~repro.config.AnalysisConfig`.  This module is the one home for
both, so the profiler and the benchmark recorder can never resolve the
same name to different programs or the same flags to different configs.
"""

from __future__ import annotations

from typing import Any


def corpus_for(lang: str) -> dict:
    """The corpus programs of one language, by name."""
    if lang == "cps":
        from repro.corpus.cps_programs import PROGRAMS
    elif lang == "lam":
        from repro.corpus.lam_programs import PROGRAMS
    elif lang == "fj":
        from repro.corpus.fj_programs import PROGRAMS
    else:
        raise ValueError(f"no workload corpus for language {lang!r}")
    return dict(PROGRAMS)


def resolve_workload(lang: str, name: str) -> Any:
    """A workload program by name.

    Corpus names resolve through :func:`corpus_for`; for CPS the
    synthetic ``id-chain-N`` family (the scaling workload behind the
    engine benchmarks) is also understood.  Raises ``ValueError`` with
    the known names -- front-ends turn that into their own exit.
    """
    if lang == "cps" and name.startswith("id-chain-"):
        from repro.corpus.cps_programs import id_chain

        return id_chain(int(name.rsplit("-", 1)[1]))
    programs = corpus_for(lang)
    try:
        return programs[name]
    except KeyError:
        known = ", ".join(sorted(programs))
        raise ValueError(
            f"unknown {lang} workload {name!r}; choose one of: {known}"
            + (" (or id-chain-N)" if lang == "cps" else "")
        ) from None


def build_workload_config(
    lang: str,
    preset: str | None = None,
    k: int | None = None,
    engine: str | None = None,
    store_impl: str | None = None,
    transition: str | None = None,
    schedule: str | None = None,
    gc: bool = False,
    counting: bool = False,
):
    """A validated analysis config from a preset plus override flags.

    With ``preset`` the named registry entry is the base and only the
    explicitly passed flags override its fields (the CLI's semantics).
    Without one, the default is the fast global-store configuration
    (``depgraph`` + ``versioned`` -- the hot path worth measuring),
    falling back to the persistent store for the kleene engine, which
    cannot pair with the versioned one.
    """
    from repro.config import AnalysisConfig, build_config
    from repro.core.store import CountingStore

    if preset:
        config = build_config(
            lang,
            preset=preset,
            store_like=CountingStore() if counting else None,
            gc=True if gc else None,
            engine=engine,
            store_impl=store_impl,
            transition=transition,
            schedule=schedule,
        )
        if k is not None:
            config = config.replace(k=k).validated()
        return config
    resolved_engine = engine or "depgraph"
    default_impl = "persistent" if resolved_engine == "kleene" else "versioned"
    return AnalysisConfig(
        language=lang,
        k=1 if k is None else k,
        widening="store",
        engine=resolved_engine,
        store_impl=store_impl or default_impl,
        gc=gc,
        counting=counting,
        transition=transition or "generic",
        schedule=schedule or "fifo",
    ).validated()
