"""E5 -- abstract counting plugs in without touching the semantics (6.3, 8.3).

Claims regenerated: replacing the store with a ``CountingStore`` (a) is
invisible to the flow results, (b) certifies singleton cardinalities on
straight-line bindings (the must-alias/environment-analysis payload),
and (c) reports MANY exactly where rebinding happens (loops).
"""

from conftest import run_once

from repro.analysis.report import fmt_table
from repro.core.lattice import AbsNat
from repro.cps.analysis import analyse_kcfa, analyse_with_count
from repro.corpus.cps_programs import PROGRAMS, id_chain

TERMINATING = ["identity", "id-id", "mj09", "self-apply"]


def test_e5_counting_preserves_flows(benchmark):
    def run():
        return {
            name: (
                analyse_kcfa(PROGRAMS[name], 1).flows_to(),
                analyse_with_count(PROGRAMS[name], 1, shared=False).flows_to(),
            )
            for name in TERMINATING
        }

    results = run_once(benchmark, run)
    for name, (plain, counted) in results.items():
        assert plain == counted, name


def test_e5_singleton_certification(benchmark):
    def run():
        return {
            name: analyse_with_count(PROGRAMS[name], 1, shared=False)
            for name in TERMINATING
        }

    results = run_once(benchmark, run)
    rows = []
    for name, result in results.items():
        store = result.global_store()
        counting = result.store_like
        addrs = list(counting.addresses(store))
        singles = result.singleton_counts()
        rows.append((name, len(addrs), len(singles), f"{len(singles)/len(addrs):.0%}"))
    print()
    print(fmt_table(["program", "addresses", "count=1", "fraction"], rows))
    # straight-line corpus programs allocate every address exactly once
    for name, total, singles, _pct in rows:
        assert singles == total, name


def test_e5_loops_counted_many(benchmark):
    def run():
        return analyse_with_count(PROGRAMS["omega"], 0, shared=False)

    result = run_once(benchmark, run)
    store = result.global_store()
    counting = result.store_like
    counts = {a: counting.count(store, a) for a in counting.addresses(store)}
    assert AbsNat.MANY in counts.values()  # omega rebinds forever


def test_e5_counting_overhead(benchmark):
    """The counting store's bookkeeping cost on a larger workload."""
    program = id_chain(6)
    result = run_once(benchmark, lambda: analyse_with_count(program, 1, shared=False))
    assert result.singleton_counts()
