"""Benchmark program corpus for all three languages.

* :mod:`repro.corpus.cps_programs` -- handwritten CPS terms and scalable
  generator families (polyvariance chains, store-cloning blowups);
* :mod:`repro.corpus.lam_programs` -- direct-style lambda-calculus
  programs (Church arithmetic, the k-CFA-paradox example, ``blur``,
  ``eta``, ``sat``), shared by the CESK machine and -- via the CPS
  transform -- by the CPS analyses;
* :mod:`repro.corpus.fj_programs`  -- Featherweight Java programs.

:func:`corpus_program` is the language-keyed lookup the service layer's
batch jobs use to name corpus programs as plain (spawn-safe) strings.
"""

from typing import Any


def corpus_programs(language: str) -> dict:
    """The ``name -> program`` registry of one language's corpus.

    The single home of the language dispatch (the CLI's ``--corpus``
    sweep and :func:`corpus_program` both route through it).  Imports
    lazily so ``repro.corpus`` stays cheap to import for callers that
    only ever touch one language.
    """
    if language == "cps":
        from repro.corpus.cps_programs import PROGRAMS
    elif language == "lam":
        from repro.corpus.lam_programs import PROGRAMS
    elif language == "fj":
        from repro.corpus.fj_programs import PROGRAMS
    else:
        raise ValueError(f"unknown corpus language {language!r}; choose cps, lam or fj")
    return PROGRAMS


def corpus_program(language: str, name: str) -> Any:
    """Fetch a corpus program by ``(language, name)``."""
    programs = corpus_programs(language)
    try:
        return programs[name]
    except KeyError:
        known = ", ".join(sorted(programs))
        raise ValueError(
            f"unknown {language} corpus program {name!r}; choose one of: {known}"
        ) from None
