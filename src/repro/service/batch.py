"""``run_batch``: shard a grid of analyses across processes, behind the cache.

The batch runner is deliberately dumb about analysis internals -- a job
is ``(program, AnalysisConfig)`` plus a label -- and deliberately careful
about process boundaries:

* **Spawn-safe by construction.**  Jobs travel to workers as *source
  text* (or a corpus program name) plus a config of plain scalars, never
  as live term graphs; each worker parses in its own process, which
  rebuilds its intern pool exactly the way a fresh CLI invocation would.
  The default start method is ``spawn`` -- the strictest one (nothing
  inherited), and the only one available everywhere -- so anything that
  works here works under ``fork`` too.
* **Rehydrated on receipt.**  Workers return frozen fixed points
  (``frozenset``\\ s and PMaps) through pickle; the parent canonicalizes
  them with :func:`repro.util.intern.rehydrate` before they meet any
  locally parsed term (the fork/pickle hazard documented in
  :mod:`repro.util.intern`).
* **Cache first.**  With a :class:`~repro.service.cache.FixpointCache`
  attached, every job's content address is consulted before dispatch;
  only misses reach the pool, and their results (with warm-start
  evaluation records, where the configuration supports them) are written
  back by the parent -- workers never touch the cache directory, so no
  cross-process index locking exists to get wrong.

The result is a :class:`BatchReport` whose :meth:`BatchReport.render`
is deterministic JSON (:func:`repro.analysis.report.render_json`):
the machine-readable artifact the CLI's ``repro batch`` writes and the
CI cache-smoke job asserts over.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.analysis.report import render_json, result_summary
from repro.config import AnalysisConfig, assemble
from repro.core.fixpoint import FixpointCapture
from repro.service.cache import FixpointCache, cache_key, ensure_deep_pickle
from repro.service.incremental import warmable, wrap_fixpoint
from repro.util.intern import rehydrate


@dataclass(frozen=True)
class BatchJob:
    """One cell of a batch: a program (by source or corpus name) x a config.

    Everything in here is plain, picklable scalar data -- the property
    that makes the job spawn-safe.  ``config`` must carry its language;
    use :func:`jobs_for` to build grids from preset names.
    """

    config: AnalysisConfig
    source: str | None = None
    corpus: str | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.source is None) == (self.corpus is None):
            raise ValueError("a BatchJob names exactly one of source= or corpus=")
        if self.config.language is None:
            raise ValueError("a BatchJob's config must carry its language")

    def describe(self) -> str:
        """A short human-readable cell name for tables and reports."""
        program = self.corpus if self.corpus else "<source>"
        return self.label or f"{self.config.language}/{program}/{self.config.describe()}"


def resolve_program(job: BatchJob) -> Any:
    """Parse (or look up) the job's program in *this* process.

    Parsing interns every node, so resolving the same job in parent and
    worker yields structurally identical, locally-canonical terms --
    the content address is therefore process-independent.
    """
    language = job.config.language
    if job.corpus is not None:
        from repro.corpus import corpus_program

        return corpus_program(language, job.corpus)
    if language == "cps":
        from repro.cps.parser import parse_program

        return parse_program(job.source)
    if language == "lam":
        from repro.lam.parser import parse_expr

        return parse_expr(job.source)
    from repro.fj.parser import parse_program as parse_fj

    return parse_fj(job.source)


def _run_job(job: BatchJob) -> dict:
    """Execute one job cold (worker side; also the inline path).

    Returns only picklable data: the fixed point, optional warm-start
    records, timing and engine stats.
    """
    # the pool serializes this function's return value outside anything
    # we can wrap, so give the *worker process* its pickle headroom here
    ensure_deep_pickle()
    program = resolve_program(job)
    config = job.config
    analysis = assemble(config, program=program)
    capture = FixpointCapture() if warmable(config) else None
    start = time.perf_counter()
    result = analysis.run(program, worklist=not config.shared, capture=capture)
    seconds = time.perf_counter() - start
    return {
        "fp": result.fp,
        "records": dict(capture.records) if capture is not None else None,
        "seconds": seconds,
        "stats": dict(analysis.last_stats),
        "pid": os.getpid(),
    }


@dataclass
class JobOutcome:
    """One job's result: where it came from and what it cost."""

    job: BatchJob
    result: Any
    key: str
    cached: bool
    seconds: float
    stats: dict = field(default_factory=dict)
    worker_pid: int | None = None

    @property
    def fp(self) -> Any:
        """The fixed point itself (shared by every acceptance check)."""
        return self.result.fp


@dataclass
class BatchReport:
    """The machine-readable outcome of one :func:`run_batch` call."""

    outcomes: list[JobOutcome]
    workers: int
    total_seconds: float
    cache_stats: dict | None = None

    def to_document(self, include_flows: bool = False) -> dict:
        """The report as deterministic-JSON-ready data."""
        rows = []
        for outcome in self.outcomes:
            summary = result_summary(
                outcome.result, label=outcome.job.describe(), seconds=outcome.seconds
            )
            if not include_flows:
                summary.pop("flows")
            summary.update(
                key=outcome.key,
                language=outcome.job.config.language,
                config=outcome.job.config.cache_key(),
                cache="hit" if outcome.cached else "miss",
                evaluations=outcome.stats.get("evaluations"),
                reused=outcome.stats.get("reused"),
            )
            rows.append(summary)
        return {
            "schema": "batch-report/1",
            "jobs": rows,
            "workers": self.workers,
            "total_seconds": round(self.total_seconds, 6),
            "cache": self.cache_stats,
        }

    def render(self, include_flows: bool = False) -> str:
        """Deterministic JSON (sorted keys, stable addresses, trailing \\n)."""
        return render_json(self.to_document(include_flows=include_flows))

    @property
    def hit_count(self) -> int:
        """How many jobs were answered from the cache."""
        return sum(1 for outcome in self.outcomes if outcome.cached)


def jobs_for(
    programs: Iterable[tuple[str, str, str]], presets: Iterable[str]
) -> list[BatchJob]:
    """Build a job grid: ``(language, name, source)`` x preset names."""
    from repro.config import preset_config

    grid = []
    for language, name, source in programs:
        for preset in presets:
            grid.append(
                BatchJob(
                    config=preset_config(preset, language),
                    source=source,
                    label=f"{language}/{name}/{preset}",
                )
            )
    return grid


def run_batch(
    jobs: Sequence[BatchJob],
    workers: int = 1,
    cache: FixpointCache | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    start_method: str = "spawn",
) -> BatchReport:
    """Run a batch of analysis jobs, cache-first, pool-sharded.

    ``workers > 1`` fans cache misses across a ``multiprocessing`` pool
    (``start_method`` defaults to the spawn-safe strictest choice);
    ``workers <= 1`` runs misses inline, which skips pickling entirely
    (one process, one intern pool -- nothing to rehydrate).  ``cache``
    or ``cache_dir`` attaches a fixpoint cache; ``use_cache=False``
    keeps a configured cache cold (the CLI's ``--no-cache``).

    Every job's fixed point -- cache hit, pooled, or inline -- is
    bit-identical to a cold single-process run of the same cell, which
    ``tests/test_service.py`` pins across the whole preset matrix.
    """
    if cache is None and cache_dir is not None and use_cache:
        # --no-cache must neither create nor read the directory
        cache = FixpointCache(root=cache_dir)
    ensure_deep_pickle()  # pool results unpickle on a parent-side thread
    started = time.perf_counter()

    # normalize every config up front: content addresses must be computed
    # on the *validated* config (validation e.g. implies the store
    # widening for engine configs), or batch-written entries would never
    # match the keys reanalyse/latest_for derive
    jobs = [
        job
        if (validated := job.config.validated()) == job.config
        else dataclasses.replace(job, config=validated)
        for job in jobs
    ]

    prepared = []  # (job, program, analysis, key), aligned with jobs
    outcomes: list[JobOutcome | None] = [None] * len(jobs)
    misses: list[int] = []
    for index, job in enumerate(jobs):
        program = resolve_program(job)
        key = cache_key(program, job.config)
        analysis = assemble(job.config, program=program)
        prepared.append((job, program, analysis, key))
        if cache is not None and use_cache:
            load_start = time.perf_counter()
            # the report only needs the fixed point; leave the (larger)
            # warm-start records sidecar on disk
            entry = cache.get_key(key, with_records=False)
            if entry is not None:
                outcomes[index] = JobOutcome(
                    job=job,
                    result=wrap_fixpoint(analysis, entry.fp, program, job.config.language),
                    key=key,
                    cached=True,
                    seconds=time.perf_counter() - load_start,
                )
                continue
        misses.append(index)

    if misses:
        # dedupe within the batch: two cells with one content address are
        # one computation (the duplicates share the payload below)
        leaders: dict[str, int] = {}
        for index in misses:
            leaders.setdefault(prepared[index][3], index)
        unique = sorted(leaders.values())
        if workers > 1 and len(unique) > 1:
            pool_size = min(workers, len(unique))
            context = multiprocessing.get_context(start_method)
            with context.Pool(pool_size) as pool:
                computed = pool.map(
                    _run_job, [jobs[index] for index in unique], chunksize=1
                )
            # canonicalize everything the pool sent back in one pass, so
            # fixed points and records share representatives
            computed = [
                {**payload, **dict(zip(("fp", "records"), rehydrate((payload["fp"], payload["records"]))))}
                for payload in computed
            ]
        else:
            computed = [_run_job(jobs[index]) for index in unique]
        by_key = {prepared[index][3]: payload for index, payload in zip(unique, computed)}

        stored: set[str] = set()
        for index in misses:
            job, program, analysis, key = prepared[index]
            payload = by_key[key]
            outcomes[index] = JobOutcome(
                job=job,
                result=wrap_fixpoint(analysis, payload["fp"], program, job.config.language),
                key=key,
                cached=False,
                seconds=payload["seconds"],
                stats=payload["stats"],
                worker_pid=payload["pid"],
            )
            if cache is not None and use_cache and key not in stored:
                stored.add(key)
                cache.put(
                    program,
                    job.config,
                    payload["fp"],
                    records=payload["records"],
                    seconds=payload["seconds"],
                )

    return BatchReport(
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        workers=workers,
        total_seconds=time.perf_counter() - started,
        cache_stats=cache.stats() if cache is not None else None,
    )
