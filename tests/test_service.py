"""The service layer: cache, sharded batch, warm starts -- all bit-identical.

The acceptance matrix this file pins: for every preset x language in the
existing configuration matrix, four ways of obtaining the fixed point
must agree exactly --

* **cold**: one process, ``assemble(config).run(program)``;
* **cache hit**: the same cell loaded from the content-addressed
  fixpoint cache (pickle round-trip + intern rehydration);
* **batch**: the cell computed by a spawn-started ``multiprocessing``
  worker inside ``run_batch(..., workers=4)``;
* **warm start after an identity edit**: re-analysing the unchanged
  program seeded with its own previous fixed point (for warmable
  configurations this replays every evaluation record: zero step
  evaluations).

Plus the real-edit contract: appending a link to ``id_chain`` and
warm-starting from the unedited chain's fixed point gives a result
identical to cold with strictly fewer evaluations.
"""

import pickle

import pytest

from repro.config import LANGUAGES, PRESETS, assemble, preset_config
from repro.core.fixpoint import FixpointCapture, WarmStart
from repro.corpus import corpus_program
from repro.corpus.cps_programs import id_chain, id_chain_edited
from repro.service.batch import BatchJob, jobs_for, run_batch
from repro.service.cache import FixpointCache, cache_key, program_digest
from repro.service.incremental import edit_distance, reanalyse, warmable

#: One small corpus program per language; every preset (including
#: ``concrete``, which needs a finite concrete state space) runs on it.
MATRIX_PROGRAMS = {"cps": "mj09", "lam": "eta", "fj": "animals"}

CELLS = [
    (preset_name, lang)
    for preset_name in sorted(PRESETS)
    for lang in LANGUAGES
]


def _program(lang):
    return corpus_program(lang, MATRIX_PROGRAMS[lang])


def _cold_fp(config, lang):
    program = _program(lang)
    analysis = assemble(config, program=program)
    return analysis.run(program, worklist=not config.shared).fp


@pytest.fixture(scope="module")
def cold_fps():
    """Cold single-process fixed points for every matrix cell."""
    return {
        (preset_name, lang): _cold_fp(
            preset_config(preset_name, lang), lang
        )
        for preset_name, lang in CELLS
    }


@pytest.fixture(scope="module")
def matrix_jobs():
    return [
        BatchJob(
            config=preset_config(preset_name, lang),
            corpus=MATRIX_PROGRAMS[lang],
            label=f"{lang}/{preset_name}",
        )
        for preset_name, lang in CELLS
    ]


@pytest.fixture(scope="module")
def service_cache(tmp_path_factory):
    return FixpointCache(root=tmp_path_factory.mktemp("fixcache"))


@pytest.fixture(scope="module")
def pooled_report(matrix_jobs, service_cache):
    """The whole matrix through a 4-worker spawn pool, filling the cache."""
    return run_batch(matrix_jobs, workers=4, cache=service_cache)


class TestMatrixEquivalence:
    """cold == cache-hit == run_batch(jobs=4) == warm-started, cell by cell."""

    def test_pooled_batch_matches_cold(self, pooled_report, cold_fps):
        assert len(pooled_report.outcomes) == len(CELLS)
        assert pooled_report.hit_count == 0  # first contact: all computed
        for outcome, cell in zip(pooled_report.outcomes, CELLS):
            assert outcome.fp == cold_fps[cell], outcome.job.label

    def test_cache_hits_match_cold(self, pooled_report, matrix_jobs, service_cache, cold_fps):
        rerun = run_batch(matrix_jobs, workers=1, cache=service_cache)
        assert rerun.hit_count == len(CELLS)  # second contact: all cached
        for outcome, cell in zip(rerun.outcomes, CELLS):
            assert outcome.fp == cold_fps[cell], outcome.job.label

    @pytest.mark.parametrize("preset_name,lang", CELLS)
    def test_identity_edit_reanalysis_matches_cold(
        self, preset_name, lang, pooled_report, service_cache, cold_fps
    ):
        """Re-submitting an unchanged program is a digest hit for every
        preset -- the degenerate warm start available to all of them."""
        config = preset_config(preset_name, lang)
        outcome = reanalyse(config, _program(lang), service_cache)
        assert outcome.mode == "cache-hit"
        assert outcome.fp == cold_fps[(preset_name, lang)]
        assert outcome.stats["evaluations"] == 0

    @pytest.mark.parametrize(
        "preset_name", [n for n in sorted(PRESETS) if warmable(PRESETS[n].config)]
    )
    @pytest.mark.parametrize("lang", LANGUAGES)
    def test_identity_edit_warm_engine_run_matches_cold(
        self, preset_name, lang, pooled_report, service_cache, cold_fps
    ):
        """For warmable presets, force the *engine-level* warm start (not
        the digest shortcut): every evaluation replays, none re-steps."""
        config = preset_config(preset_name, lang)
        program = _program(lang)
        donor = service_cache.get(program, config)
        assert donor is not None and donor.warmable
        analysis = assemble(config, program=program)
        result = analysis.run(program, warm_start=donor.warm_start())
        assert result.fp == cold_fps[(preset_name, lang)]
        assert analysis.last_stats["evaluations"] == 0
        assert analysis.last_stats["reused"] == analysis.last_stats["configurations"]


class TestRealEditWarmStart:
    """Append a link to ``id_chain``: identical result, strictly less work."""

    @pytest.mark.parametrize("store_impl", ["versioned", "persistent"])
    def test_chain_append_is_exact_and_cheaper(self, store_impl):
        config = preset_config("1cfa", "cps").replace(store_impl=store_impl)
        base, edited = id_chain(40), id_chain_edited(40)

        capture = FixpointCapture()
        base_analysis = assemble(config)
        base_result = base_analysis.run(base, capture=capture)

        cold_analysis = assemble(config)
        cold_result = cold_analysis.run(edited)

        warm_analysis = assemble(config)
        warm_result = warm_analysis.run(
            edited, warm_start=capture.warm_start(base_result.fp[1])
        )
        assert warm_result.fp == cold_result.fp
        warm_evals = warm_analysis.last_stats["evaluations"]
        cold_evals = cold_analysis.last_stats["evaluations"]
        assert 0 < warm_evals < cold_evals
        assert warm_analysis.last_stats["reused"] > 0

    def test_chain_append_through_the_cache_pipeline(self, tmp_path):
        """``reanalyse`` finds the unedited chain's entry as donor and
        warm-starts automatically; a chain of edits stays warm."""
        cache = FixpointCache(root=tmp_path / "cache")
        config = preset_config("1cfa", "cps")
        first = reanalyse(config, id_chain(40), cache)
        assert first.mode == "cold"
        second = reanalyse(config, id_chain_edited(40), cache)
        assert second.mode == "warm"
        assert second.stats["reused"] > 0
        cold = assemble(config).run(id_chain_edited(40))
        assert second.fp == cold.fp
        # and the warm run's own records warm the next identity submission
        third = reanalyse(config, id_chain_edited(40), cache)
        assert third.mode == "cache-hit" and third.fp == cold.fp

    def test_unrelated_program_is_not_auto_warm_started(self, tmp_path):
        """The donor gate: mj09's entry is not a subterm of the chain, so
        the chain re-runs cold instead of risking an inexact warm seed."""
        cache = FixpointCache(root=tmp_path / "cache")
        config = preset_config("1cfa", "cps")
        reanalyse(config, corpus_program("cps", "mj09"), cache)
        outcome = reanalyse(config, id_chain(12), cache)
        assert outcome.mode == "cold"
        assert outcome.fp == assemble(config).run(id_chain(12)).fp

    def test_sibling_edit_is_not_auto_warm_started(self, tmp_path):
        """A sibling edit (shared sub-terms, different surroundings) can
        share *addresses* with the donor while disagreeing on values; an
        auto warm start here would be silently over-approximate, so the
        subterm gate sends it cold -- and cold equality holds."""
        from repro.cps.parser import parse_program

        trampoline = "(lambda (f y q) (f y q))"
        shared = "(lambda (x j) (j x))"
        sibling_a = parse_program(
            f"({trampoline} {shared} (lambda (a ka) (ka a)) (lambda (r) (exit)))"
        )
        sibling_b = parse_program(
            f"({trampoline} {shared} (lambda (b kb) (kb b)) (lambda (r) (exit)))"
        )
        cache = FixpointCache(root=tmp_path / "cache")
        config = preset_config("1cfa", "cps")
        reanalyse(config, sibling_a, cache)
        outcome = reanalyse(config, sibling_b, cache)
        assert outcome.mode == "cold"
        assert outcome.fp == assemble(config).run(sibling_b).fp

    def test_explicit_unrelated_donor_stays_exact(self, tmp_path):
        """Passing donor= bypasses the gate; for an address-disjoint
        donor the EvalRecord ``writes`` restriction still keeps the
        result exactly cold-equal (the donor's cells must not leak)."""
        cache = FixpointCache(root=tmp_path / "cache")
        config = preset_config("1cfa", "cps")
        reanalyse(config, corpus_program("cps", "mj09"), cache)
        donor = cache.latest_for(config)
        assert donor is not None and donor.warmable
        warm = reanalyse(config, id_chain(12), cache, donor=donor)
        assert warm.mode == "warm"  # forced; nothing replayable
        assert warm.fp == assemble(config).run(id_chain(12)).fp
        # a gate-bypassed result must not be cached as if it were exact
        assert reanalyse(config, id_chain(12), cache).mode == "cold"

    def test_snapshot_shaped_warm_seed_runs_on_the_versioned_path(self):
        """WarmStart.store may be a StoreSnapshot (the documented shape);
        the versioned engine must accept it, versions included."""
        from repro.core.store import StoreSnapshot

        config = preset_config("1cfa", "cps")
        capture = FixpointCapture()
        analysis = assemble(config)
        base = analysis.run(id_chain(15), capture=capture)
        seed = WarmStart(
            store=StoreSnapshot.of_mapping(base.fp[1]),
            records=dict(capture.records),
        )
        rerun_analysis = assemble(config)
        rerun = rerun_analysis.run(id_chain(15), warm_start=seed)
        assert rerun.fp == base.fp
        assert rerun_analysis.last_stats["evaluations"] == 0

    def test_edit_distance_reports_the_delta(self):
        base, edited = id_chain(40), id_chain_edited(40)
        identical = edit_distance(base, base)
        assert identical["new_terms"] == 0 and identical["ratio"] == 0.0
        delta = edit_distance(base, edited)
        assert 0 < delta["new_terms"] < delta["total"] * 0.1
        unrelated = edit_distance(corpus_program("cps", "mj09"), base)
        assert unrelated["ratio"] > 0.9


class TestWarmStartRefusals:
    """Configurations the warm path cannot serve fail loudly, not wrongly."""

    def test_gc_config_refuses_warm_start(self):
        config = preset_config("1cfa-gc", "cps")
        analysis = assemble(config)
        seed = WarmStart(store={}, records={})
        with pytest.raises(TypeError, match="GC or counting"):
            analysis.run(id_chain(4), warm_start=seed)

    def test_counting_config_refuses_capture(self):
        config = preset_config("kcfa-counting-fast", "cps")
        analysis = assemble(config)
        with pytest.raises(TypeError, match="GC or counting"):
            analysis.run(id_chain(4), capture=FixpointCapture())

    def test_kleene_refuses_warm_start(self):
        config = preset_config("1cfa", "cps").replace(
            engine="kleene", store_impl="persistent"
        )
        analysis = assemble(config)
        with pytest.raises(ValueError, match="kleene"):
            analysis.run(id_chain(4), warm_start=WarmStart(store={}, records={}))

    def test_blind_worklist_refuses_warm_start(self):
        config = preset_config("1cfa", "cps").replace(engine="worklist")
        analysis = assemble(config)
        with pytest.raises(TypeError, match="dependency-tracked"):
            analysis.run(id_chain(4), warm_start=WarmStart(store={}, records={}))

    def test_per_state_run_refuses_warm_start(self):
        analysis = assemble(preset_config("1cfa-per-state", "cps"))
        with pytest.raises(ValueError, match="engine"):
            analysis.run(id_chain(4), warm_start=WarmStart(store={}, records={}))

    def test_non_warmable_presets_are_classified(self):
        assert warmable(preset_config("1cfa", "cps"))
        assert warmable(preset_config("1cfa-fused", "cps"))
        assert not warmable(preset_config("1cfa-gc", "cps"))
        assert not warmable(preset_config("kcfa-counting-fast", "cps"))
        assert not warmable(preset_config("1cfa-per-state", "cps"))
        assert not warmable(preset_config("concrete", "cps"))


class TestDigestsAndKeys:
    def test_digest_is_parse_stable(self):
        from repro.cps.parser import parse_program
        from repro.corpus.cps_programs import MJ09

        assert program_digest(parse_program(MJ09)) == program_digest(
            parse_program(MJ09)
        )

    def test_digest_distinguishes_programs(self):
        assert program_digest(id_chain(10)) != program_digest(id_chain(11))
        assert program_digest(id_chain(10)) != program_digest(id_chain_edited(10))

    def test_digest_survives_pickling(self):
        """The digest is structural: a non-interned unpickled copy of the
        term digests identically to the pool's canonical one."""
        term = id_chain(20)
        copy = pickle.loads(pickle.dumps(term))
        assert copy is not term
        assert program_digest(copy) == program_digest(term)

    def test_digest_is_deep_safe(self):
        assert len(program_digest(id_chain(600))) == 64

    def test_cache_key_ignores_labels(self):
        program = _program("cps")
        preset = preset_config("1cfa", "cps")
        hand_built = preset.replace(label="something-else")
        assert cache_key(program, preset) == cache_key(program, hand_built)

    def test_cache_key_separates_configs(self):
        program = _program("cps")
        assert cache_key(program, preset_config("1cfa", "cps")) != cache_key(
            program, preset_config("2cfa", "cps")
        )


class TestFixpointCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        program = _program("cps")
        assert cache.get(program, config) is None
        fp = _cold_fp(config, "cps")
        cache.put(program, config, fp)
        loaded = cache.get(program, config)
        assert loaded is not None and loaded.fp == fp
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "stores": 1,
            # session counters above; lifetime accumulates across
            # processes through the index document (fresh dir: equal)
            "lifetime": {"hits": 1, "misses": 1, "evictions": 0, "stores": 1},
        }

    def test_rehydrated_loads_are_pool_canonical(self, tmp_path):
        """Terms inside a loaded fixed point are the intern pool's
        canonical representatives -- the identity fast path survives the
        disk round trip."""
        from repro.util.intern import intern

        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        program = id_chain(10)
        fp = assemble(config).run(program).fp
        cache.put(program, config, fp)
        loaded = cache.get(program, config)
        # every control term in the loaded fixed point IS its pool
        # representative (intern returns the argument only when the
        # argument is canonical)...
        for pair, _guts in loaded.fp[0]:
            assert intern(pair.ctrl) is pair.ctrl
        # ...and in particular the program's own states are pointer-equal
        # to the locally interned program term
        loaded_roots = {pair.ctrl for pair, _guts in loaded.fp[0] if pair.ctrl == program}
        assert all(ctrl is program for ctrl in loaded_roots)

    def test_lru_eviction(self, tmp_path):
        cache = FixpointCache(root=tmp_path / "c", max_entries=2)
        config = preset_config("1cfa", "cps")
        programs = [id_chain(n) for n in (3, 4, 5)]
        for program in programs:
            cache.put(program, config, assemble(config).run(program).fp)
        assert cache.stats()["entries"] == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(programs[0], config) is None  # the oldest went
        assert cache.get(programs[2], config) is not None

    def test_index_is_deterministic_and_survives_reload(self, tmp_path):
        root = tmp_path / "c"
        cache = FixpointCache(root=root)
        config = preset_config("1cfa", "cps")
        program = _program("cps")
        cache.put(program, config, _cold_fp(config, "cps"))
        first = cache.index_path.read_bytes()
        cache._write_index()
        assert cache.index_path.read_bytes() == first  # byte-stable
        reopened = FixpointCache(root=root)
        assert reopened.get(program, config) is not None

    def test_dangling_entry_is_repaired_and_does_not_shadow_donors(self, tmp_path):
        """An index entry whose object file vanished is dropped on first
        touch, and latest_for falls back to the next (older, valid)
        records-bearing entry instead of returning None forever."""
        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        old_key = reanalyse(config, id_chain(5), cache).key
        new_key = reanalyse(config, id_chain(6), cache).key
        cache._object_path(new_key).unlink()  # simulate external cleanup
        donor = cache.latest_for(config)
        assert donor is not None and donor.key == old_key
        assert new_key not in cache._index  # repaired, not just skipped

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        program = _program("cps")
        key = cache.put(program, config, _cold_fp(config, "cps"))
        with open(cache._object_path(key), "wb") as handle:
            pickle.dump({"schema": -1, "fp": None, "records": None}, handle)
        assert cache.get(program, config) is None

    def test_truncated_object_is_a_miss_not_a_crash(self, tmp_path):
        """A process killed mid-write must degrade to a recomputation,
        never poison the cache directory."""
        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        program = _program("cps")
        key = cache.put(program, config, _cold_fp(config, "cps"))
        payload = cache._object_path(key).read_bytes()
        cache._object_path(key).write_bytes(payload[: len(payload) // 2])
        assert cache.get(program, config) is None
        assert key not in cache._index  # forgotten, so the next put heals

    def test_corrupt_records_sidecar_degrades_to_records_free(self, tmp_path):
        """Sidecar damage costs the warm start only: the entry still
        serves its fixed point, and donor probes fall back to cold."""
        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        key = reanalyse(config, id_chain(5), cache).key
        cache._records_path(key).write_bytes(b"not a pickle")
        entry = cache.get_key(key)
        assert entry is not None and entry.records is None
        assert cache.latest_for(config) is None  # no usable donor -> cold
        assert reanalyse(config, id_chain_edited(5), cache).mode == "cold"

    def test_corrupt_index_degrades_to_an_empty_cache(self, tmp_path):
        root = tmp_path / "c"
        cache = FixpointCache(root=root)
        config = preset_config("1cfa", "cps")
        program = _program("cps")
        cache.put(program, config, _cold_fp(config, "cps"))
        cache.index_path.write_text("{ truncated")
        reopened = FixpointCache(root=root)  # must not raise
        assert reopened.stats()["entries"] == 0
        assert reopened.get(program, config) is None
        # a fresh put heals the directory in place
        reopened.put(program, config, _cold_fp(config, "cps"))
        assert FixpointCache(root=root).get(program, config) is not None

    def test_rejected_donor_probe_does_not_count_as_a_hit(self, tmp_path):
        cache = FixpointCache(root=tmp_path / "c")
        config = preset_config("1cfa", "cps")
        reanalyse(config, id_chain(5), cache)
        hits_before = cache.stats()["hits"]
        outcome = reanalyse(config, corpus_program("cps", "mj09"), cache)
        assert outcome.mode == "cold"  # donor probed but rejected
        assert cache.stats()["hits"] == hits_before

    def test_no_cache_never_creates_the_directory(self, tmp_path):
        jobs = [BatchJob(config=preset_config("1cfa", "cps"), corpus="mj09")]
        target = tmp_path / "never-created"
        report = run_batch(jobs, workers=1, cache_dir=str(target), use_cache=False)
        assert report.cache_stats is None
        assert not target.exists()


class TestBatchRunner:
    def test_job_validation(self):
        config = preset_config("1cfa", "cps")
        with pytest.raises(ValueError, match="exactly one"):
            BatchJob(config=config)
        with pytest.raises(ValueError, match="exactly one"):
            BatchJob(config=config, source="x", corpus="y")
        with pytest.raises(ValueError, match="language"):
            BatchJob(config=preset_config("1cfa"), corpus="mj09")

    def test_jobs_for_builds_the_grid(self):
        grid = jobs_for(
            [("cps", "p", "(exit)"), ("lam", "q", "(lambda (x) x)")],
            ["1cfa", "0cfa"],
        )
        assert len(grid) == 4
        assert {job.config.language for job in grid} == {"cps", "lam"}

    def test_no_cache_keeps_a_configured_cache_cold(self, tmp_path):
        cache = FixpointCache(root=tmp_path / "c")
        jobs = [BatchJob(config=preset_config("1cfa", "cps"), corpus="mj09")]
        report = run_batch(jobs, workers=1, cache=cache, use_cache=False)
        assert report.hit_count == 0
        assert cache.stats()["entries"] == 0

    def test_batch_keys_match_reanalyse_keys(self, tmp_path):
        """run_batch must address the cache with the *validated* config:
        an unvalidated engine config (widening still at its default) has
        to land under the same key reanalyse and latest_for derive."""
        from repro.config import AnalysisConfig

        raw = AnalysisConfig(
            language="cps", k=1, engine="depgraph", store_impl="versioned"
        )
        assert raw != raw.validated()  # widening normalizes to "store"
        cache = FixpointCache(root=tmp_path / "c")
        run_batch([BatchJob(config=raw, corpus="mj09")], workers=1, cache=cache)
        followup = reanalyse(raw.validated(), corpus_program("cps", "mj09"), cache)
        assert followup.mode == "cache-hit"
        assert cache.latest_for(raw.validated()) is not None

    def test_duplicate_cells_are_computed_once(self, tmp_path):
        """Two jobs with one content address are one computation (and one
        cache store), inline and pooled alike."""
        cache = FixpointCache(root=tmp_path / "c")
        job = BatchJob(config=preset_config("1cfa", "cps"), corpus="mj09")
        twin = BatchJob(
            config=preset_config("1cfa", "cps"), corpus="mj09", label="twin"
        )
        report = run_batch([job, twin], workers=1, cache=cache)
        assert report.hit_count == 0  # both rows report the computation
        assert report.outcomes[0].fp == report.outcomes[1].fp
        assert cache.stats()["stores"] == 1  # one computation, one entry

    def test_report_document_is_deterministic(self, tmp_path):
        cache = FixpointCache(root=tmp_path / "c")
        jobs = [
            BatchJob(config=preset_config("1cfa", "cps"), corpus="mj09"),
            BatchJob(config=preset_config("0cfa", "cps"), corpus="id-id"),
        ]
        run_batch(jobs, workers=1, cache=cache)
        rendered = run_batch(jobs, workers=1, cache=cache).render()
        document = run_batch(jobs, workers=1, cache=cache).to_document()
        assert document["schema"] == "batch-report/1"
        assert all(row["cache"] == "hit" for row in document["jobs"])
        assert rendered.startswith("{\n")
        assert rendered.endswith("\n")
