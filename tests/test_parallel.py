"""The sharded parallel worklist: determinism, guards, adaptive batching.

What this file pins, satellite by satellite:

* **Corpus bit-identity** -- the sharded engine's fixed point equals the
  sequential versioned engine's, program by program, across all three
  languages (plus lowered ``imp``), and for every shard count.
* **Merge determinism** -- on randomly generated monotone fake-domain
  systems, permuted slice schedules and adversarially jittered thread
  interleavings never change the fixed point (only the trajectory
  statistics may move); explicitly permuted barrier merges land on the
  same frozen store.
* **Spawn safety** -- a sharded result pickles across a ``spawn``
  process boundary and rehydrates onto the child's intern pool, exactly
  like a sequential result (``spawn_helpers.probe_sharded_fixpoint``).
* **Configuration guards** -- ``validated()`` and the engine entry
  point refuse the combinations the sharded mode cannot honour
  (non-depgraph engines, persistent stores, GC, counting, warm starts,
  capture), and ``cache_key`` deliberately ignores the parallelism axis
  (same fixed point, same content address).
* **The adaptive batch pool** -- sub-threshold batches never spawn
  workers; a dead worker or damaged transport falls back to inline
  evaluation for its chunk only, counted in ``inline_fallbacks``, with
  every fixed point still bit-identical.
"""

import concurrent.futures
import pickle
import random
import threading
import time

import pytest

import spawn_helpers
from repro.config import PRESETS, assemble, preset_config
from repro.core.fixpoint import FixpointCapture, FixpointDiverged, WarmStart
from repro.core.store import MutableStore, ShardOverlay, VersionedStore
from repro.corpus import corpus_program, corpus_programs
from repro.parallel import sharded_explore
from repro.service.incremental import warmable

# ---------------------------------------------------------------------------
# Corpus bit-identity
# ---------------------------------------------------------------------------

#: One substantial corpus program per language (imp arrives lowered).
IDENTITY_PROGRAMS = (
    ("cps", "mj09"),
    ("lam", "church-two-two"),
    ("lam", "imp:nested-loops"),
    ("fj", "visitor"),
)


def _fixpoint(config, program):
    analysis = assemble(config, program=program)
    result = analysis.run(program, worklist=not config.shared)
    return result.fp, dict(analysis.last_stats)


class TestCorpusIdentity:
    @pytest.mark.parametrize("lang,name", IDENTITY_PROGRAMS)
    def test_sharded_matches_sequential(self, lang, name):
        program = corpus_program(lang, name)
        sequential, _ = _fixpoint(preset_config("1cfa-fused", lang), program)
        sharded, stats = _fixpoint(preset_config("1cfa-sharded", lang), program)
        assert sharded == sequential
        assert stats["shards"] == 4 and stats["rounds"] >= 1
        assert stats["peak_frontier"] >= 1

    @pytest.mark.parametrize("shards", (1, 2, 3, 5))
    def test_every_shard_count_is_identical(self, shards):
        program = corpus_program("lam", "church-two-two")
        sequential, _ = _fixpoint(preset_config("1cfa-fused", "lam"), program)
        config = preset_config("1cfa-sharded", "lam").replace(shards=shards).validated()
        sharded, stats = _fixpoint(config, program)
        assert sharded == sequential
        assert stats["shards"] == shards

    def test_full_lam_corpus_generic_transition(self):
        """The generic (monadic) transition shards identically too."""
        sequential_config = preset_config("1cfa-sharded", "lam").replace(
            transition="generic", parallelism="none", shards=1
        ).validated()
        sharded_config = preset_config("1cfa-sharded", "lam").replace(
            transition="generic"
        ).validated()
        for name in sorted(corpus_programs("lam")):
            program = corpus_program("lam", name)
            sequential, _ = _fixpoint(sequential_config, program)
            sharded, _ = _fixpoint(sharded_config, program)
            assert sharded == sequential, name


# ---------------------------------------------------------------------------
# Merge determinism on a fake domain (adversarial interleavings)
# ---------------------------------------------------------------------------


class _FakeInner:
    """The minimal per-state domain surface the sharded engine consumes."""

    def __init__(self, store_like):
        self.store_like = store_like

    def run_config_pairs(self, step, config_pair, instrument=True):
        config, store = config_pair
        return step(config, store)


class _FakeCollecting:
    def __init__(self, inner, seeds):
        self.inner = inner
        self._seeds = frozenset(seeds)

    def inject(self, _initial_state):
        return self._seeds, {}


def _random_system(seed, configs=12, addresses=8):
    """A random monotone equation system over frozenset-valued addresses.

    Each configuration reads a few addresses and writes the union of
    what it read plus its own token -- monotone by construction, so the
    least fixed point is unique and every chaotic iteration (sequential,
    sharded, adversarially interleaved) must land on it exactly.
    """
    rng = random.Random(seed)
    addrs = [f"a{i}" for i in range(addresses)]
    table = {}
    for c in range(configs):
        reads = rng.sample(addrs, rng.randint(1, 3))
        writes = rng.sample(addrs, rng.randint(1, 2))
        successors = rng.sample(range(configs), rng.randint(0, 3))
        table[c] = (tuple(reads), tuple(writes), tuple(successors))
    return table


def _system_step(base, table, jitter=0.0):
    """The system as an engine step; ``jitter`` adds adversarial sleeps."""

    def step(config, store):
        reads, writes, successors = table[config]
        gathered = frozenset({("token", config)})
        for addr in reads:
            gathered |= base.fetch(store, addr)
        if jitter:
            time.sleep(random.random() * jitter)
        for addr in writes:
            base.bind(store, addr, gathered)
        return list(successors)

    return step


def _reference_fixpoint(table, seeds):
    """An independent whole-system Kleene iteration (no engine code)."""
    store = {}
    seen = set(seeds)
    while True:
        changed = False
        for config in sorted(seen):
            reads, writes, successors = table[config]
            gathered = frozenset({("token", config)})
            for addr in reads:
                gathered |= store.get(addr, frozenset())
            for addr in writes:
                joined = store.get(addr, frozenset()) | gathered
                if joined != store.get(addr, frozenset()):
                    store[addr] = joined
                    changed = True
            for successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    changed = True
        if not changed:
            return frozenset(seen), store


class TestFakeDomainDeterminism:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_sharded_reaches_the_unique_lfp(self, seed, shards):
        table = _random_system(seed)
        base = VersionedStore()
        collecting = _FakeCollecting(_FakeInner(base), seeds={0, 1})
        configs, frozen = sharded_explore(
            collecting, _system_step(base, table), None, base, shards=shards
        )
        ref_configs, ref_store = _reference_fixpoint(table, seeds={0, 1})
        assert configs == ref_configs
        assert dict(frozen) == ref_store

    @pytest.mark.parametrize("seed", range(3))
    def test_adversarial_interleavings_cannot_steer_the_result(self, seed):
        """Random sleeps inside evaluations permute the thread schedule;
        the barrier merge must make the schedule unobservable."""
        table = _random_system(seed, configs=16, addresses=10)
        ref_configs, ref_store = _reference_fixpoint(table, seeds={0})
        for shards in (2, 3, 5):
            base = VersionedStore()
            collecting = _FakeCollecting(_FakeInner(base), seeds={0})
            configs, frozen = sharded_explore(
                collecting,
                _system_step(base, table, jitter=0.002),
                None,
                base,
                shards=shards,
            )
            assert configs == ref_configs, shards
            assert dict(frozen) == ref_store, shards

    def test_permuted_barrier_merges_freeze_identically(self):
        """Merging the same private overlays in any order grows the same
        store: the join is commutative and associative entry-wise."""
        base = VersionedStore()
        writes = [
            {"a": frozenset({1}), "b": frozenset({2})},
            {"b": frozenset({3}), "c": frozenset({4})},
            {"a": frozenset({5}), "c": frozenset({4, 6})},
            {"d": frozenset({7})},
        ]
        rng = random.Random(11)
        frozen_images = set()
        for _ in range(8):
            order = list(range(len(writes)))
            rng.shuffle(order)
            mstore = MutableStore({"a": frozenset({0})})
            for index in order:
                for addr, entry in writes[index].items():
                    base.merge_entry(mstore, addr, entry)
            frozen_images.add(base.freeze(mstore))
        assert len(frozen_images) == 1

    def test_divergence_budget_still_applies(self):
        table = {0: (("a",), ("a",), (0,))}

        # an ever-growing write keeps retriggering config 0 forever
        def step(config, store):
            current = base.fetch(store, "a")
            base.bind(store, "a", frozenset({len(current)}))
            return [0]

        base = VersionedStore()
        collecting = _FakeCollecting(_FakeInner(base), seeds={0})
        with pytest.raises(FixpointDiverged):
            sharded_explore(collecting, step, None, base, shards=2, max_evals=50)


class TestShardOverlay:
    def test_reads_and_writes_stay_private_until_merge(self):
        base = VersionedStore()
        mstore = MutableStore({"a": frozenset({1})})
        overlay = ShardOverlay(mstore)
        assert base.fetch(overlay, "a") == frozenset({1})
        assert base.fetch(overlay, "missing") == frozenset()
        base.bind(overlay, "b", frozenset({2}))
        assert overlay.reads == {"a", "missing"}
        assert overlay.written() == {"b": frozenset({2})}
        assert "b" not in mstore.data  # private until the barrier
        # bind's internal join read must NOT register as a dependency
        base.bind(overlay, "a", frozenset({1}))
        assert overlay.reads == {"a", "missing"}

    def test_concurrent_overlays_do_not_observe_each_other(self):
        base = VersionedStore()
        mstore = MutableStore()
        first, second = ShardOverlay(mstore), ShardOverlay(mstore)
        barrier = threading.Barrier(2)

        def write(overlay, addr):
            barrier.wait()
            base.bind(overlay, addr, frozenset({addr}))
            return base.fetch(overlay, "x") | base.fetch(overlay, "y")

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            seen_x = pool.submit(write, first, "x")
            seen_y = pool.submit(write, second, "y")
            assert seen_x.result() == frozenset({"x"})
            assert seen_y.result() == frozenset({"y"})
        assert not mstore.data


# ---------------------------------------------------------------------------
# Spawn safety
# ---------------------------------------------------------------------------


class TestSpawnSafety:
    def test_sharded_result_round_trips_through_spawn(self):
        import multiprocessing

        config = preset_config("1cfa-sharded", "lam")
        program = corpus_program("lam", "church-two-two")
        result = assemble(config, program=program).run(
            program, worklist=not config.shared
        )
        context = multiprocessing.get_context("spawn")
        with context.Pool(1) as pool:
            outcome = pool.apply(
                spawn_helpers.probe_sharded_fixpoint,
                (pickle.dumps(result.fp), "church-two-two"),
            )
        assert outcome["equal"]
        assert outcome["rehydrated_equal"]


# ---------------------------------------------------------------------------
# Configuration guards
# ---------------------------------------------------------------------------


class TestConfigGuards:
    def test_unknown_parallelism_is_rejected(self):
        config = preset_config("1cfa-fused", "lam").replace(parallelism="simd")
        with pytest.raises(ValueError, match="unknown parallelism"):
            config.validated()

    def test_shards_must_be_positive(self):
        config = preset_config("1cfa-sharded", "lam").replace(shards=0)
        with pytest.raises(ValueError, match="at least 1"):
            config.validated()

    def test_shards_without_sharded_parallelism_is_rejected(self):
        config = preset_config("1cfa-fused", "lam").replace(shards=4)
        with pytest.raises(ValueError, match="parallelism='sharded'"):
            config.validated()

    @pytest.mark.parametrize(
        "overrides",
        (
            {"engine": "worklist"},
            {"engine": "kleene", "store_impl": "persistent"},
            {"store_impl": "persistent"},
            {"gc": True},
            {"counting": True},
        ),
    )
    def test_incompatible_axes_are_rejected(self, overrides):
        config = preset_config("1cfa-sharded", "lam").replace(**overrides)
        with pytest.raises(ValueError):
            config.validated()

    def test_sharded_preset_is_registered_and_valid(self):
        assert "1cfa-sharded" in PRESETS
        config = preset_config("1cfa-sharded", "lam")
        assert config.parallelism == "sharded" and config.shards == 4
        assert "sharded(4)" in config.describe()

    def test_cache_key_ignores_the_parallelism_axis(self):
        sequential = preset_config("1cfa-fused", "lam")
        sharded = preset_config("1cfa-sharded", "lam")
        assert sequential.cache_key() == sharded.cache_key()

    def test_sharded_refuses_warm_start_and_capture(self):
        config = preset_config("1cfa-sharded", "lam")
        program = corpus_program("lam", "eta")
        analysis = assemble(config, program=program)
        with pytest.raises(TypeError, match="warm starts"):
            analysis.run(program, capture=FixpointCapture())
        with pytest.raises(TypeError, match="warm starts"):
            analysis.run(program, warm_start=WarmStart(store={}, records={}))

    def test_sharded_is_not_warmable(self):
        assert not warmable(preset_config("1cfa-sharded", "lam"))
        assert warmable(preset_config("1cfa-fused", "lam"))


# ---------------------------------------------------------------------------
# The adaptive batch pool
# ---------------------------------------------------------------------------


def _small_jobs():
    from repro.service.batch import BatchJob

    return [
        BatchJob(config=preset_config("1cfa", "lam"), corpus="eta"),
        BatchJob(config=preset_config("1cfa-fused", "lam"), corpus="eta"),
        BatchJob(config=preset_config("1cfa", "lam"), corpus="church-two-two"),
        BatchJob(config=preset_config("1cfa-fused", "lam"), corpus="church-two-two"),
    ]


class _FakeFuture:
    def __init__(self, value=None, error=None):
        self._value, self._error = value, error

    def result(self):
        if self._error is not None:
            raise self._error
        return self._value


class _FakePool:
    """A ProcessPoolExecutor stand-in that computes chunks in-process.

    ``breaker(chunk)`` may return an exception (the whole "worker" dies)
    or a mutator applied to the packed payloads (damaged transport);
    ``None`` passes the chunk through the real ``_run_chunk``.
    """

    captured: list = []

    def __init__(self, max_workers=None, mp_context=None):
        type(self).captured.append(max_workers)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, chunk):
        breaker = type(self).breaker
        outcome = breaker(chunk) if breaker is not None else None
        if isinstance(outcome, Exception):
            return _FakeFuture(error=outcome)
        packed = fn(chunk)
        if callable(outcome):
            packed = outcome(packed)
        return _FakeFuture(value=packed)

    breaker = None


@pytest.fixture
def forced_pool(monkeypatch):
    """Route run_batch's pool through _FakePool on a pretend 4-core box."""
    import repro.service.batch as batch_mod

    monkeypatch.setattr(batch_mod.os, "cpu_count", lambda: 4)
    monkeypatch.setattr(batch_mod, "ProcessPoolExecutor", _FakePool)
    monkeypatch.setattr(
        batch_mod, "as_completed", lambda futures: list(futures), raising=True
    )
    _FakePool.captured = []
    _FakePool.breaker = None
    return batch_mod


class TestAdaptiveBatchPool:
    def test_sub_threshold_batch_never_spawns_workers(self):
        from repro.service.batch import run_batch

        report = run_batch(_small_jobs(), workers=4, min_pool_seconds=3600.0)
        assert report.pool_workers == 0
        assert report.inline_fallbacks == 0

    def test_single_core_box_never_spawns_workers(self, monkeypatch):
        import repro.service.batch as batch_mod

        monkeypatch.setattr(batch_mod.os, "cpu_count", lambda: 1)
        report = batch_mod.run_batch(_small_jobs(), workers=4, min_pool_seconds=0.0)
        assert report.pool_workers == 0

    def test_engaged_pool_matches_serial(self, forced_pool):
        serial = forced_pool.run_batch(_small_jobs(), workers=1)
        pooled = forced_pool.run_batch(_small_jobs(), workers=4, min_pool_seconds=0.0)
        assert pooled.pool_workers >= 2
        assert pooled.inline_fallbacks == 0
        for left, right in zip(serial.outcomes, pooled.outcomes):
            assert left.fp == right.fp

    def test_dead_worker_falls_back_inline_for_its_chunk_only(self, forced_pool):
        doomed: set = set()

        def kill_first_chunk(chunk):
            if not doomed:
                doomed.update(index for index, _job in chunk)
                return RuntimeError("worker died")
            return None

        _FakePool.breaker = staticmethod(kill_first_chunk)
        serial = forced_pool.run_batch(_small_jobs(), workers=1)
        pooled = forced_pool.run_batch(_small_jobs(), workers=4, min_pool_seconds=0.0)
        assert pooled.inline_fallbacks == len(doomed) > 0
        for left, right in zip(serial.outcomes, pooled.outcomes):
            assert left.fp == right.fp

    def test_damaged_transport_falls_back_for_that_job_only(self, forced_pool):
        def corrupt_first_payload(packed):
            index, payload = packed[0]
            return [(index, {**payload, "object_blob": b"not a pickle"})] + packed[1:]

        _FakePool.breaker = staticmethod(lambda chunk: corrupt_first_payload)
        serial = forced_pool.run_batch(_small_jobs(), workers=1)
        pooled = forced_pool.run_batch(_small_jobs(), workers=4, min_pool_seconds=0.0)
        assert pooled.inline_fallbacks >= 1
        for left, right in zip(serial.outcomes, pooled.outcomes):
            assert left.fp == right.fp

    def test_pooled_payloads_write_through_the_cache(self, forced_pool, tmp_path):
        from repro.service.cache import FixpointCache

        cache = FixpointCache(root=tmp_path / "fixcache")
        pooled = forced_pool.run_batch(
            _small_jobs(), workers=4, cache=cache, min_pool_seconds=0.0
        )
        assert pooled.pool_workers >= 2
        reread = FixpointCache(root=tmp_path / "fixcache")
        for outcome in pooled.outcomes:
            entry = reread.get_key(outcome.key)
            assert entry is not None and entry.fp == outcome.fp
            assert entry.records  # warmable cells keep their sidecar

    def test_report_document_carries_the_new_fields(self, forced_pool):
        report = forced_pool.run_batch(_small_jobs(), workers=4, min_pool_seconds=0.0)
        document = report.to_document()
        assert document["pool_workers"] == report.pool_workers >= 2
        assert document["inline_fallbacks"] == 0
