"""The CPS transform: semantics preservation and CFA hygiene."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cps.concrete import interpret_with_heap
from repro.cps.syntax import Call, Lam as CLam, is_closed, subterms as cps_subterms
from repro.cesk.concrete import evaluate
from repro.lam.cps_transform import cps_convert
from repro.lam.parser import parse_expr
from repro.lam.syntax import Lam
from repro.corpus.lam_programs import (
    PROGRAMS,
    apply_tower,
    church_add_program,
    church_numeral,
    eta_chain,
)

TERMINATING = ["id-simple", "mj09", "eta", "church-two-two"]


def strip_conts(lam: Lam | CLam):
    """The user-lambda skeleton of a CPS value: drop the continuation param."""
    return lam.params[:-1] if lam.params and lam.params[-1].startswith("$k") else lam.params


class TestTransformShape:
    def test_output_is_closed(self):
        for name in TERMINATING:
            assert is_closed(cps_convert(PROGRAMS[name]))

    def test_variable_becomes_halt_call(self):
        out = cps_convert(parse_expr("(lambda (x) x)"))
        # (halt (lambda (x $k) ($k x)))
        assert isinstance(out, Call)
        assert isinstance(out.fun, CLam)  # the halt continuation
        assert isinstance(out.args[0], CLam)
        assert out.args[0].params[0] == "x"

    def test_no_administrative_redexes_for_atomic_args(self):
        # ((lambda (x) x) y) with atomic pieces: output must not contain
        # a ((lambda (v) ...) atom) redex introduced by the transform for
        # the function or argument (only the continuation reification).
        out = cps_convert(parse_expr("(let ((id (lambda (x) x))) (id id))"))
        admin = [
            t
            for t in cps_subterms(out)
            if isinstance(t, Call)
            and isinstance(t.fun, CLam)
            and len(t.fun.params) == 1
            and t.fun.params[0].startswith("$")
        ]
        assert not admin

    def test_user_lambdas_gain_one_param(self):
        src = parse_expr("(lambda (a b) a)")
        out = cps_convert(src)
        converted = out.args[0]
        assert converted.params[:2] == ("a", "b")
        assert len(converted.params) == 3  # + continuation

    def test_fresh_names_avoid_source(self):
        out = cps_convert(parse_expr("(lambda (k) k)"))
        converted = out.args[0]
        assert converted.params[0] == "k"
        assert converted.params[1] != "k"


class TestSemanticsPreservation:
    """cesk(e) and cps-machine(cps(e)) compute the same user value."""

    @pytest.mark.parametrize("name", TERMINATING)
    def test_final_value_matches(self, name):
        expr = PROGRAMS[name]
        direct_value = evaluate(expr)
        final, heap = interpret_with_heap(cps_convert(expr))
        cps_value = heap[final.env["r"]]
        # the CPS result is the CPS image of the direct result: same user
        # parameters, continuation appended
        assert cps_value.lam.params[:-1] == direct_value.lam.params

    def test_church_arithmetic(self):
        expr = church_add_program(2, 3)
        direct_value = evaluate(expr)
        final, heap = interpret_with_heap(cps_convert(expr))
        cps_value = heap[final.env["r"]]
        assert cps_value.lam.params[:-1] == direct_value.lam.params

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_apply_tower(self, n):
        expr = apply_tower(n)
        direct_value = evaluate(expr)
        final, heap = interpret_with_heap(cps_convert(expr))
        cps_value = heap[final.env["r"]]
        assert cps_value.lam.params[:-1] == direct_value.lam.params

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_eta_chain(self, n):
        expr = eta_chain(n)
        direct_value = evaluate(expr)
        final, heap = interpret_with_heap(cps_convert(expr))
        assert heap[final.env["r"]].lam.params[:-1] == direct_value.lam.params


class TestGenerators:
    def test_church_numeral_shape(self):
        two = church_numeral(2)
        assert isinstance(two, Lam) and two.params == ("f",)

    def test_church_numeral_rejects_negative(self):
        with pytest.raises(ValueError):
            church_numeral(-1)

    def test_eta_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            eta_chain(0)

    def test_generated_programs_are_closed(self):
        from repro.lam.syntax import free_vars

        assert not free_vars(eta_chain(3))
        assert not free_vars(apply_tower(3))
        assert not free_vars(church_add_program(1, 2))


# a small random direct-style program strategy over terminating shapes:
# towers of lets binding identities and applications of bound names
@st.composite
def terminating_programs(draw):
    n = draw(st.integers(1, 4))
    return apply_tower(n)


class TestPropertyPreservation:
    @settings(max_examples=15, deadline=None)
    @given(terminating_programs())
    def test_random_towers_preserved(self, expr):
        direct_value = evaluate(expr)
        final, heap = interpret_with_heap(cps_convert(expr))
        assert heap[final.env["r"]].lam.params[:-1] == direct_value.lam.params
