"""Direct tests for the generic Collecting instances and the driver."""

import pytest

from repro.core.addresses import KCFA, ZeroCFA
from repro.core.collecting import PerStateStoreCollecting, SharedStoreCollecting
from repro.core.driver import (
    AnalysisRun,
    run_analysis,
    run_analysis_worklist,
    timed_analysis,
)
from repro.core.gc import MonadicStoreCollector
from repro.core.store import BasicStore
from repro.cps.analysis import AbstractCPSInterface, CPSTouching
from repro.cps.semantics import inject, mnext
from repro.corpus.cps_programs import PROGRAMS


def make_parts(addressing=None, collector=False):
    addressing = addressing or KCFA(1)
    store = BasicStore()
    interface = AbstractCPSInterface(addressing, store)
    gc = (
        MonadicStoreCollector(interface.monad, store, CPSTouching())
        if collector
        else None
    )
    per_state = PerStateStoreCollecting(interface.monad, store, addressing.tau0(), gc)
    step = lambda ps: mnext(interface, ps)
    return interface, per_state, step


class TestPerStateCollecting:
    def test_inject_shape(self):
        _iface, collecting, _step = make_parts()
        seed = collecting.inject("some-state")
        [(pair, store)] = list(seed)
        assert pair == ("some-state", ())
        assert store == collecting.store_like.empty()

    def test_apply_step_unions_successors(self):
        _iface, collecting, step = make_parts()
        fp = collecting.inject(inject(PROGRAMS["identity"]))
        once = collecting.apply_step(step, fp)
        twice = collecting.apply_step(step, once)
        assert once and twice
        assert once != fp

    def test_run_config_returns_frozenset(self):
        _iface, collecting, step = make_parts()
        [config] = list(collecting.inject(inject(PROGRAMS["identity"])))
        successors = collecting.run_config(step, config)
        assert isinstance(successors, frozenset)
        assert len(successors) == 1  # the first transition is deterministic

    def test_lattice_is_powerset(self):
        _iface, collecting, _step = make_parts()
        lat = collecting.lattice()
        assert lat.bottom() == frozenset()
        assert lat.join(frozenset([1]), frozenset([2])) == frozenset([1, 2])

    def test_gc_weaving_changes_stores_not_reachability(self):
        program = PROGRAMS["mj09"]
        _i1, plain, step1 = make_parts()
        _i2, with_gc, step2 = make_parts(collector=True)
        fp_plain = run_analysis_worklist(plain, step1, inject(program))
        fp_gc = run_analysis_worklist(with_gc, step2, inject(program))
        ctrls = lambda fp: {ps.ctrl for (ps, _g), _s in fp}
        assert ctrls(fp_gc) == ctrls(fp_plain)


class TestSharedCollecting:
    def make_shared(self):
        addressing = KCFA(1)
        store = BasicStore()
        interface = AbstractCPSInterface(addressing, store)
        collecting = SharedStoreCollecting(interface.monad, store, addressing.tau0())
        return interface, collecting, (lambda ps: mnext(interface, ps))

    def test_inject_shape(self):
        _iface, collecting, _step = self.make_shared()
        states, store = collecting.inject("s0")
        assert states == frozenset([("s0", ())])
        assert store == collecting.store_like.empty()

    def test_apply_step_keeps_single_store(self):
        _iface, collecting, step = self.make_shared()
        fp = collecting.inject(inject(PROGRAMS["mj09"]))
        for _ in range(3):
            fp = collecting.lattice().join(
                collecting.inject(inject(PROGRAMS["mj09"])),
                collecting.apply_step(step, fp),
            )
        states, store = fp
        assert len(states) >= 2
        assert store  # the global store accumulated bindings

    def test_kleene_against_run_analysis(self):
        _iface, collecting, step = self.make_shared()
        fp = run_analysis(collecting, step, inject(PROGRAMS["identity"]))
        states, _store = fp
        assert any(ps.is_final() for ps, _g in states)


class TestDriver:
    def test_worklist_requires_per_state(self):
        _iface, collecting, step = TestSharedCollecting().make_shared()
        with pytest.raises(TypeError):
            timed_analysis(collecting, step, inject(PROGRAMS["identity"]), worklist=True)

    def test_timed_analysis_records_time_and_label(self):
        _iface, collecting, step = make_parts()
        run = timed_analysis(
            collecting, step, inject(PROGRAMS["identity"]), label="smoke", worklist=True
        )
        assert isinstance(run, AnalysisRun)
        assert run.label == "smoke"
        assert run.seconds >= 0
        assert run.result

    def test_run_analysis_and_worklist_agree(self):
        _iface, collecting, step = make_parts(ZeroCFA())
        initial = inject(PROGRAMS["omega"])
        assert run_analysis(collecting, step, initial) == run_analysis_worklist(
            collecting, step, initial
        )
