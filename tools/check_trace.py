"""Validate a trace artifact written by ``--trace`` (CI trace-smoke).

Checks the structural invariants the tracer promises, on either output
format (Chrome ``trace_event`` JSON, or JSONL when the path ends in
``.jsonl``):

* the file parses -- ``json.loads`` on the whole document, or on every
  line for JSONL (the round-trip the viewer depends on);
* a Chrome document is ``{"traceEvents": [...]}`` and every event is an
  object carrying ``name``/``ph``/``ts``/``pid``/``tid``;
* complete spans (``ph: "X"``) have ``dur >= 0``, and within each
  ``tid`` they nest properly: sorted by start time, a later span either
  begins after the previous one ends or lies entirely inside it --
  partial overlap means a span leaked across a ``with`` boundary;
* timestamps are monotone per ``tid`` in emission order for instant
  events (the tracer appends under a lock, so a regression here means
  the clock or the lock broke).

Exit 0 with a one-line summary on success, exit 1 with the first
violation otherwise::

    PYTHONPATH=src python tools/check_trace.py trace.json
    PYTHONPATH=src python tools/check_trace.py run.jsonl

Stdlib only; the checker deliberately does not import ``repro.obs`` --
it validates the artifact bytes, not the objects that produced them.
"""

from __future__ import annotations

import argparse
import json
import sys


class TraceError(Exception):
    """A structural violation in a trace artifact."""


_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def load_events(path: str) -> list[dict]:
    """Parse the artifact and return its event list (format by suffix)."""
    with open(path) as handle:
        if path.endswith(".jsonl"):
            events = []
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError as error:
                    raise TraceError(f"line {number}: not valid JSON ({error})")
            return events
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise TraceError(f"not valid JSON ({error})")
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise TraceError('a Chrome trace must be {"traceEvents": [...]}')
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise TraceError("traceEvents is not a list")
    return events


def check_events(events: list[dict]) -> dict:
    """Raise :class:`TraceError` on the first violation; return counts."""
    spans_by_tid: dict = {}
    last_instant_ts: dict = {}
    counts = {"spans": 0, "instants": 0, "metadata": 0}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceError(f"event {index}: not an object")
        phase = event.get("ph")
        if phase == "M":
            counts["metadata"] += 1
            continue
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise TraceError(f"event {index} ({event.get('name')!r}): no {key!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise TraceError(f"event {index}: ts {event['ts']!r} is not a time")
        tid = event["tid"]
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise TraceError(
                    f"span {index} ({event['name']!r}): dur {duration!r} "
                    "is missing or negative"
                )
            spans_by_tid.setdefault(tid, []).append(
                (event["ts"], event["ts"] + duration, event["name"])
            )
            counts["spans"] += 1
        elif phase == "i":
            previous = last_instant_ts.get(tid)
            if previous is not None and event["ts"] < previous:
                raise TraceError(
                    f"instant {index} ({event['name']!r}): ts went backwards "
                    f"on tid {tid} ({event['ts']} < {previous})"
                )
            last_instant_ts[tid] = event["ts"]
            counts["instants"] += 1
        else:
            raise TraceError(f"event {index}: unknown phase {phase!r}")
    for tid, spans in spans_by_tid.items():
        _check_nesting(tid, spans)
    return counts


def _check_nesting(tid, spans: list[tuple]) -> None:
    """Spans on one thread must nest -- no partial overlap.

    Sorted by (start, -end) so an enclosing span precedes its children;
    a stack of open intervals then catches any span that straddles a
    boundary, which is exactly what a leaked ``with`` produces.
    """
    stack: list[tuple] = []
    for start, end, name in sorted(spans, key=lambda row: (row[0], -row[1])):
        while stack and start >= stack[-1][1]:
            stack.pop()
        if stack and end > stack[-1][1]:
            raise TraceError(
                f"span {name!r} on tid {tid} [{start}, {end}] partially "
                f"overlaps enclosing {stack[-1][2]!r} "
                f"[{stack[-1][0]}, {stack[-1][1]}]"
            )
        stack.append((start, end, name))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace artifact (.json Chrome trace or .jsonl)")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail if fewer than this many non-metadata events (default 1: "
        "an empty trace from a real run means the tracer was never installed)",
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.path)
        counts = check_events(events)
    except TraceError as error:
        print(f"{args.path}: INVALID: {error}", file=sys.stderr)
        return 1
    total = counts["spans"] + counts["instants"]
    if total < args.min_events:
        print(
            f"{args.path}: INVALID: only {total} event(s), "
            f"need >= {args.min_events}",
            file=sys.stderr,
        )
        return 1
    print(
        f"{args.path}: ok ({counts['spans']} spans, {counts['instants']} "
        f"instants, {counts['metadata']} metadata)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
