"""Hash-consing: cached structural hashes and a canonicalizing intern pool.

The fixed-point engines spend their lives hashing machine configurations
into ``seen``/``queued`` sets and dependency maps.  Configurations are
tuples of frozen dataclasses (syntax nodes, environments, contexts), and
a dataclass-generated ``__hash__`` rehashes the whole subtree on every
call -- an O(term) cost paid millions of times on values that never
change.  Two complementary remedies live here:

* :func:`hash_consed` -- a class decorator for frozen dataclasses that
  memoizes the structural hash on the instance (computed once, then an
  attribute read) and short-circuits ``__eq__`` on object identity.
  Nested decorated values make a parent's *first* hash O(children)
  instead of O(subtree), and every later hash O(1).

* :func:`intern` -- a global pool mapping each value to a canonical
  representative, in the tradition of Lisp symbol interning and
  hash-consed term representations.  The parsers intern every node they
  build, so structurally equal subterms are pointer-equal and the
  ``self is other`` fast path in ``__eq__`` fires throughout the
  analyses (k-CFA contexts, for instance, are tuples *of the call terms
  themselves*).

Both are semantics-free: hashing and equality remain structural, only
their cost changes, which the interned-vs-plain equivalence tests pin
down across all three languages.

## The fork/pickle hazard (and :func:`rehydrate`)

The pool is per-process state.  A term pickled in one process and
unpickled in another (a ``multiprocessing`` worker handing back an
analysis result, a fixpoint cache loading yesterday's run) arrives as a
*fresh object graph*: structurally equal to the locally parsed term --
``__getstate__`` drops the memoized hash, so hashing and ``==`` stay
correct under per-process hash randomization -- but **not pointer-equal
to the pool's canonical representative**.  Nothing breaks loudly.  What
breaks silently is the identity fast path: every ``__eq__`` between the
unpickled term and a locally interned one falls back to a full
structural descent, which on chain-shaped terms is the exact O(term)
(and deep-recursion) cost this module exists to avoid, paid once per
set/dict probe.  :func:`rehydrate` repairs this: it canonicalizes an
unpickled value graph bottom-up through :func:`intern`, so every
hash-consed node in it *is* the pool representative again.  The
regression tests (``tests/test_intern.py``, spawn-based cross-process
tests in ``tests/test_service_spawn.py``) pin both the hazard and the
repair.
"""

from __future__ import annotations

import dataclasses
from typing import Any, TypeVar

T = TypeVar("T")

#: Attribute under which a memoized hash is stashed on the instance.
_HASH_SLOT = "_hc_hash"


def hash_consed(cls: type) -> type:
    """Class decorator: memoize ``__hash__``, short-circuit ``__eq__`` on identity.

    Apply *above* ``@dataclass(frozen=True)`` so the dataclass-generated
    structural methods are already in place::

        @hash_consed
        @dataclass(frozen=True)
        class Node: ...

    The memo is stored through ``object.__setattr__`` (legal on frozen
    dataclasses) under a name no dataclass field uses, so structural
    equality and ``repr`` are unaffected.

    The hash is computed *eagerly at construction*.  Immutable values are
    built bottom-up -- children exist before their parent -- so eager
    hashing only ever recurses one level (the children's hashes are
    already memoized), where a first lazy hash of a deep term would
    recurse through the whole subtree and can blow the interpreter's
    recursion limit on chain-shaped programs.
    """
    structural_hash = cls.__hash__
    structural_eq = cls.__eq__
    structural_init = cls.__init__
    if structural_hash is None:  # pragma: no cover - decorator misuse
        raise TypeError(f"{cls.__name__} is unhashable; hash_consed needs frozen=True")

    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        structural_init(self, *args, **kwargs)
        object.__setattr__(self, _HASH_SLOT, structural_hash(self))

    def __hash__(self: Any) -> int:
        try:
            return object.__getattribute__(self, _HASH_SLOT)
        except AttributeError:  # unpickled pre-memo instance: re-memoize
            h = structural_hash(self)
            object.__setattr__(self, _HASH_SLOT, h)
            return h

    def __eq__(self: Any, other: Any) -> Any:
        if self is other:
            return True
        return structural_eq(self, other)

    def __getstate__(self: Any) -> dict:
        # Python randomizes string hashes per process, so a pickled memo
        # would be stale in the unpickling process; drop it and let the
        # lazy fallback in __hash__ re-memoize there.
        state = dict(self.__dict__)
        state.pop(_HASH_SLOT, None)
        return state

    cls.__init__ = __init__
    cls.__hash__ = __hash__
    cls.__eq__ = __eq__
    cls.__getstate__ = __getstate__
    cls.__hash_consed__ = True
    return cls


#: The global intern pool: value -> its canonical representative.
_POOL: dict = {}

#: Cumulative pool statistics (survive :func:`clear_intern_pool`).
_HITS = 0
_MISSES = 0


def intern(value: T) -> T:
    """Return the canonical representative of ``value``.

    The first structurally distinct value wins and is handed back for
    every later equal value, so ``intern(x) is intern(y)`` exactly when
    ``x == y``.  Values of different types never compare equal, so one
    pool serves every interned class.

    Pool lifecycle: the pool holds **strong references for the life of
    the process** -- an unbounded global dict, which is the right trade
    for batch analyses over a fixed corpus (canonical terms are live for
    the whole run anyway), but not for a long-running service.  A host
    that parses unboundedly many distinct programs should call
    :func:`clear_intern_pool` between independent workloads and can
    watch growth through :func:`intern_stats`.  Clearing is always safe:
    it only forgets which representative is canonical, so values interned
    *after* a clear stop being pointer-equal to values interned before
    it -- but equality stays structural (``@hash_consed`` only
    short-circuits ``__eq__`` on identity, it never requires it), so
    mixed pre-/post-clear values still compare and hash correctly, just
    without the identity fast path across the boundary.
    """
    global _HITS, _MISSES
    try:
        canonical = _POOL[value]
    except KeyError:
        # genuinely new: install it (a miss is exactly one pool growth;
        # re-interning the canonical object itself must count as a hit,
        # which a setdefault identity test would get wrong)
        _POOL[value] = value
        _MISSES += 1
        return value
    _HITS += 1
    return canonical


def intern_pool_size() -> int:
    """How many canonical values the pool currently holds (for tests/stats)."""
    return len(_POOL)


def intern_stats() -> dict:
    """Pool observability for long-running hosts.

    Returns ``{"size", "hits", "misses"}``: the current number of
    canonical values, and the cumulative number of :func:`intern` calls
    that found an existing representative (``hits``) versus installed a
    new one (``misses``, which is also the pool's total historical
    growth).  Hits and misses accumulate across
    :func:`clear_intern_pool` calls, so a service can track interning
    traffic over its whole life while bounding the pool itself.
    """
    return {"size": len(_POOL), "hits": _HITS, "misses": _MISSES}


def register_metrics(registry: Any) -> None:
    """Expose the pool to a metrics registry as pull gauges.

    Callback gauges, not pushed counters: :func:`intern` is the hottest
    call in the whole system (every parsed node goes through it), so the
    pool must never pay a per-call metrics cost.  The registry reads the
    module counters at snapshot/scrape time instead.
    """
    registry.gauge("intern_pool_size", callback=intern_pool_size)
    registry.gauge("intern_pool_hits", callback=lambda: _HITS)
    registry.gauge("intern_pool_misses", callback=lambda: _MISSES)


def clear_intern_pool() -> None:
    """Drop every canonical value (bounding pool growth in long-lived hosts).

    Safe at any point between workloads: existing values keep their
    memoized hashes and structural equality; only cross-boundary
    pointer-equality (the ``__eq__`` identity fast path between a value
    interned before the clear and one interned after) is lost.
    """
    _POOL.clear()


def maybe_clear_intern_pool(limit: int | None) -> bool:
    """Clear the pool iff it holds more than ``limit`` canonical values.

    The lifecycle hook for resident hosts (the analysis server): the pool
    grows monotonically with every distinct program a long-lived process
    parses, so a daemon serving unbounded traffic periodically bounds it
    here instead of leaking.  Returns whether a clear happened, so the
    caller can invalidate anything that assumed canonical identity -- the
    server drops its hot fixpoint tier in the same breath (structural
    equality would still hold across the boundary, but the identity fast
    path, the whole point of the hot tier, would not).  ``limit`` of
    ``None`` or ``0`` means unbounded: never clear.
    """
    if not limit or len(_POOL) <= limit:
        return False
    _POOL.clear()
    return True


# ---------------------------------------------------------------------------
# Rehydration: canonicalizing unpickled value graphs
# ---------------------------------------------------------------------------

def decompose(value: Any) -> tuple[str | None, list]:
    """Split a value into a structural kind tag and its children.

    Returns ``(None, [])`` for atoms (strings, numbers, enums, anything a
    structural walk should pass through untouched); otherwise one of
    ``"dataclass"`` (children = field values, in field order),
    ``"tuple"``, ``"frozenset"``, ``"list"``, ``"dict"`` / ``"pmap"``
    (children = flattened key/value pairs).  ``PMap`` is recognized by
    duck type (``items_sorted``/``to_dict``) to avoid an import cycle
    with :mod:`repro.util.pcollections`.

    This is the **one** decomposition every structural walk in the code
    base shares -- :func:`rehydrate` here, the cache's
    ``program_digest``, and the warm-start layer's subterm/edit-distance
    checks -- so a new container shape in a syntax node cannot silently
    desynchronize content addressing, rehydration, and donor gating.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return "dataclass", [
            getattr(value, f.name) for f in dataclasses.fields(value)
        ]
    kind = type(value)
    if kind is tuple:
        return "tuple", list(value)
    if kind is frozenset or isinstance(value, frozenset):
        return "frozenset", list(value)
    if kind is list:
        return "list", list(value)
    if kind is dict:
        return "dict", [x for kv in value.items() for x in kv]
    if hasattr(value, "items_sorted") and hasattr(value, "to_dict"):  # PMap
        return "pmap", [x for kv in value.to_dict().items() for x in kv]
    return None, []


def _rebuild(value: Any, kind: str, children: list, originals: list) -> Any:
    """Reassemble ``value`` from canonicalized ``children``.

    When no child changed, the original object is kept (no copy); either
    way a hash-consed dataclass is passed through :func:`intern` so the
    result is the pool's canonical representative.
    """
    unchanged = all(a is b for a, b in zip(children, originals))
    if kind == "dataclass":
        built = value if unchanged else type(value)(*children)
        if getattr(type(value), "__hash_consed__", False):
            return intern(built)
        return built
    if unchanged:
        return value
    if kind == "tuple":
        return tuple(children)
    if kind == "frozenset":
        return frozenset(children)
    if kind == "list":
        return children
    if kind == "dict":
        return dict(zip(children[0::2], children[1::2]))
    # pmap: rebuild through the class of the original, keeping PMap out
    # of this module's imports
    return type(value)(dict(zip(children[0::2], children[1::2])))


def rehydrate(value: T) -> T:
    """Canonicalize an unpickled value graph through the intern pool.

    Rebuilds ``value`` bottom-up -- tuples, frozensets, lists, dicts,
    ``PMap``\\ s and (frozen) dataclasses -- interning every
    :func:`hash_consed` node, so the result's terms are pointer-equal to
    the pool's representatives and the ``__eq__`` identity fast path
    fires against locally parsed programs again (see the module
    docstring's fork/pickle hazard).  Structure the walk does not
    recognize (plain objects, enums, atoms) passes through untouched.

    The traversal is iterative with an explicit stack: unpickled fixed
    points contain chain-shaped terms whose depth would otherwise race
    the interpreter's recursion limit.  Shared sub-graphs are memoized by
    object identity, so rehydrating a fixed point is O(distinct nodes).
    """
    memo: dict[int, Any] = {}
    stack: list[tuple[Any, bool]] = [(value, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in memo:
            continue
        kind, children = decompose(node)
        if kind is None:
            memo[key] = node
            continue
        if expanded:
            memo[key] = _rebuild(
                node, kind, [memo[id(child)] for child in children], children
            )
        else:
            stack.append((node, True))
            for child in children:
                if id(child) not in memo:
                    stack.append((child, False))
    return memo[id(value)]
