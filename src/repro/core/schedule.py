"""Worklist scheduling policies for the global-store engines.

Every engine since the first worklist drained a plain FIFO deque: pop
left, evaluate, append newly-discovered successors and retriggered
readers on the right.  That order is *correct* for any drain order --
chaotic iteration of a monotone functional converges to the least fixed
point regardless -- but it is not *cheap*: on chain- and loop-shaped
programs a store bump deep in the chain re-enqueues readers in
dependency-backwards order, so the same configuration is re-evaluated
once per growth wave instead of once per stable input.

This module factors the drain order out of the engines as two
interchangeable worklist objects behind one small protocol:

* :class:`FifoWorklist` -- the historical order, unchanged: FIFO with an
  in-worklist membership set so a configuration is never queued twice
  (the engines always had the set; here the *suppressed* enqueues become
  a counted stat, ``dedup_hits``).
* :class:`PriorityWorklist` -- Bourdoncle-style weak-topological
  iteration order approximated online, with no pre-pass over the
  transition graph.  Each configuration gets a *rank*: seeds rank 0,
  successors discovered during stepping ``rank(parent) + 1``, and a
  retriggered reader keeps the rank it was first discovered at.  The
  queue drains in ascending ``(wave, rank, insertion sequence)`` order:
  fresh discoveries join the current wave at their rank, while a
  retriggered reader re-enters in the *next* wave -- behind everything
  currently queued, exactly where FIFO would have put it -- and the
  wave then drains shallowest-rank-first.  Store growth therefore
  flows *forward* along the dependency depth within each wave, and a
  stale reader re-runs only once per wave, after the whole join of
  that wave's downstream growth has landed, instead of once per bump.

The wave term in the key is what makes the rank order *pay*.  A pure
``(rank, sequence)`` heap is eager: a retriggered shallow reader
preempts deeper pending work and re-runs before its inputs stabilize,
which measured strictly worse than FIFO corpus-wide (FIFO's
append-at-tail is an implicit batcher).  Deferring retriggers by one
wave keeps FIFO's batching and adds the topological in-wave order --
on the dependency-blind engine this collapses the chain workloads from
quadratic to linear re-evaluation (50x fewer evaluations on
``id_chain(200)``), and on the dependency-tracked engine it is neutral
to modestly better (the dependency map already suppresses most wasted
work).

Both policies share the dedup/rank bookkeeping so their stats are
comparable cell-for-cell in benchmark reports:

``dedup_hits``
    retrigger requests suppressed because the configuration was already
    in the worklist (it will observe the new store state anyway when it
    is popped);
``max_rank``
    the deepest dependency rank assigned -- a cheap proxy for the
    longest discovery chain in the workload.

Determinism: ranks are assigned once, at first discovery, and never
updated -- so the priority order is a *static* key plus an insertion
sequence number for ties.  Two consequences the test suite pins down:

* no starvation: a queued entry's key is fixed at insertion, the wave
  counter only ever advances past it, and only finitely many entries
  can carry a smaller key, so everything queued is eventually popped
  (termination of the fake-domain property tests is exactly this
  argument);
* determinism: given the same discovery/retrigger call sequence the
  drain order is fully determined; no heap tie is ever broken by
  configuration identity (the sequence number is unique), so
  configurations never need to be comparable.

Ranks are scheduling state, not analysis state: they are derived from
discovery order, differ between ``fifo`` and ``priority`` runs of the
same workload, and must never leak into
:class:`~repro.core.fixpoint.EvalRecord` or the fixpoint cache --
cache entries are shared across schedules precisely because the fixed
point is schedule-independent (``AnalysisConfig.cache_key()`` excludes
``schedule`` for the same reason).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Hashable, Iterable

#: The interchangeable worklist drain orders (the ``schedule=`` axis of
#: :class:`~repro.config.AnalysisConfig`).
SCHEDULES = ("fifo", "priority")


class FifoWorklist:
    """FIFO drain order with enqueue dedup and rank bookkeeping.

    The rank accounting mirrors :class:`PriorityWorklist` exactly (same
    assignment rule, same ``max_rank`` stat) but never influences the
    drain order -- so a ``fifo`` run reports the same structural stats a
    ``priority`` run does, and benchmark cells compare like for like.
    """

    __slots__ = ("_queue", "_queued", "ranks", "dedup_hits", "max_rank", "_seq", "_wave")

    def __init__(self, seeds: Iterable[Hashable] = ()) -> None:
        self._queue = self._empty_queue()
        self._queued: set = set()
        #: rank at first discovery; never updated afterwards
        self.ranks: dict = {}
        #: retrigger requests suppressed because the config was queued
        self.dedup_hits = 0
        #: deepest rank assigned (0 when only seeds were ever queued)
        self.max_rank = 0
        self._seq = 0
        self._wave = 0
        for config in seeds:
            self.discovered(config)

    def _empty_queue(self):
        return deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def discovered(self, config: Hashable, parent: Hashable | None = None) -> None:
        """Queue a configuration seen for the first time.

        Seeds (``parent is None``) get rank 0; successors get
        ``rank(parent) + 1``.  Callers guard with their own ``seen`` set,
        so this runs exactly once per configuration -- which is what
        makes the rank assignment static.
        """
        rank = 0 if parent is None else self.ranks.get(parent, 0) + 1
        self.ranks[config] = rank
        if rank > self.max_rank:
            self.max_rank = rank
        self._push(config, rank, defer=False)

    def retrigger(self, config: Hashable) -> bool:
        """Re-queue an already-seen configuration; ``False`` if suppressed.

        A configuration already in the worklist will observe the grown
        store when it is popped, so queueing it again would only buy a
        wasted re-evaluation -- the suppression is counted in
        ``dedup_hits``.  The configuration keeps its original rank and
        (under ``priority``) re-enters in the next wave.
        """
        if config in self._queued:
            self.dedup_hits += 1
            return False
        self._push(config, self.ranks.get(config, 0), defer=True)
        return True

    def pop(self) -> Hashable:
        config = self._queue.popleft()
        self._queued.discard(config)
        return config

    def _push(self, config: Hashable, rank: int, defer: bool) -> None:
        self._queued.add(config)
        self._queue.append(config)


class PriorityWorklist(FifoWorklist):
    """Drain in ascending ``(wave, rank, insertion sequence)`` order.

    Fresh discoveries join the wave currently draining; retriggered
    readers are deferred to the next wave (see the module docstring for
    why the deferral, not the rank alone, is what beats FIFO).  The
    wave counter advances lazily: popping an entry from a later wave
    means the current wave has fully drained.

    Backed by a binary heap; the membership set guarantees each
    configuration appears at most once, so there are no stale heap
    entries to lazily skip and ``len(heap) == len(queued)`` always.
    """

    __slots__ = ()

    def _empty_queue(self):
        return []

    def pop(self) -> Hashable:
        wave, _rank, _seq, config = heapq.heappop(self._queue)
        if wave > self._wave:
            self._wave = wave
        self._queued.discard(config)
        return config

    def _push(self, config: Hashable, rank: int, defer: bool) -> None:
        self._queued.add(config)
        self._seq += 1
        # the unique sequence number breaks every tie, so heap ordering
        # never falls through to comparing configurations
        heapq.heappush(
            self._queue, (self._wave + (1 if defer else 0), rank, self._seq, config)
        )


def make_worklist(schedule: str, seeds: Iterable[Hashable] = ()) -> FifoWorklist:
    """Build the worklist for a schedule name (see :data:`SCHEDULES`)."""
    if schedule == "fifo":
        return FifoWorklist(seeds)
    if schedule == "priority":
        return PriorityWorklist(seeds)
    raise ValueError(f"unknown schedule {schedule!r}; expected one of {SCHEDULES}")


def deal_slices(batch: list, shards: int, schedule: str, ranks: dict) -> list:
    """Deal one round's frontier into per-shard slices.

    Under ``fifo`` this is the historical round-robin deal
    (``batch[i::shards]``), which interleaves arrival order across
    shards.  Under ``priority`` the batch is first sorted by
    ``(rank, arrival position)`` -- the sort is stable, so equal ranks
    keep arrival order -- and then cut into *contiguous* chunks, so each
    shard receives depth-contiguous work and growth produced by a shard
    tends to feed configurations in the same or the next chunk rather
    than ricocheting across the barrier.

    Empty slices are dropped (rounds smaller than the shard count).
    """
    if schedule == "priority":
        ordered = sorted(range(len(batch)), key=lambda i: (ranks.get(batch[i], 0), i))
        batch = [batch[i] for i in ordered]
        size = -(-len(batch) // shards)  # ceil division
        slices = [batch[i : i + size] for i in range(0, len(batch), size)]
    else:
        slices = [batch[i::shards] for i in range(shards)]
    return [chunk for chunk in slices if chunk]
