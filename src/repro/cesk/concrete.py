"""The concrete CESK machine: Identity monad over a mutable heap.

The direct-style analogue of the paper's section 4: the semantic
interface is implemented against Python's own heap with fresh integer
addresses; ``evaluate`` runs the machine to its final value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.monads import Identity
from repro.cesk.machine import HALT_ADDRESS, Clo, HaltF, PState, inject
from repro.cesk.semantics import CESKInterface, CESKStuck, is_final, mnext_cesk
from repro.lam.syntax import Expr
from repro.util.pcollections import PMap


@dataclass(frozen=True)
class HeapAddr:
    """A concrete address: a fresh cell index."""

    index: int

    def __repr__(self) -> str:
        return f"#{self.index}"


class ConcreteCESKInterface(CESKInterface):
    """The CESK interface over the real heap (deterministic)."""

    def __init__(self) -> None:
        super().__init__(Identity())
        self.heap: dict = {HALT_ADDRESS: HaltF()}
        self._next = 0

    def _fresh(self) -> HeapAddr:
        addr = HeapAddr(self._next)
        self._next += 1
        return addr

    def fetch_values(self, env: PMap, var: str) -> Any:
        if var not in env:
            raise CESKStuck(f"unbound variable {var!r}")
        addr = env[var]
        if addr not in self.heap:
            raise CESKStuck(f"dangling address {addr!r} for {var!r}")
        return self.heap[addr]

    def fetch_konts(self, ka: Hashable) -> Any:
        if ka not in self.heap:
            raise CESKStuck(f"dangling continuation address {ka!r}")
        return self.heap[ka]

    def bind_addr(self, addr: Hashable, value: Any) -> Any:
        self.heap[addr] = value
        return None

    def alloc(self, var: str) -> HeapAddr:
        return self._fresh()

    def alloc_kont(self, site: Expr) -> HeapAddr:
        return self._fresh()

    def tick(self, proc: Clo, site_state: Any) -> Any:
        return None  # time advances without our help


class CESKTimeout(Exception):
    """The concrete machine exceeded its step budget (possible divergence)."""


def evaluate(expr: Expr, max_steps: int = 100_000) -> Clo:
    """Run a closed program to its final value."""
    interface = ConcreteCESKInterface()
    state = inject(expr)
    for _ in range(max_steps):
        if is_final(state):
            return state.ctrl
        state = mnext_cesk(interface, state)
    raise CESKTimeout(f"no final state within {max_steps} steps")


def evaluate_trace(expr: Expr, max_steps: int = 100_000) -> list[PState]:
    """Run to completion, recording every machine state."""
    interface = ConcreteCESKInterface()
    state = inject(expr)
    trace = [state]
    for _ in range(max_steps):
        if is_final(state):
            return trace
        state = mnext_cesk(interface, state)
        trace.append(state)
    raise CESKTimeout(f"no final state within {max_steps} steps")


def evaluate_with_heap(expr: Expr, max_steps: int = 100_000) -> tuple[Clo, dict]:
    """Run to completion and also return the final concrete heap."""
    interface = ConcreteCESKInterface()
    state = inject(expr)
    for _ in range(max_steps):
        if is_final(state):
            return state.ctrl, dict(interface.heap)
        state = mnext_cesk(interface, state)
    raise CESKTimeout(f"no final state within {max_steps} steps")
