"""The measurement/reporting layer behind the benchmark harness."""

from repro.analysis.report import (
    AnalysisMetrics,
    fmt_table,
    measure_cps,
    metrics_of,
    precision_summary,
    timed,
)
from repro.cps.analysis import analyse_zerocfa
from repro.corpus.cps_programs import PROGRAMS


class TestPrecisionSummary:
    def test_empty(self):
        assert precision_summary({}) == {
            "vars": 0,
            "total_flows": 0,
            "mean_flow": 0.0,
            "max_flow": 0,
        }

    def test_counts(self):
        flows = {"a": frozenset([1, 2]), "b": frozenset([3])}
        summary = precision_summary(flows)
        assert summary["vars"] == 2
        assert summary["total_flows"] == 3
        assert summary["mean_flow"] == 1.5
        assert summary["max_flow"] == 2

    def test_on_real_result(self):
        result = analyse_zerocfa(PROGRAMS["mj09"])
        summary = precision_summary(result.flows_to())
        assert summary["vars"] > 0
        assert summary["max_flow"] == 2


class TestMetrics:
    def test_metrics_of_reduces_result(self):
        result = analyse_zerocfa(PROGRAMS["identity"])
        m = metrics_of(result, "smoke", 0.5, note="hello")
        assert m.label == "smoke"
        assert m.states == result.num_states()
        assert m.extra["note"] == "hello"

    def test_measure_cps_times(self):
        m = measure_cps(lambda: analyse_zerocfa(PROGRAMS["identity"]), "id")
        assert m.seconds >= 0
        assert m.states > 0

    def test_row_includes_extras(self):
        m = AnalysisMetrics("x", 0.1, 1, 2, 3, 4, {"k": "v"})
        row = m.row(["k", "missing"])
        assert row[0] == "x"
        assert row[-2] == "v"
        assert row[-1] == ""

    def test_timed(self):
        value, seconds = timed(lambda: sum(range(100)))
        assert value == 4950
        assert seconds >= 0


class TestFmtTable:
    def test_alignment(self):
        out = fmt_table(["col", "c2"], [["a", "bbbb"], ["cc", "d"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_headers_wider_than_cells(self):
        out = fmt_table(["a-very-long-header"], [["x"]])
        assert "a-very-long-header" in out

    def test_non_string_cells(self):
        out = fmt_table(["n"], [[42]])
        assert "42" in out
