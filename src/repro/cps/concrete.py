"""Recovering a concrete interpreter (paper section 4).

The paper instantiates ``CPSInterface`` at the ``IO`` monad, using the
real heap as the store and ``IORef``-backed addresses.  Python has no
effect segregation to respect, so the closest faithful analogue is the
:class:`~repro.core.monads.Identity` monad over a *mutable* heap owned
by the interface object: ``fun``/``arg`` read it, ``|->`` writes it,
``alloc`` bumps a counter to mint a fresh cell, and ``tick`` is a no-op
("in the real world, time advances without our help").

``interpret`` is the paper's driver loop: iterate ``mnext`` until an
``Exit`` state.  ``interpret_trace`` additionally records every machine
state passed through, which the soundness tests use to check that the
concrete trace is covered by every abstract analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.monads import Identity
from repro.cps.semantics import (
    Clo,
    CPSInterface,
    CPSStuck,
    PState,
    free_vars_cache,
    inject,
    mnext,
)
from repro.cps.syntax import AExp, CExp, Lam, Ref, Var
from repro.util.pcollections import PMap


@dataclass(frozen=True)
class HeapAddr:
    """A concrete address: a fresh cell index (the paper's ``IOAddr``)."""

    index: int

    def __repr__(self) -> str:
        return f"#{self.index}"


class ConcreteCPSInterface(CPSInterface):
    """``instance CPSInterface IO IOAddr``, with Python's heap as the store."""

    def __init__(self) -> None:
        super().__init__(Identity())
        self.heap: dict[HeapAddr, Clo] = {}
        self._next = 0

    def fun(self, env: PMap, aexp: AExp) -> Any:
        return self._atomic(env, aexp)

    def arg(self, env: PMap, aexp: AExp) -> Any:
        return self._atomic(env, aexp)

    def _atomic(self, env: PMap, aexp: AExp) -> Clo:
        if isinstance(aexp, Lam):
            captured = env.restrict(lambda v: v in free_vars_cache(aexp))
            return Clo(aexp, captured)
        if isinstance(aexp, Ref):
            if aexp.var not in env:
                raise CPSStuck(f"unbound variable {aexp.var!r}")
            addr = env[aexp.var]
            if addr not in self.heap:
                raise CPSStuck(f"dangling address {addr!r} for {aexp.var!r}")
            return self.heap[addr]
        raise CPSStuck(f"not an atomic expression: {aexp!r}")

    def bind_addr(self, addr: HeapAddr, value: Clo) -> Any:
        self.heap[addr] = value
        return None  # Identity-monad unit of ()

    def alloc(self, var: Var) -> HeapAddr:
        addr = HeapAddr(self._next)
        self._next += 1
        return addr

    def tick(self, proc: Clo, pstate: PState) -> Any:
        return None  # time advances without our help


def interpret(program: CExp, max_steps: int = 100_000) -> PState:
    """Run the monadic machine to its ``Exit`` state (paper's ``interpret``).

    Raises :class:`CPSStuck` on runtime errors and
    :class:`InterpreterTimeout` if the program does not finish within
    ``max_steps`` transitions (CPS programs may legitimately diverge).
    """
    interface = ConcreteCPSInterface()
    state = inject(program)
    for _ in range(max_steps):
        if state.is_final():
            return state
        state = mnext(interface, state)
    raise InterpreterTimeout(f"no Exit state within {max_steps} steps")


def interpret_trace(program: CExp, max_steps: int = 100_000) -> list[PState]:
    """Like :func:`interpret`, returning every state the machine visits."""
    interface = ConcreteCPSInterface()
    state = inject(program)
    trace = [state]
    for _ in range(max_steps):
        if state.is_final():
            return trace
        state = mnext(interface, state)
        trace.append(state)
    raise InterpreterTimeout(f"no Exit state within {max_steps} steps")


def interpret_with_heap(program: CExp, max_steps: int = 100_000) -> tuple[PState, dict]:
    """Run to completion and also return the final concrete heap."""
    interface = ConcreteCPSInterface()
    state = inject(program)
    for _ in range(max_steps):
        if state.is_final():
            return state, dict(interface.heap)
        state = mnext(interface, state)
    raise InterpreterTimeout(f"no Exit state within {max_steps} steps")


class InterpreterTimeout(Exception):
    """The concrete machine exceeded its step budget (possible divergence)."""
