"""Unit and property tests for the persistent collections substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.pcollections import PMap, pmap

keys = st.text(min_size=1, max_size=3)
values = st.integers(-5, 5)
entry_dicts = st.dictionaries(keys, values, max_size=6)


class TestPMapBasics:
    def test_empty(self):
        m = pmap()
        assert len(m) == 0
        assert "x" not in m
        assert list(m) == []

    def test_from_dict(self):
        m = pmap({"a": 1, "b": 2})
        assert m["a"] == 1
        assert m["b"] == 2
        assert len(m) == 2

    def test_from_pairs(self):
        m = pmap([("a", 1), ("b", 2)])
        assert m["a"] == 1 and m["b"] == 2

    def test_set_returns_new_map(self):
        m1 = pmap({"a": 1})
        m2 = m1.set("b", 2)
        assert "b" not in m1
        assert m2["b"] == 2
        assert m2["a"] == 1

    def test_set_overwrites(self):
        m = pmap({"a": 1}).set("a", 9)
        assert m["a"] == 9

    def test_remove(self):
        m = pmap({"a": 1, "b": 2}).remove("a")
        assert "a" not in m
        assert m["b"] == 2

    def test_remove_missing_is_noop(self):
        m = pmap({"a": 1})
        assert m.remove("zzz") is m

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            pmap()["missing"]

    def test_get_default(self):
        assert pmap().get("x", 42) == 42
        assert pmap({"x": 1}).get("x", 42) == 1


class TestPMapValueSemantics:
    def test_structural_equality(self):
        m1 = pmap({"a": 1}).set("b", 2)
        m2 = pmap({"b": 2}).set("a", 1)
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_equality_with_plain_mapping(self):
        assert pmap({"a": 1}) == {"a": 1}

    def test_inequality(self):
        assert pmap({"a": 1}) != pmap({"a": 2})
        assert pmap({"a": 1}) != pmap({})

    def test_usable_in_sets(self):
        s = {pmap({"a": 1}), pmap({"a": 1}), pmap({"b": 2})}
        assert len(s) == 2


class TestPMapUpdates:
    def test_update(self):
        m = pmap({"a": 1}).update({"b": 2, "a": 3})
        assert m == pmap({"a": 3, "b": 2})

    def test_update_with_combiner(self):
        m = pmap({"a": frozenset([1])}).update_with(
            lambda old, new: old | new, {"a": frozenset([2]), "b": frozenset([3])}
        )
        assert m["a"] == frozenset([1, 2])
        assert m["b"] == frozenset([3])

    def test_restrict(self):
        m = pmap({"a": 1, "b": 2, "c": 3}).restrict(lambda k: k != "b")
        assert m == pmap({"a": 1, "c": 3})

    def test_map_values(self):
        m = pmap({"a": 1, "b": 2}).map_values(lambda v: v * 10)
        assert m == pmap({"a": 10, "b": 20})

    def test_items_sorted_deterministic(self):
        m = pmap({"b": 2, "a": 1})
        assert m.items_sorted() == [("a", 1), ("b", 2)]

    def test_to_dict_is_copy(self):
        m = pmap({"a": 1})
        d = m.to_dict()
        d["a"] = 99
        assert m["a"] == 1


class TestPMapProperties:
    @given(entry_dicts)
    def test_roundtrip_through_dict(self, entries):
        assert pmap(entries).to_dict() == entries

    @given(entry_dicts, keys, values)
    def test_set_then_get(self, entries, k, v):
        assert pmap(entries).set(k, v)[k] == v

    @given(entry_dicts, keys)
    def test_remove_then_absent(self, entries, k):
        assert k not in pmap(entries).set(k, 0).remove(k)

    @given(entry_dicts, entry_dicts)
    def test_update_agrees_with_dict_union(self, d1, d2):
        merged = dict(d1)
        merged.update(d2)
        assert pmap(d1).update(d2) == pmap(merged)

    @given(entry_dicts)
    def test_hash_consistent_with_eq(self, entries):
        m1 = pmap(entries)
        m2 = pmap(list(entries.items()))
        assert m1 == m2 and hash(m1) == hash(m2)


class TestPMapNoOpFastPaths:
    """``set``/``update``/``remove`` return ``self`` when nothing changes.

    The fixed-point engines use object identity as a did-anything-change
    test, so a no-op "mutator" must not allocate a structurally equal
    copy.  ``set`` gained the fast path first; ``update`` and ``remove``
    are pinned here alongside it.
    """

    def test_set_equal_value_returns_self(self):
        m = pmap({"a": 1})
        assert m.set("a", 1) is m

    def test_update_all_equal_returns_self(self):
        m = pmap({"a": 1, "b": 2})
        assert m.update({"a": 1, "b": 2}) is m

    def test_update_empty_entries_returns_self(self):
        m = pmap({"a": 1})
        assert m.update({}) is m
        assert m.update([]) is m

    def test_update_from_pairs_all_equal_returns_self(self):
        m = pmap({"a": 1, "b": 2})
        assert m.update([("b", 2), ("a", 1)]) is m

    def test_update_copies_when_any_entry_changes(self):
        m = pmap({"a": 1, "b": 2})
        m2 = m.update({"a": 1, "b": 3})
        assert m2 is not m
        assert m2 == pmap({"a": 1, "b": 3})
        assert m == pmap({"a": 1, "b": 2})  # receiver untouched

    def test_update_binds_new_keys(self):
        m = pmap({"a": 1})
        m2 = m.update({"a": 1, "c": 9})
        assert m2 is not m
        assert m2 == pmap({"a": 1, "c": 9})

    def test_update_later_entries_win_even_after_equal_prefix(self):
        # dict.update semantics: rightmost binding wins, including when
        # an earlier pair for the same key was a no-op
        m = pmap({"a": 1})
        m2 = m.update([("a", 1), ("a", 5)])
        assert m2 == pmap({"a": 5})

    def test_remove_missing_key_returns_self(self):
        m = pmap({"a": 1})
        assert m.remove("zzz") is m

    def test_remove_present_key_copies(self):
        m = pmap({"a": 1, "b": 2})
        m2 = m.remove("a")
        assert m2 is not m
        assert m2 == pmap({"b": 2})
        assert m == pmap({"a": 1, "b": 2})

    def test_noop_update_preserves_cached_hash(self):
        m = pmap({"a": 1})
        h = hash(m)
        assert hash(m.update({"a": 1})) == h
        assert m.update({"a": 1})._hash is not None


class TestPicklingDropsTheHashMemo:
    """A pickled PMap must never carry its cached hash across processes.

    Python randomizes string hashes per process, so a memoized hash
    travelling inside a pickle would silently put equal maps in different
    dict buckets in the unpickling process.  ``__getstate__`` pickles the
    entries only; the cross-process half of this contract runs under
    spawn in ``tests/test_service_spawn.py``.
    """

    def test_state_excludes_the_memo(self):
        import pickle

        original = pmap({"x": 1, "y": 2})
        hash(original)  # memoize
        assert original.__getstate__() == {"x": 1, "y": 2}
        loaded = pickle.loads(pickle.dumps(original))
        assert loaded._hash is None

    def test_round_trip_preserves_value_semantics(self):
        import pickle

        original = pmap({"x": 1, ("nested", 2): pmap({"inner": 3})})
        hash(original)
        loaded = pickle.loads(pickle.dumps(original))
        assert loaded == original
        assert hash(loaded) == hash(original)
        assert {loaded: "hit"}[original] == "hit"
