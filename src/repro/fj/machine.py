"""CESK-style machine structures for Featherweight Java.

Objects are store-allocated: an object value names its class and holds
one address per field (``fields(C)`` order), so aliasing, counting and
garbage collection all go through the one store, exactly as for the
lambda calculi.  Continuation frames are storable values at
continuation addresses (the AAM construction again).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Any, Hashable

from repro.fj.syntax import Expr, free_vars
from repro.util.pcollections import PMap, pmap

_FREE_VARS_CACHE: dict = {}


def free_vars_cache(expr: Expr) -> frozenset:
    try:
        return _FREE_VARS_CACHE[expr]
    except KeyError:
        result = free_vars(expr)
        _FREE_VARS_CACHE[expr] = result
        return result


@hash_consed
@dataclass(frozen=True)
class ObjV:
    """An object value: class name plus field addresses (``fields(C)`` order)."""

    cls: str
    field_addrs: tuple[Hashable, ...]

    def __repr__(self) -> str:
        return f"{self.cls}@{self.field_addrs!r}"


class Frame:
    """A continuation frame."""

    __slots__ = ()


@hash_consed
@dataclass(frozen=True)
class HaltF(Frame):
    def __repr__(self) -> str:
        return "<halt>"


@hash_consed
@dataclass(frozen=True)
class FieldF(Frame):
    """``[.].f``: awaiting the receiver of a field access."""

    fld: str
    parent: Hashable


@hash_consed
@dataclass(frozen=True)
class InvokeRcvF(Frame):
    """``[.].m(args)``: awaiting the receiver of a method call."""

    site: Expr
    method: str
    args: tuple[Expr, ...]
    env: PMap
    parent: Hashable


@hash_consed
@dataclass(frozen=True)
class InvokeArgF(Frame):
    """``rcv.m(v..., [.], e...)``: awaiting the next argument."""

    site: Expr
    method: str
    receiver: ObjV
    remaining: tuple[Expr, ...]
    done: tuple[Any, ...]
    env: PMap
    parent: Hashable


@hash_consed
@dataclass(frozen=True)
class NewArgF(Frame):
    """``new C(v..., [.], e...)``: awaiting the next constructor argument."""

    site: Expr
    cls: str
    remaining: tuple[Expr, ...]
    done: tuple[Any, ...]
    env: PMap
    parent: Hashable


@hash_consed
@dataclass(frozen=True)
class CastF(Frame):
    """``(C) [.]``: awaiting the value being cast."""

    cls: str
    parent: Hashable


@hash_consed
@dataclass(frozen=True)
class KontTag:
    """Pseudo-variable for continuation allocation (shared Addressable)."""

    site: Expr

    def __repr__(self) -> str:
        return f"kont[{self.site!r}]"


@hash_consed
@dataclass(frozen=True)
class FieldVar:
    """Pseudo-variable for field-cell allocation: ``new C`` allocates one
    cell per field under ``FieldVar(C, f)``, so field polyvariance follows
    the same ``Addressable`` policy as parameter bindings."""

    cls: str
    fld: str

    def __repr__(self) -> str:
        return f"{self.cls}.{self.fld}"


@hash_consed
@dataclass(frozen=True)
class PState:
    """A partial FJ machine state: control, environment, kont address."""

    ctrl: Any  # Expr (eval mode) or ObjV (return mode)
    env: PMap
    ka: Hashable

    def is_eval(self) -> bool:
        return isinstance(self.ctrl, Expr)

    def is_return(self) -> bool:
        return isinstance(self.ctrl, ObjV)

    def context_key(self) -> Hashable:
        if isinstance(self.ctrl, Expr):
            return self.ctrl
        return self.ctrl.cls

    def __repr__(self) -> str:
        mode = "ev" if self.is_eval() else "ret"
        return f"<{mode} {self.ctrl!r} | ka={self.ka!r}>"


@hash_consed
@dataclass(frozen=True)
class SiteContext:
    """Context-key carrier naming the invocation site at dispatch time."""

    site: Expr

    def context_key(self) -> Hashable:
        return self.site


HALT_ADDRESS = ("fj-halt-kont",)


def inject_fj(main: Expr) -> PState:
    """The initial state for a program's main expression."""
    return PState(main, pmap(), HALT_ADDRESS)
