"""Utility substrate: persistent, hashable collections used throughout.

Abstract-machine states must be members of powerset lattices, which in
Python means they must be hashable.  The standard library has frozenset
but no frozen mapping, so :mod:`repro.util.pcollections` provides
:class:`~repro.util.pcollections.PMap`, a small persistent-map layer with
value semantics, plus helpers shared by the rest of the code base.
:mod:`repro.util.intern` adds the hash-consing layer (cached structural
hashes and a canonicalizing intern pool) the fixed-point engines lean on.
"""

from repro.util.intern import hash_consed, intern
from repro.util.pcollections import PMap, pmap, pset

__all__ = ["PMap", "hash_consed", "intern", "pmap", "pset"]
