"""The one job-dispatch core behind batch, CLI, incremental, and server.

Before this module, three near-copies of the same pipeline lived in the
tree: ``run_batch``'s per-job probe loop, ``reanalyse``'s three-path
cascade, and the CLI's parse-assemble-run block.  Each resolved a
program, derived a content address, consulted the fixpoint cache, ran
cold on a miss, and shaped a report row -- with slightly different
bookkeeping, which is exactly how counter sources and cache semantics
drift apart.  This module is the single home of that pipeline:

* **Normalization** -- :func:`normalize_job` turns wire/CLI scalars
  (language, preset name, override mapping, source text or corpus name)
  into a validated, spawn-safe :class:`BatchJob`; ``imp`` sources lower
  to ``lam`` here, once, for every front end.
* **Cache-first dispatch** -- :func:`dispatch` runs one job through the
  full tier cascade: hot in-memory LRU (:class:`HotTier`), on-disk
  content-addressed :class:`~repro.service.cache.FixpointCache`,
  exactness-gated warm start, cold run -- writing results back down the
  tiers.  :func:`prepare`/:func:`probe`/:func:`complete` expose the
  stages separately for the batch runner, whose middle stage is a
  process pool rather than an inline run.
* **Report shaping** -- :func:`outcome_row` renders a
  :class:`JobOutcome` into the deterministic row shape shared by
  ``BatchReport`` documents and the server's ``analyse`` responses.

Every fixed point leaving this module is bit-identical to a cold
single-process ``assemble(config).run(program)`` of the same cell --
the invariant ``tests/test_service.py`` and ``tests/test_serve.py`` pin
across the preset x language matrix, whatever tier answered.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any

from repro.analysis.report import result_summary
from repro.config import AnalysisConfig, assemble, request_config
from repro.core.fixpoint import FixpointCapture
from repro.obs.metrics import default_registry
from repro.obs.trace import current_tracer
from repro.service.cache import (
    CachedFixpoint,
    FixpointCache,
    cache_key,
    ensure_deep_pickle,
)
from repro.util.intern import decompose


@dataclass(frozen=True)
class BatchJob:
    """One dispatchable cell: a program (by source or corpus name) x a config.

    Everything in here is plain, picklable scalar data -- the property
    that makes the job spawn-safe (it crosses the batch runner's process
    boundary as-is) and wire-safe (it round-trips through the server's
    JSON protocol).  ``config`` must carry its language; use
    :func:`normalize_job` (scalars) or ``jobs_for`` (grids) to build.
    """

    config: AnalysisConfig
    source: str | None = None
    corpus: str | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.source is None) == (self.corpus is None):
            raise ValueError("a BatchJob names exactly one of source= or corpus=")
        if self.config.language is None:
            raise ValueError("a BatchJob's config must carry its language")

    def describe(self) -> str:
        """A short human-readable cell name for tables and reports."""
        program = self.corpus if self.corpus else "<source>"
        return self.label or f"{self.config.language}/{program}/{self.config.describe()}"


def normalize_job(
    language: str,
    source: str | None = None,
    corpus: str | None = None,
    preset: str | None = None,
    overrides: dict | None = None,
    label: str = "",
) -> BatchJob:
    """Build a validated :class:`BatchJob` from request/CLI scalars.

    The one normalization every front end shares: ``imp`` source lowers
    to ``lam`` source text here (spawn- and cache-safe -- the analysis
    is a lam analysis either way), the preset/override resolution goes
    through :func:`repro.config.request_config`, and bad input surfaces
    as ``ValueError`` with an actionable message (which the server maps
    to an ``invalid-params`` error response).
    """
    if language == "imp":
        if source is not None:
            from repro.imp import lower_source
            from repro.lam.syntax import pp as lam_pp

            source = lam_pp(lower_source(source))
        elif corpus is not None and not corpus.startswith("imp:"):
            # imp corpus programs are registered lowered under the imp:
            # prefix (repro.corpus); accept the bare name on the wire
            corpus = f"imp:{corpus}"
        language = "lam"
    config = request_config(language, preset=preset, overrides=overrides)
    return BatchJob(config=config, source=source, corpus=corpus, label=label)


def resolve_program(job: BatchJob) -> Any:
    """Parse (or look up) the job's program in *this* process.

    Parsing interns every node, so resolving the same job in parent and
    worker yields structurally identical, locally-canonical terms --
    the content address is therefore process-independent.
    """
    language = job.config.language
    if job.corpus is not None:
        from repro.corpus import corpus_program

        return corpus_program(language, job.corpus)
    if language == "cps":
        from repro.cps.parser import parse_program

        return parse_program(job.source)
    if language == "lam":
        from repro.lam.parser import parse_expr

        return parse_expr(job.source)
    from repro.fj.parser import parse_program as parse_fj

    return parse_fj(job.source)


# ---------------------------------------------------------------------------
# Warm-start eligibility and result wrapping (shared mechanics)
# ---------------------------------------------------------------------------


def warmable(config: AnalysisConfig) -> bool:
    """Whether a configuration's runs can capture and replay evaluations.

    Warm starts live on the dependency-tracked engine (replayed
    configurations are re-triggered through the dependency map) and do
    not compose with abstract GC or counting, whose per-evaluation sweep
    and post-convergence saturation an evaluation record cannot replay
    (see :func:`repro.core.fixpoint.global_store_explore`).  The sharded
    worklist is excluded too: its overlay write sets omit no-growth
    binds (the versioned ``bind`` early-returns before the private map
    sees them), so captured records would under-approximate the live
    writes that warm restriction depends on.  Every other preset still
    gets the digest-hit tiers of :func:`dispatch`.
    """
    return (
        config.engine == "depgraph"
        and not config.gc
        and not config.counting
        and config.parallelism == "none"
    )


def wrap_fixpoint(analysis: Any, fp: Any, program: Any, language: str) -> Any:
    """Wrap a bare fixed point in the language's result type.

    The one home of the FJ-vs-others ``wrap_result`` signature split
    (FJ results carry the program for its class table); every tier of
    :func:`dispatch` and the batch runner route through here.
    """
    if language == "fj":
        return analysis.wrap_result(fp, program)
    return analysis.wrap_result(fp)


def iter_subvalues(value: Any):
    """Every structural sub-value of a term, itself included (iterative).

    Language-agnostic: walks whatever the shared
    :func:`repro.util.intern.decompose` recognizes (dataclass fields,
    tuples, sets, mappings), so subterm checks can never diverge from
    content digesting or rehydration.  Shared (interned) sub-terms are
    visited once.
    """
    seen: set[int] = set()
    stack = [value]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        _kind, children = decompose(node)
        stack.extend(children)


def contains_subterm(program: Any, candidate: Any) -> bool:
    """Whether ``candidate`` occurs verbatim (pointer-equal) inside ``program``.

    The donor-eligibility test behind automatic warm starts: when the
    old program is an *exact interned subterm* of the new one, the edit
    is an extension -- the old program is closed, so nothing the new
    wrapper binds can flow into its cells, its internal contexts (hence
    addresses and values) re-arise unchanged after at most ``k`` steps,
    and the seeded store therefore lies below the new fixed point: the
    warm result is exactly the cold one.  A sibling edit (shared pieces,
    different surroundings) offers no such guarantee -- shared addresses
    can carry donor-only values -- so it must re-run cold.
    """
    return any(node is candidate for node in iter_subvalues(program))


# ---------------------------------------------------------------------------
# The hot tier
# ---------------------------------------------------------------------------


class HotTier:
    """An in-memory LRU of live fixed points: the cache tier above disk.

    The resident server's reason to exist: a disk hit still pays open +
    unpickle + rehydrate per request (~tens of milliseconds on real
    fixed points), which a warm process should pay once.  Entries map a
    content address (:func:`repro.service.cache.cache_key`) to the
    *rehydrated, canonical* fixed point -- the same object every later
    request under that key receives, so the interned identity fast path
    holds across requests.

    Eviction is strict LRU over ``max_entries``.  Eviction can never
    serve anything stale: an evicted key simply falls through to the
    disk tier (or a cold run), both of which produce the identical fixed
    point -- ``tests/test_serve.py`` pins exactly that.  Thread-safe: the
    server's worker threads probe and fill concurrently.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("a HotTier needs max_entries >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Any | None:
        """The fixed point under ``key``, refreshed as most recent, or None."""
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(self, key: str, fp: Any) -> None:
        """Install (or refresh) a fixed point, evicting LRU over budget."""
        with self._lock:
            self._entries[key] = fp
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the intern-pool-clear companion; see serve)."""
        with self._lock:
            self._entries.clear()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """Entry count and hit/miss/evict counters (one snapshot)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


# ---------------------------------------------------------------------------
# The dispatch pipeline
# ---------------------------------------------------------------------------


@dataclass
class PreparedJob:
    """A cell with its process-local pieces resolved (stage one of dispatch).

    ``job`` is the spawn-safe wrapper when the cell came from one
    (:func:`prepare`); cells prepared from an already-parsed program
    (:func:`prepare_cell` -- the ``reanalyse`` path) carry ``None``.
    """

    config: AnalysisConfig
    program: Any
    analysis: Any
    key: str
    job: BatchJob | None = None


@dataclass
class JobOutcome:
    """One job's result: which tier answered and what it cost.

    ``job`` is ``None`` for outcomes of directly-prepared cells
    (:func:`prepare_cell`); report shaping (:func:`outcome_row`) needs a
    real job.
    """

    job: BatchJob | None
    result: Any
    key: str
    cached: bool
    seconds: float
    tier: str = "cold"  # "hot" | "disk" | "warm" | "cold"
    stats: dict = field(default_factory=dict)
    worker_pid: int | None = None

    @property
    def fp(self) -> Any:
        """The fixed point itself (shared by every acceptance check)."""
        return self.result.fp


def prepare(job: BatchJob) -> PreparedJob:
    """Resolve a job's program, content address, and assembled analysis.

    Normalizes the config first: content addresses must be computed on
    the *validated* config (validation e.g. implies the store widening
    for engine configs), or entries written here would never match the
    keys another front end derives.
    """
    validated = job.config.validated()
    if validated != job.config:
        job = _dc_replace(job, config=validated)
    tracer = current_tracer()
    with tracer.span("parse", cat="prepare", language=job.config.language):
        program = resolve_program(job)
    with tracer.span("assemble", cat="prepare", language=job.config.language):
        analysis = assemble(job.config, program=program)
    return PreparedJob(
        config=job.config,
        program=program,
        analysis=analysis,
        key=cache_key(program, job.config),
        job=job,
    )


def prepare_cell(config: AnalysisConfig, program: Any) -> PreparedJob:
    """Prepare an already-parsed program directly (no spawn-safe wrapper).

    The ``reanalyse`` entry: callers holding a live term skip the
    source/corpus round trip but run the identical downstream pipeline.
    """
    config = config.validated()
    with current_tracer().span("assemble", cat="prepare", language=config.language):
        analysis = assemble(config, program=program)
    return PreparedJob(
        config=config,
        program=program,
        analysis=analysis,
        key=cache_key(program, config),
    )


def probe(
    prepared: PreparedJob,
    cache: FixpointCache | None = None,
    hot: HotTier | None = None,
) -> JobOutcome | None:
    """Try to answer a prepared job from the hot tier, then the disk tier.

    A disk hit is promoted into the hot tier on the way out, so the next
    identical request is answered from memory.  Returns ``None`` on a
    full miss -- the caller decides how to compute (inline, pool, warm).
    """
    started = time.perf_counter()
    language = prepared.config.language
    if hot is not None:
        fp = hot.get(prepared.key)
        if fp is not None:
            return JobOutcome(
                job=prepared.job,
                result=wrap_fixpoint(prepared.analysis, fp, prepared.program, language),
                key=prepared.key,
                cached=True,
                tier="hot",
                seconds=time.perf_counter() - started,
                stats={"evaluations": 0},
            )
    if cache is not None:
        # the report only needs the fixed point; leave the (larger)
        # warm-start records sidecar on disk
        entry = cache.get_key(prepared.key, with_records=False)
        if entry is not None:
            if hot is not None:
                hot.put(prepared.key, entry.fp)
            return JobOutcome(
                job=prepared.job,
                result=wrap_fixpoint(
                    prepared.analysis, entry.fp, prepared.program, language
                ),
                key=prepared.key,
                cached=True,
                tier="disk",
                seconds=time.perf_counter() - started,
                stats={"evaluations": 0},
            )
    return None


def run_cold(job: BatchJob) -> dict:
    """Execute one job cold (the batch worker side; also the inline path).

    Returns only picklable data: the fixed point, optional warm-start
    records, timing and engine stats.
    """
    # the batch pool serializes this function's return value outside
    # anything we can wrap, so give the *worker process* its pickle
    # headroom here
    ensure_deep_pickle()
    prepared = prepare(job)
    config = prepared.config
    capture = FixpointCapture() if warmable(config) else None
    start = time.perf_counter()
    result = prepared.analysis.run(
        prepared.program, worklist=not config.shared, capture=capture
    )
    seconds = time.perf_counter() - start
    return {
        "fp": result.fp,
        "records": dict(capture.records) if capture is not None else None,
        "seconds": seconds,
        "stats": dict(prepared.analysis.last_stats),
        "pid": os.getpid(),
    }


def complete(
    prepared: PreparedJob,
    payload: dict,
    cache: FixpointCache | None = None,
    hot: HotTier | None = None,
    store: bool = True,
    tier: str = "cold",
    result: Any = None,
) -> JobOutcome:
    """Shape a computed payload into an outcome, writing back down the tiers.

    ``payload`` is a :func:`run_cold`-shaped dict; pooled payloads may
    carry pre-pickled ``object_blob``/``records_blob`` bytes, which are
    written through :meth:`FixpointCache.put_payload` without being
    rebuilt.  ``store=False`` skips the disk write (the gate-bypassing
    warm path: a possibly over-approximate fixed point must never be
    served as an exact digest hit later).
    """
    if result is None:
        result = wrap_fixpoint(
            prepared.analysis, payload["fp"], prepared.program, prepared.config.language
        )
    if cache is not None and store:
        object_blob = payload.get("object_blob")
        if object_blob is not None:
            import zlib

            records_blob = payload.get("records_blob")
            cache.put_payload(
                prepared.program,
                prepared.config,
                object_blob,
                zlib.decompress(records_blob) if records_blob else None,
                seconds=payload["seconds"],
            )
        else:
            cache.put(
                prepared.program,
                prepared.config,
                payload["fp"],
                records=payload["records"],
                seconds=payload["seconds"],
            )
    if hot is not None and store:
        hot.put(prepared.key, payload["fp"])
    return JobOutcome(
        job=prepared.job,
        result=result,
        key=prepared.key,
        cached=False,
        tier=tier,
        seconds=payload["seconds"],
        stats=payload.get("stats", {}),
        worker_pid=payload.get("pid"),
    )


def dispatch(
    job: BatchJob | None = None,
    cache: FixpointCache | None = None,
    hot: HotTier | None = None,
    use_cache: bool = True,
    allow_warm: bool = False,
    donor: CachedFixpoint | None = None,
    config: AnalysisConfig | None = None,
    program: Any = None,
) -> JobOutcome:
    """Run one job through the full tier cascade; the single-job front door.

    hot LRU -> disk cache -> (exactness-gated) warm start -> cold run,
    writing the result back down the tiers it missed.  This is what the
    server's ``analyse``/``reanalyse`` methods, ``reanalyse`` in
    :mod:`repro.service.incremental`, and the CLI's ``analyze`` call;
    the batch runner runs the same stages with a pool in the middle
    (:func:`prepare` / :func:`probe` / :func:`complete`).

    Warm-start semantics (``allow_warm=True``) mirror the documented
    :func:`repro.service.incremental.reanalyse` contract exactly: an
    auto-selected donor must pass the interned-subterm exactness gate;
    an explicitly passed ``donor`` bypasses the gate, takes
    responsibility for possible (sound) over-approximation, and is not
    written back to the cache.

    Pass either a ``job`` (spawn-safe scalars) or ``config=`` plus an
    already-parsed ``program=`` (the ``reanalyse`` entry).
    """
    if (job is None) == (config is None):
        raise ValueError("dispatch takes a job= or a config=/program= pair")
    with current_tracer().span("dispatch", cat="dispatch"):
        outcome = _dispatch_cascade(
            job=job,
            cache=cache,
            hot=hot,
            use_cache=use_cache,
            allow_warm=allow_warm,
            donor=donor,
            config=config,
            program=program,
        )
    # the process-wide tier ledger: every dispatch, whatever front end
    # drove it (the server's per-instance counters stay separate)
    default_registry().counter("jobs_tier_total", tier=outcome.tier).inc()
    return outcome


def _dispatch_cascade(
    job: BatchJob | None,
    cache: FixpointCache | None,
    hot: HotTier | None,
    use_cache: bool,
    allow_warm: bool,
    donor: CachedFixpoint | None,
    config: AnalysisConfig | None,
    program: Any,
) -> JobOutcome:
    """The cascade body of :func:`dispatch` (observability lives above)."""
    prepared = prepare(job) if job is not None else prepare_cell(config, program)
    if use_cache:
        hit = probe(prepared, cache=cache, hot=hot)
        if hit is not None:
            return hit
    config = prepared.config
    capture = FixpointCapture() if warmable(config) else None
    warm_start = None
    gate_bypassed = donor is not None
    if allow_warm and warmable(config) and cache is not None and use_cache:
        if donor is None:
            candidate = cache.latest_for(config)
            if (
                candidate is not None
                and candidate.warmable
                and candidate.program is not None
                and contains_subterm(prepared.program, candidate.program)
            ):
                donor = candidate
        if donor is not None and donor.warmable:
            warm_start = donor.warm_start()
    start = time.perf_counter()
    result = prepared.analysis.run(
        prepared.program,
        worklist=not config.shared,
        warm_start=warm_start,
        capture=capture,
    )
    payload = {
        "fp": result.fp,
        "records": dict(capture.records) if capture is not None else None,
        "seconds": time.perf_counter() - start,
        "stats": dict(prepared.analysis.last_stats),
        "pid": os.getpid(),
    }
    return complete(
        prepared,
        payload,
        cache=cache if use_cache else None,
        hot=hot if use_cache else None,
        store=not (warm_start is not None and gate_bypassed),
        tier="warm" if warm_start is not None else "cold",
        result=result,
    )


# ---------------------------------------------------------------------------
# Report shaping
# ---------------------------------------------------------------------------


def outcome_row(outcome: JobOutcome, include_flows: bool = False) -> dict:
    """One outcome as the deterministic row shared by reports and responses.

    The exact shape ``BatchReport.to_document`` emits per job and the
    server returns per ``analyse`` response (under ``summary``), so the
    two surfaces cannot drift: states, store size, flow tables (opt-in),
    precision scalars, the content address, and the serving tier.
    """
    summary = result_summary(
        outcome.result, label=outcome.job.describe(), seconds=outcome.seconds
    )
    if not include_flows:
        summary.pop("flows")
    summary.update(
        key=outcome.key,
        language=outcome.job.config.language,
        config=outcome.job.config.cache_key(),
        cache="hit" if outcome.cached else "miss",
        tier=outcome.tier,
        evaluations=outcome.stats.get("evaluations"),
        reused=outcome.stats.get("reused"),
        dedup_hits=outcome.stats.get("dedup_hits"),
        max_rank=outcome.stats.get("max_rank"),
    )
    return summary
