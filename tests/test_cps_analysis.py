"""The CPS analysis family: collecting semantics, k-CFA, widening, counting, GC."""

import pytest

from repro.core.addresses import Binding, KCFA
from repro.core.lattice import AbsNat
from repro.core.store import CountingStore
from repro.cps.analysis import (
    analyse,
    analyse_concrete_collecting,
    analyse_kcfa,
    analyse_shared,
    analyse_with_count,
    analyse_with_gc,
    analyse_zerocfa,
)
from repro.cps.syntax import Lam
from repro.corpus.cps_programs import PROGRAMS, heap_clone, id_chain


def flow_sizes(result):
    return {var: len(lams) for var, lams in result.flows_to().items()}


class TestCollectingSemantics:
    def test_identity_reaches_exit(self):
        result = analyse_concrete_collecting(PROGRAMS["identity"])
        assert result.reaching_exit()

    def test_concrete_collecting_is_exact_on_identity(self):
        result = analyse_concrete_collecting(PROGRAMS["identity"])
        # unique addresses: every variable flows to exactly one lambda
        assert all(n == 1 for n in flow_sizes(result).values())

    def test_kleene_and_worklist_agree(self):
        program = PROGRAMS["mj09"]
        analysis = analyse(KCFA(1))
        fp_kleene = analysis.run(program, worklist=False).fp
        fp_worklist = analysis.run(program, worklist=True).fp
        assert fp_kleene == fp_worklist


class TestPolyvariance:
    """The mj09 example: the heart of experiments E3/E7."""

    def test_zerocfa_merges_the_two_id_results(self):
        flows = flow_sizes(analyse_zerocfa(PROGRAMS["mj09"]))
        assert flows["a"] == 2
        assert flows["b"] == 2
        assert flows["x"] == 2

    def test_onecfa_separates_the_two_id_results(self):
        flows = flow_sizes(analyse_kcfa(PROGRAMS["mj09"], 1))
        assert flows["a"] == 1
        assert flows["b"] == 1

    def test_precision_never_decreases_with_k(self):
        for name in ("identity", "mj09", "id-id", "self-apply"):
            f1 = analyse_kcfa(PROGRAMS[name], 1).flows_to()
            f0 = analyse_kcfa(PROGRAMS[name], 0).flows_to()
            for var, lams in f1.items():
                assert lams <= f0.get(var, lams)

    def test_id_chain_separation_grows_with_n(self):
        program = id_chain(4)
        flows0 = flow_sizes(analyse_zerocfa(program))
        # monovariant: all four arguments merge through the shared parameter
        assert flows0["x"] == 4
        # 1CFA: per-address (per-context) bindings of x each hold one lambda
        per_addr = analyse_kcfa(program, 1).flows_per_address()
        x_addrs = [a for a in per_addr if getattr(a, "var", a) == "x"]
        assert len(x_addrs) == 4
        assert all(len(per_addr[a]) == 1 for a in x_addrs)

    def test_kcfa0_equals_zerocfa_flows(self):
        for name in ("identity", "mj09", "omega"):
            fk = analyse_kcfa(PROGRAMS[name], 0).flows_to()
            fz = analyse_zerocfa(PROGRAMS[name]).flows_to()
            assert fk == fz


class TestTermination:
    def test_omega_terminates_abstractly(self):
        result = analyse_zerocfa(PROGRAMS["omega"])
        assert result.num_states() >= 2
        assert not result.reaching_exit()  # omega never exits

    def test_omega_terminates_with_1cfa(self):
        assert analyse_kcfa(PROGRAMS["omega"], 1).num_states() >= 2


class TestSharedStoreWidening:
    def test_shared_store_covers_per_state_flows(self):
        for name in ("identity", "mj09", "omega"):
            per_state = analyse_kcfa(PROGRAMS[name], 1).flows_to()
            shared = analyse_shared(PROGRAMS[name], 1).flows_to()
            for var, lams in per_state.items():
                assert lams <= shared.get(var, frozenset())

    def test_shared_store_state_set_covers_per_state(self):
        for name in ("identity", "mj09"):
            per_state = analyse_kcfa(PROGRAMS[name], 1).states()
            shared = analyse_shared(PROGRAMS[name], 1).states()
            assert per_state <= shared

    def test_heap_cloning_blowup_vs_shared(self):
        program = heap_clone(6)
        per_state = analyse_kcfa(program, 1)
        shared = analyse_shared(program, 1)
        # per-state: one store per choice prefix; shared: linear
        assert per_state.num_elements() > 4 * shared.num_elements()

    def test_blowup_is_exponential_in_n(self):
        small = analyse_kcfa(heap_clone(3), 1).num_elements()
        big = analyse_kcfa(heap_clone(6), 1).num_elements()
        assert big >= 4 * small


class TestCountingStore:
    def test_counting_plugs_in_without_changing_flows(self):
        program = PROGRAMS["mj09"]
        plain = analyse_shared(program, 1).flows_to()
        counted = analyse_with_count(program, 1).flows_to()
        assert plain == counted

    def test_single_bindings_counted_one(self):
        # per-state stores: each configuration's store is rebuilt
        # deterministically, so straight-line allocations stay at ONE
        result = analyse_with_count(PROGRAMS["identity"], 1, shared=False)
        singles = result.singleton_counts()
        assert singles  # straight-line code: everything allocated once
        for addr in singles:
            assert result.count_of(addr) is AbsNat.ONE

    def test_shared_store_counting_drifts_soundly(self):
        # re-analysis against the global store bumps counts: sound (MANY
        # over-approximates ONE) but deliberately imprecise
        per_state = analyse_with_count(PROGRAMS["identity"], 1, shared=False)
        shared = analyse_with_count(PROGRAMS["identity"], 1, shared=True)
        assert len(shared.singleton_counts()) <= len(per_state.singleton_counts())

    def test_loop_bindings_counted_many(self):
        result = analyse_with_count(PROGRAMS["omega"], 0)
        store = result.global_store()
        counting = result.store_like
        assert isinstance(counting, CountingStore)
        counts = {a: counting.count(store, a) for a in counting.addresses(store)}
        # omega rebinds its single variable forever: count must reach MANY
        assert AbsNat.MANY in counts.values()

    def test_per_state_counting_also_works(self):
        result = analyse_with_count(PROGRAMS["identity"], 1, shared=False)
        assert result.reaching_exit()


class TestAbstractGC:
    def test_gc_preserves_flows_of_live_variables(self):
        program = PROGRAMS["identity"]
        with_gc = analyse_with_gc(program, 1).flows_to()
        without = analyse_kcfa(program, 1).flows_to()
        # x and k are live (read) while bound: their flows survive GC.
        # r is dead at Exit, so GC legitimately drops it.
        assert with_gc.get("x") == without.get("x")
        assert with_gc.get("k") == without.get("k")
        assert "r" not in with_gc

    def test_gc_shrinks_or_preserves_store(self):
        for name in ("identity", "mj09", "id-id"):
            with_gc = analyse_with_gc(PROGRAMS[name], 1)
            without = analyse_kcfa(PROGRAMS[name], 1)
            assert with_gc.store_size() <= without.store_size()

    def test_gc_never_loses_exit_reachability(self):
        for name in ("identity", "mj09", "id-id", "self-apply"):
            assert analyse_with_gc(PROGRAMS[name], 1).reaching_exit()

    def test_gc_can_improve_precision(self):
        # dead bindings dropped => flows-to domain can only shrink
        program = PROGRAMS["mj09"]
        gc_flows = analyse_with_gc(program, 0).flows_to()
        plain_flows = analyse_zerocfa(program).flows_to()
        for var, lams in gc_flows.items():
            assert lams <= plain_flows.get(var, frozenset())


class TestResultAccessors:
    def test_states_and_configs(self):
        result = analyse_kcfa(PROGRAMS["identity"], 1)
        assert result.num_states() <= result.num_configs() <= result.num_elements()

    def test_flows_to_values_are_lambdas(self):
        flows = analyse_zerocfa(PROGRAMS["mj09"]).flows_to()
        for lams in flows.values():
            assert all(isinstance(value, Lam) for value in lams)

    def test_global_store_has_bindings(self):
        result = analyse_kcfa(PROGRAMS["identity"], 1)
        assert result.store_size() > 0

    def test_singleton_counts_requires_counting_store(self):
        result = analyse_kcfa(PROGRAMS["identity"], 1)
        with pytest.raises(TypeError):
            result.singleton_counts()

    def test_zerocfa_addresses_are_bare_variables(self):
        result = analyse_zerocfa(PROGRAMS["identity"])
        addrs = set(result.store_like.addresses(result.global_store()))
        assert all(isinstance(a, str) for a in addrs)

    def test_kcfa_addresses_are_bindings(self):
        result = analyse_kcfa(PROGRAMS["identity"], 1)
        addrs = set(result.store_like.addresses(result.global_store()))
        assert all(isinstance(a, Binding) for a in addrs)
