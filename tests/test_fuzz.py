"""The differential fuzz harness and the shrinker.

``run_fuzz`` must (a) find zero violations on a healthy pipeline, (b)
render byte-identical reports for one seed -- the property CI diffs --
and (c) when handed a broken "analysis", shrink the failure to a
1-minimal reproducer.  The shrinker is tested directly with synthetic
predicates so its minimality guarantees don't depend on manufacturing
a real unsoundness.
"""

from repro.corpus.generate import generate_corpus
from repro.imp import parse_program, pp
from repro.imp.shrink import shrink, variants
from repro.imp.syntax import Program, SReturn, SWhile, program_size, stmt_blocks
from repro.service.fuzz import check_program, render_fuzz_report, run_fuzz

FAST_PRESETS = ("1cfa-fused",)


class TestCheckProgram:
    def test_covered_on_a_simple_program(self):
        program = parse_program("let i = 0; while (i < 2) { i = i + 1; } return i;")
        verdict = check_program(program, presets=FAST_PRESETS)
        assert verdict == {"1cfa-fused": True}

    def test_budget_exhaustion_skips(self):
        program = parse_program("let i = 0; while (i < 3) { i = i + 1; } return i;")
        assert check_program(program, presets=FAST_PRESETS, max_steps=10) == {}

    def test_recursion_blowup_aborts_the_preset(self, monkeypatch):
        import repro.service.fuzz as fuzz_mod

        def exploding(lowered, concrete_lam, preset, max_evals):
            raise RecursionError

        monkeypatch.setattr(fuzz_mod, "_covers", exploding)
        program = parse_program("return 1;")
        verdict = fuzz_mod.check_program(program, presets=FAST_PRESETS)
        assert verdict == {"1cfa-fused": None}
        # an aborted preset is counted, never treated as a pass or a violation
        report = fuzz_mod.run_fuzz(seed=3, count=2, presets=FAST_PRESETS)
        assert report["aborted"] == {"1cfa-fused": 2}
        assert report["checked"] == {"1cfa-fused": 0}
        assert report["violations"] == []

    def test_eval_budget_aborts_deterministically(self):
        # a tiny budget turns every abstract run into a FixpointDiverged
        # abort -- counted per preset, never a violation
        program = parse_program("let i = 0; while (i < 2) { i = i + 1; } return i;")
        verdict = check_program(program, presets=FAST_PRESETS, max_evals=3)
        assert verdict == {"1cfa-fused": None}
        report = run_fuzz(seed=5, count=2, presets=FAST_PRESETS, max_evals=3)
        again = run_fuzz(seed=5, count=2, presets=FAST_PRESETS, max_evals=3)
        assert report["aborted"]["1cfa-fused"] + report["skipped"] == 2
        assert report["max_evals"] == 3
        assert render_fuzz_report(report) == render_fuzz_report(again)


class TestRunFuzz:
    def test_zero_violations_and_deterministic_report(self):
        report = run_fuzz(seed=42, count=6, presets=FAST_PRESETS)
        again = run_fuzz(seed=42, count=6, presets=FAST_PRESETS)
        assert report["violations"] == []
        accounted = (
            report["skipped"]
            + report["checked"]["1cfa-fused"]
            + report["aborted"]["1cfa-fused"]
        )
        assert accounted == 6
        assert render_fuzz_report(report) == render_fuzz_report(again)

    def test_report_has_no_timings(self):
        rendered = render_fuzz_report(run_fuzz(seed=1, count=3, presets=FAST_PRESETS))
        assert "seconds" not in rendered and "time" not in rendered

    def test_corpus_digest_matches_generator(self):
        from repro.corpus.generate import corpus_digest

        report = run_fuzz(seed=9, count=4, presets=FAST_PRESETS)
        assert report["corpus_digest"] == corpus_digest(generate_corpus(9, 4))


class TestShrink:
    def _has_while(self, program: Program) -> bool:
        def walk(block):
            return any(
                isinstance(stmt, SWhile) or any(walk(b) for b in stmt_blocks(stmt))
                for stmt in block
            )

        return walk(program.body)

    def test_shrinks_to_one_minimal_loop(self):
        program = parse_program(
            "let a = 3; let b = a * 2;"
            " fn f(x) { return x + 1; }"
            " let i = 0; while (i < 3) { if (a < 2) { b = b + 1; } i = i + 1; }"
            " return f(b);"
        )
        small = shrink(program, self._has_while)
        assert self._has_while(small)
        # 1-minimal: no single edit both shrinks and keeps the property
        for candidate in variants(small):
            if program_size(candidate) < program_size(small):
                assert not self._has_while(candidate)

    def test_predicate_exceptions_reject(self):
        program = parse_program("let x = 1; return x + 1;")

        def fragile(candidate: Program) -> bool:
            # raises on candidates that drop the let (unbound x): shrink
            # must treat that as rejection, not crash
            from repro.imp.lower import lower_program

            lower_program(candidate)
            return any(
                isinstance(stmt, SReturn) for stmt in candidate.body
            )

        small = shrink(program, fragile)
        assert any(isinstance(stmt, SReturn) for stmt in small.body)

    def test_check_budget_bounds_predicate_calls(self):
        program = generate_corpus(21, 1)[0]
        calls = []

        def counting(candidate: Program) -> bool:
            calls.append(1)
            return True

        shrink(program, counting, max_checks=5)
        assert len(calls) <= 5

    def test_shrink_is_deterministic(self):
        program = generate_corpus(33, 1)[0]
        first = shrink(program, self._has_while) if self._has_while(program) else None
        second = shrink(program, self._has_while) if self._has_while(program) else None
        assert pp(first) == pp(second) if first else True

    def test_variants_are_all_smaller_or_rewrites(self):
        program = parse_program("let x = 2; if (x < 3) { x = 1; } return x;")
        seen = list(variants(program))
        assert seen  # non-empty candidate space
        assert all(isinstance(candidate, Program) for candidate in seen)
