"""A monad library with transformers, in Python.

The paper's central move is to express the abstract-machine transition in
*monadic normal form* against a semantic interface, so that the choice of
monad decides nondeterminism, context-sensitivity and store handling.  In
Haskell the monad is resolved from types; here a monad is a first-class
*instance object* and monadic *values* are ordinary Python data:

=====================  ==========================================These
monad instance          monadic value of type ``m a``
=====================  ==========================================
:class:`Identity`       the value ``a`` itself
:class:`ListMonad`      a ``list`` of ``a`` (nondeterminism)
:class:`MaybeMonad`     :data:`NOTHING` or ``Just(a)``
:class:`Reader`         a function ``env -> a``
:class:`Writer`         a pair ``(a, log)`` for a monoid ``log``
:class:`State`          a function ``s -> (a, s)``
:class:`StateT`         a function ``s -> inner-monadic (a, s)``
=====================  ==========================================

Combinators that Haskell gets from ``Control.Monad`` are module-level
functions taking the monad object first: :func:`fmap`, :func:`map_m`
(``mapM``), :func:`sequence_m`, :func:`msum`, :func:`guard`,
:func:`filter_m`, :func:`fold_m`, :func:`kleisli`, plus the paper's
:func:`gets_nd_set` -- the crux of handling nondeterminism in a stateful
analysis monad (5.3.2).

Do-notation is emulated by :func:`run_do`, a generator *replay* runner:
the generator function is re-executed from scratch for every
nondeterministic branch, feeding back the values chosen so far.  This is
the standard (and only correct) way to drive a Python generator under a
nondeterminism monad, since generators cannot be forked.  The generator
must therefore be side-effect-free up to its ``yield``\\ ed binds.

Finally, :class:`StorePassing` wires up the paper's two-level analysis
monad ``StateT g (StateT s [])`` (5.3.1) with named accessors for the
"guts" (outer state, e.g. time) and the store (inner state).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Sequence


class Monad(ABC):
    """A monad instance: ``unit`` (return) and ``bind`` (>>=)."""

    @abstractmethod
    def unit(self, value: Any) -> Any:
        """Inject a pure value: ``return``."""

    @abstractmethod
    def bind(self, mv: Any, f: Callable[[Any], Any]) -> Any:
        """Sequence: ``mv >>= f`` where ``f`` maps a value to a monadic value."""

    def then(self, mv1: Any, mv2: Any) -> Any:
        """Sequence, discarding the first result: ``>>``."""
        return self.bind(mv1, lambda _ignored: mv2)

    def join(self, mmv: Any) -> Any:
        """Flatten ``m (m a)`` to ``m a``."""
        return self.bind(mmv, lambda mv: mv)


class MonadPlus(Monad):
    """A monad with failure and nondeterministic choice."""

    @abstractmethod
    def mzero(self) -> Any:
        """The failing computation."""

    @abstractmethod
    def mplus(self, mv1: Any, mv2: Any) -> Any:
        """Nondeterministic choice between two computations."""


class MonadState(Monad):
    """A monad carrying an implicit state component."""

    @abstractmethod
    def get_state(self) -> Any:
        """``get``: yield the current state."""

    @abstractmethod
    def put_state(self, state: Any) -> Any:
        """``put``: replace the current state."""

    def gets(self, f: Callable[[Any], Any]) -> Any:
        """``gets f``: project from the current state."""
        return self.bind(self.get_state(), lambda s: self.unit(f(s)))

    def modify(self, f: Callable[[Any], Any]) -> Any:
        """``modify f``: update the current state in place."""
        return self.bind(self.get_state(), lambda s: self.put_state(f(s)))


# ---------------------------------------------------------------------------
# Base monads
# ---------------------------------------------------------------------------


class Identity(Monad):
    """The identity monad: a monadic value *is* the value."""

    def unit(self, value: Any) -> Any:
        return value

    def bind(self, mv: Any, f: Callable[[Any], Any]) -> Any:
        return f(mv)

    def run(self, mv: Any) -> Any:
        return mv


class ListMonad(MonadPlus):
    """The list monad: instant and powerful nondeterminism (paper 1).

    A monadic value is a ``list``; ``bind`` maps and concatenates, so a
    single abstract transition branching to every possible abstract
    closure is just a bind over the list of candidates.
    """

    def unit(self, value: Any) -> list:
        return [value]

    def bind(self, mv: list, f: Callable[[Any], list]) -> list:
        out: list = []
        for value in mv:
            out.extend(f(value))
        return out

    def mzero(self) -> list:
        return []

    def mplus(self, mv1: list, mv2: list) -> list:
        return list(mv1) + list(mv2)

    def run(self, mv: list) -> list:
        return mv


@dataclass(frozen=True)
class Just:
    """A present value in :class:`MaybeMonad`."""

    value: Any


NOTHING = None
"""The absent value in :class:`MaybeMonad` (plain ``None``)."""


class MaybeMonad(MonadPlus):
    """The Maybe monad: at most one result; ``None`` is failure."""

    def unit(self, value: Any) -> Just:
        return Just(value)

    def bind(self, mv: Just | None, f: Callable[[Any], Any]) -> Any:
        if mv is NOTHING:
            return NOTHING
        return f(mv.value)

    def mzero(self) -> None:
        return NOTHING

    def mplus(self, mv1: Any, mv2: Any) -> Any:
        return mv2 if mv1 is NOTHING else mv1

    def run(self, mv: Any) -> Any:
        return mv


class Reader(Monad):
    """The reader monad: computations with a read-only environment."""

    def unit(self, value: Any) -> Callable[[Any], Any]:
        return lambda _env: value

    def bind(self, mv: Callable, f: Callable[[Any], Callable]) -> Callable:
        return lambda env: f(mv(env))(env)

    def ask(self) -> Callable[[Any], Any]:
        """Yield the environment itself."""
        return lambda env: env

    def asks(self, f: Callable[[Any], Any]) -> Callable[[Any], Any]:
        """Project from the environment."""
        return lambda env: f(env)

    def local(self, modify_env: Callable[[Any], Any], mv: Callable) -> Callable:
        """Run ``mv`` under a locally modified environment."""
        return lambda env: mv(modify_env(env))

    def run(self, mv: Callable, env: Any) -> Any:
        return mv(env)


@dataclass(frozen=True)
class Monoid:
    """A monoid ``(mempty, mappend)`` for :class:`Writer` logs."""

    mempty: Any
    mappend: Callable[[Any, Any], Any]


LIST_MONOID = Monoid(mempty=(), mappend=lambda x, y: tuple(x) + tuple(y))


class Writer(Monad):
    """The writer monad over a :class:`Monoid`: computations with a log."""

    def __init__(self, monoid: Monoid = LIST_MONOID):
        self.monoid = monoid

    def unit(self, value: Any) -> tuple:
        return (value, self.monoid.mempty)

    def bind(self, mv: tuple, f: Callable[[Any], tuple]) -> tuple:
        value, log1 = mv
        result, log2 = f(value)
        return (result, self.monoid.mappend(log1, log2))

    def tell(self, entry: Any) -> tuple:
        """Append to the log."""
        return (None, entry)

    def run(self, mv: tuple) -> tuple:
        return mv


class State(MonadState):
    """The state monad: a monadic value is a function ``s -> (a, s)``."""

    def unit(self, value: Any) -> Callable:
        return lambda s: (value, s)

    def bind(self, mv: Callable, f: Callable[[Any], Callable]) -> Callable:
        def run(s: Any) -> tuple:
            value, s1 = mv(s)
            return f(value)(s1)

        return run

    def get_state(self) -> Callable:
        return lambda s: (s, s)

    def put_state(self, state: Any) -> Callable:
        return lambda _s: (None, state)

    def run(self, mv: Callable, state: Any) -> tuple:
        """Run to a ``(result, final_state)`` pair."""
        return mv(state)

    def eval(self, mv: Callable, state: Any) -> Any:
        return mv(state)[0]

    def exec(self, mv: Callable, state: Any) -> Any:
        return mv(state)[1]


# ---------------------------------------------------------------------------
# The state-transformer: StateT s m
# ---------------------------------------------------------------------------


class StateT(MonadState, MonadPlus):
    """The state transformer ``StateT s m``: values are ``s -> m (a, s)``.

    MonadPlus operations are available exactly when the inner monad has
    them (they distribute over the state), mirroring the "nice surprise"
    of the paper's 5.3.2 that ``StorePassing`` is both ``MonadPlus`` and
    ``MonadState``.  :meth:`lift` embeds an inner computation, used to
    reach past the outer state to inner layers of the stack.
    """

    def __init__(self, inner: Monad):
        self.inner = inner

    def unit(self, value: Any) -> Callable:
        return lambda s: self.inner.unit((value, s))

    def bind(self, mv: Callable, f: Callable[[Any], Callable]) -> Callable:
        def run(s: Any) -> Any:
            return self.inner.bind(mv(s), lambda pair: f(pair[0])(pair[1]))

        return run

    def lift(self, inner_mv: Any) -> Callable:
        """Embed an inner-monad computation, threading the state unchanged."""
        return lambda s: self.inner.bind(inner_mv, lambda a: self.inner.unit((a, s)))

    # -- MonadState --------------------------------------------------------

    def get_state(self) -> Callable:
        return lambda s: self.inner.unit((s, s))

    def put_state(self, state: Any) -> Callable:
        return lambda _s: self.inner.unit((None, state))

    # -- MonadPlus (when the inner monad has it) -----------------------------

    def mzero(self) -> Callable:
        inner = self._inner_plus()
        return lambda _s: inner.mzero()

    def mplus(self, mv1: Callable, mv2: Callable) -> Callable:
        inner = self._inner_plus()
        return lambda s: inner.mplus(mv1(s), mv2(s))

    def _inner_plus(self) -> MonadPlus:
        if not isinstance(self.inner, MonadPlus):
            raise TypeError(
                f"StateT over {type(self.inner).__name__} is not a MonadPlus"
            )
        return self.inner

    def run(self, mv: Callable, state: Any) -> Any:
        """``runStateT``: run to an inner-monadic ``(result, state)``."""
        return mv(state)


class ReaderT(Monad):
    """The reader transformer ``ReaderT r m``: values are ``r -> m a``.

    Useful for threading a fixed analysis configuration (e.g. a class
    table) under the rest of the stack without plumbing parameters.
    """

    def __init__(self, inner: Monad):
        self.inner = inner

    def unit(self, value: Any) -> Callable:
        return lambda _env: self.inner.unit(value)

    def bind(self, mv: Callable, f: Callable[[Any], Callable]) -> Callable:
        return lambda env: self.inner.bind(mv(env), lambda a: f(a)(env))

    def lift(self, inner_mv: Any) -> Callable:
        return lambda _env: inner_mv

    def ask(self) -> Callable:
        return lambda env: self.inner.unit(env)

    def asks(self, f: Callable[[Any], Any]) -> Callable:
        return lambda env: self.inner.unit(f(env))

    def local(self, modify_env: Callable[[Any], Any], mv: Callable) -> Callable:
        return lambda env: mv(modify_env(env))

    def run(self, mv: Callable, env: Any) -> Any:
        return mv(env)


class WriterT(Monad):
    """The writer transformer ``WriterT w m``: values are ``m (a, log)``."""

    def __init__(self, inner: Monad, monoid: Monoid = LIST_MONOID):
        self.inner = inner
        self.monoid = monoid

    def unit(self, value: Any) -> Any:
        return self.inner.unit((value, self.monoid.mempty))

    def bind(self, mv: Any, f: Callable[[Any], Any]) -> Any:
        def combine(pair: tuple) -> Any:
            value, log1 = pair
            return self.inner.bind(
                f(value),
                lambda pair2: self.inner.unit(
                    (pair2[0], self.monoid.mappend(log1, pair2[1]))
                ),
            )

        return self.inner.bind(mv, combine)

    def lift(self, inner_mv: Any) -> Any:
        return self.inner.bind(
            inner_mv, lambda a: self.inner.unit((a, self.monoid.mempty))
        )

    def tell(self, entry: Any) -> Any:
        return self.inner.unit((None, entry))

    def run(self, mv: Any) -> Any:
        return mv


class MaybeT(MonadPlus):
    """The maybe transformer ``MaybeT m``: values are ``m (Just a | None)``.

    Gives any monad a notion of recoverable failure -- e.g. pruning
    stuck branches inside a deterministic state monad.
    """

    def __init__(self, inner: Monad):
        self.inner = inner

    def unit(self, value: Any) -> Any:
        return self.inner.unit(Just(value))

    def bind(self, mv: Any, f: Callable[[Any], Any]) -> Any:
        return self.inner.bind(
            mv, lambda maybe: f(maybe.value) if maybe is not NOTHING else self.inner.unit(NOTHING)
        )

    def lift(self, inner_mv: Any) -> Any:
        return self.inner.bind(inner_mv, lambda a: self.inner.unit(Just(a)))

    def mzero(self) -> Any:
        return self.inner.unit(NOTHING)

    def mplus(self, mv1: Any, mv2: Any) -> Any:
        return self.inner.bind(
            mv1, lambda maybe: self.inner.unit(maybe) if maybe is not NOTHING else mv2
        )

    def run(self, mv: Any) -> Any:
        return mv


# ---------------------------------------------------------------------------
# Generic combinators (Control.Monad equivalents)
# ---------------------------------------------------------------------------


def fmap(monad: Monad, f: Callable[[Any], Any], mv: Any) -> Any:
    """``fmap`` / ``liftM``: apply a pure function inside the monad."""
    return monad.bind(mv, lambda a: monad.unit(f(a)))


def ap(monad: Monad, mf: Any, mv: Any) -> Any:
    """``<*>``: apply a monadic function to a monadic value."""
    return monad.bind(mf, lambda f: fmap(monad, f, mv))


def map_m(monad: Monad, f: Callable[[Any], Any], xs: Iterable[Any]) -> Any:
    """``mapM``: run ``f`` left-to-right over ``xs``, collecting a list.

    This is the combinator that the paper's ``mnext`` uses to allocate a
    list of addresses and evaluate a list of arguments monadically.
    """
    items = list(xs)

    def go(index: int, acc: tuple) -> Any:
        if index == len(items):
            return monad.unit(list(acc))
        return monad.bind(f(items[index]), lambda y: go(index + 1, acc + (y,)))

    return go(0, ())


def sequence_m(monad: Monad, mvs: Sequence[Any]) -> Any:
    """``sequence``: run computations left-to-right, collecting results."""
    return map_m(monad, lambda mv: mv, mvs)


def sequence_(monad: Monad, mvs: Sequence[Any]) -> Any:
    """``sequence_``: run computations left-to-right, discarding results."""
    return fmap(monad, lambda _results: None, sequence_m(monad, mvs))


def msum(monad: MonadPlus, mvs: Iterable[Any]) -> Any:
    """``msum``: fold a collection of alternatives with ``mplus``."""
    result = monad.mzero()
    for mv in mvs:
        result = monad.mplus(result, mv)
    return result


def guard(monad: MonadPlus, condition: bool) -> Any:
    """``guard``: succeed with ``None`` or fail the whole branch."""
    return monad.unit(None) if condition else monad.mzero()


def when(monad: Monad, condition: bool, mv: Any) -> Any:
    """``when``: run ``mv`` only if ``condition`` holds."""
    return mv if condition else monad.unit(None)


def filter_m(monad: Monad, predicate: Callable[[Any], Any], xs: Iterable[Any]) -> Any:
    """``filterM``: filter with a monadic predicate (powerset trick included)."""
    items = list(xs)

    def go(index: int, acc: tuple) -> Any:
        if index == len(items):
            return monad.unit(list(acc))
        item = items[index]
        return monad.bind(
            predicate(item),
            lambda keep: go(index + 1, acc + (item,) if keep else acc),
        )

    return go(0, ())


def fold_m(monad: Monad, f: Callable[[Any, Any], Any], initial: Any, xs: Iterable[Any]) -> Any:
    """``foldM``: a monadic left fold."""
    items = list(xs)

    def go(index: int, acc: Any) -> Any:
        if index == len(items):
            return monad.unit(acc)
        return monad.bind(f(acc, items[index]), lambda acc2: go(index + 1, acc2))

    return go(0, initial)


def replicate_m(monad: Monad, n: int, mv: Any) -> Any:
    """``replicateM``: run ``mv`` n times, collecting the results."""
    return sequence_m(monad, [mv] * n)


def kleisli(monad: Monad, f: Callable[[Any], Any], g: Callable[[Any], Any]) -> Callable:
    """Kleisli composition ``f >=> g``."""
    return lambda a: monad.bind(f(a), g)


def gets_nd_set(monad: Monad, f: Callable[[Any], Iterable[Any]]) -> Any:
    """The paper's ``getsNDSet`` (5.3.2): examine the state, branch on a set.

    Requires ``monad`` to be both ``MonadState`` (to read the state) and
    ``MonadPlus`` (to offer each member of ``f state`` as an alternative).
    This single combinator is how store lookups return *all* abstract
    values bound at an address, each continuing the analysis separately.
    """
    if not isinstance(monad, MonadState):
        raise TypeError("gets_nd_set needs a MonadState")
    if not isinstance(monad, MonadPlus):
        raise TypeError("gets_nd_set needs a MonadPlus")
    return monad.bind(
        monad.get_state(),
        lambda s: msum(monad, [monad.unit(x) for x in f(s)]),
    )


# ---------------------------------------------------------------------------
# do-notation via generator replay
# ---------------------------------------------------------------------------


def run_do(monad: Monad, gen_fn: Callable[..., Generator], *args: Any, **kwargs: Any) -> Any:
    """Interpret a generator function as a do-block in ``monad``.

    Each ``yield mv`` binds a monadic value; the generator's ``return``
    value is passed to ``unit``.  Under nondeterminism a generator cannot
    be forked, so every branch *replays* the generator from the start,
    feeding back the prefix of already-chosen values.  The generator must
    therefore be deterministic in its inputs (no hidden effects), which
    all semantics in this package are.

    >>> listm = ListMonad()
    >>> def pairs():
    ...     x = yield [1, 2]
    ...     y = yield [10, 20]
    ...     return x + y
    >>> run_do(listm, pairs)
    [11, 21, 12, 22]
    """

    def step(chosen: tuple) -> Any:
        gen = gen_fn(*args, **kwargs)
        try:
            mv = gen.send(None)
            for value in chosen:
                mv = gen.send(value)
        except StopIteration as stop:
            return monad.unit(stop.value)
        return monad.bind(mv, lambda x: step(chosen + (x,)))

    return step(())


# ---------------------------------------------------------------------------
# The analysis monad: StorePassing s g = StateT g (StateT s [])   (paper 5.3.1)
# ---------------------------------------------------------------------------


class StorePassing(StateT):
    """The paper's two-level analysis monad ``StateT g (StateT s [])``.

    Desugared, a monadic value has type ``g -> s -> [((a, g), s)]``: given
    "guts" (e.g. a time-stamp/context) and a store, it produces a *set* of
    results, each paired with its own guts and store.  The outer level
    carries the guts, the inner level the store, and the list at the
    bottom supplies nondeterminism.

    Named accessors hide the ``lift`` plumbing of the monad stack
    (Liang-Hudak-Jones style): guts operations live on the outer level,
    store operations are lifted to the inner level, and
    :meth:`gets_nd_store` is the paper's ``lift $ getsNDSet ...``.
    """

    def __init__(self) -> None:
        self.store_level = StateT(ListMonad())
        super().__init__(self.store_level)

    # -- guts (outer state): time, context, ... ------------------------------

    def get_guts(self) -> Callable:
        return self.get_state()

    def put_guts(self, guts: Any) -> Callable:
        return self.put_state(guts)

    def gets_guts(self, f: Callable[[Any], Any]) -> Callable:
        return self.gets(f)

    def modify_guts(self, f: Callable[[Any], Any]) -> Callable:
        return self.modify(f)

    # -- store (inner state) --------------------------------------------------

    def get_store(self) -> Callable:
        return self.lift(self.store_level.get_state())

    def put_store(self, store: Any) -> Callable:
        return self.lift(self.store_level.put_state(store))

    def gets_store(self, f: Callable[[Any], Any]) -> Callable:
        return self.lift(self.store_level.gets(f))

    def modify_store(self, f: Callable[[Any], Any]) -> Callable:
        return self.lift(self.store_level.modify(f))

    def gets_nd_store(self, f: Callable[[Any], Iterable[Any]]) -> Callable:
        """``lift $ getsNDSet f``: branch on a set computed from the store."""
        return self.lift(gets_nd_set(self.store_level, f))

    # -- running ---------------------------------------------------------------

    def run(self, mv: Callable, guts: Any, store: Any) -> list:  # type: ignore[override]
        """``runStateT (runStateT mv guts) store``: a list of ``((a, g), s)``."""
        return mv(guts)(store)
