"""Transition-graph construction and DOT export."""

import pytest

from repro.analysis.graph import TransitionGraph, to_dot, transition_graph
from repro.core.addresses import KCFA, ZeroCFA
from repro.core.collecting import PerStateStoreCollecting
from repro.core.fixpoint import FixpointDiverged
from repro.core.store import BasicStore
from repro.cps.analysis import AbstractCPSInterface
from repro.cps.semantics import inject, mnext
from repro.corpus.cps_programs import PROGRAMS


def build_graph(name, addressing=None, max_states=100_000):
    addressing = addressing or KCFA(1)
    store = BasicStore()
    interface = AbstractCPSInterface(addressing, store)
    collecting = PerStateStoreCollecting(interface.monad, store, addressing.tau0())
    step = lambda ps: mnext(interface, ps)
    return transition_graph(
        collecting, step, inject(PROGRAMS[name]), max_states=max_states
    )


class TestConstruction:
    def test_identity_is_a_chain(self):
        graph = build_graph("identity")
        assert graph.node_count() >= 3
        # deterministic program: no branching nodes
        assert graph.branching_nodes() == []

    def test_exit_is_terminal_self_loop(self):
        graph = build_graph("identity")
        terminals = graph.terminal_nodes()
        assert terminals
        for t in terminals:
            assert graph.successors(t) in ([], [t])

    def test_mj09_matches_worklist_reachability(self):
        from repro.core.driver import run_analysis_worklist

        addressing = KCFA(1)
        store = BasicStore()
        interface = AbstractCPSInterface(addressing, store)
        collecting = PerStateStoreCollecting(interface.monad, store, addressing.tau0())
        step = lambda ps: mnext(interface, ps)
        graph = transition_graph(collecting, step, inject(PROGRAMS["mj09"]))
        fp = run_analysis_worklist(collecting, step, inject(PROGRAMS["mj09"]))
        assert frozenset(graph.nodes) == fp

    def test_omega_has_a_cycle(self):
        graph = build_graph("omega", addressing=ZeroCFA())
        # a cycle: some reachable node has an edge back to a predecessor
        on_cycle = [
            (src, dst) for src, dst in graph.edges if dst <= src and src != dst
        ]
        # index order is exploration order, so a back edge witnesses the loop
        assert on_cycle or any(src == dst for src, dst in graph.edges)

    def test_budget_enforced(self):
        with pytest.raises(FixpointDiverged):
            build_graph("mj09", max_states=2)

    def test_initial_node_is_injection(self):
        graph = build_graph("identity")
        (pstate, _guts), _store = graph.nodes[graph.initial]
        assert pstate == inject(PROGRAMS["identity"])

    def test_predecessors_inverse_of_successors(self):
        graph = build_graph("mj09")
        for src, dst in graph.edges:
            assert dst in graph.successors(src)
            assert src in graph.predecessors(dst)


class TestDot:
    def test_dot_structure(self):
        graph = build_graph("identity")
        dot = to_dot(graph)
        assert dot.startswith("digraph abstract_transitions {")
        assert dot.rstrip().endswith("}")
        assert "start -> n0" in dot
        assert dot.count("->") == graph.edge_count() + 1  # + the start edge

    def test_dot_is_deterministic(self):
        assert to_dot(build_graph("mj09")) == to_dot(build_graph("mj09"))

    def test_labels_escaped_and_truncated(self):
        graph = TransitionGraph(nodes=["x"], edges=[(0, 0)], initial=0)
        dot = to_dot(graph, label=lambda _c: 'quote " and ' + "y" * 100)
        assert '\\"' in dot

    def test_custom_label(self):
        graph = build_graph("identity")
        dot = to_dot(graph, label=lambda config: "NODE")
        assert 'label="NODE"' in dot
