"""Engine equivalence: kleene / worklist / depgraph agree everywhere.

The three engines are interchangeable fixed-point strategies over the
store-widened collecting domain (paper 5.2's third degree of freedom,
pushed further): whole-domain Kleene rounds, a dependency-blind frontier
worklist, and dependency-tracked re-evaluation.  Chaotic iteration of a
monotone functional converges to the same least fixed point regardless
of evaluation order, so all three must agree on the reached
configurations, the global store's flow tables, and hence every derived
metric -- across all three languages and context depths.
"""

import dataclasses

import pytest

from repro.cesk.analysis import analyse_cesk, analyse_cesk_engine, analyse_cesk_shared
from repro.core.fixpoint import ENGINES, STORE_IMPLS, global_store_explore
from repro.core.store import BasicStore, CountingStore, RecordingStore, unwrap_store
from repro.corpus.cps_programs import PROGRAMS as CPS_PROGRAMS
from repro.corpus.cps_programs import id_chain
from repro.corpus.fj_programs import PROGRAMS as FJ_PROGRAMS
from repro.corpus.lam_programs import PROGRAMS as LAM_PROGRAMS
from repro.cps.analysis import analyse, analyse_shared, analyse_with_engine
from repro.fj.analysis import analyse_fj, analyse_fj_engine, analyse_fj_shared

CPS_NAMES = sorted(CPS_PROGRAMS)
LAM_NAMES = sorted(LAM_PROGRAMS)
FJ_NAMES = sorted(FJ_PROGRAMS)


class TestCPSEngineEquivalence:
    @pytest.mark.parametrize("name", CPS_NAMES)
    @pytest.mark.parametrize("k", [0, 1])
    def test_engines_agree_with_kleene(self, name, k):
        program = CPS_PROGRAMS[name]
        reference = analyse_with_engine(program, "kleene", k=k)
        for engine in ("worklist", "depgraph"):
            result = analyse_with_engine(program, engine, k=k)
            assert result.configs() == reference.configs(), engine
            assert result.num_states() == reference.num_states(), engine
            assert result.flows_to() == reference.flows_to(), engine

    @pytest.mark.parametrize("name", CPS_NAMES)
    def test_kleene_engine_is_the_shared_store_analysis(self, name):
        """The ``kleene`` engine is exactly the paper's 8.2 widened analysis."""
        program = CPS_PROGRAMS[name]
        legacy = analyse_shared(program, 1)
        engine = analyse_with_engine(program, "kleene", k=1)
        assert engine.fp == legacy.fp

    def test_depgraph_on_generated_family(self):
        program = id_chain(6)
        reference = analyse_with_engine(program, "kleene", k=1)
        stats = {}
        result = analyse_with_engine(program, "depgraph", k=1, stats=stats)
        assert result.flows_to() == reference.flows_to()
        assert stats["evaluations"] >= stats["configurations"] > 0

    def test_counting_store_works_under_kleene_engine(self):
        """Counting composes with the kleene engine (= the legacy shared path)."""
        program = CPS_PROGRAMS["mj09"]
        plain = analyse_with_engine(program, "kleene", k=1)
        counted = analyse_with_engine(program, "kleene", k=1, counting=True)
        assert counted.flows_to() == plain.flows_to()
        assert counted.configs() == plain.configs()


class TestCESKEngineEquivalence:
    @pytest.mark.parametrize("name", LAM_NAMES)
    @pytest.mark.parametrize("k", [0, 1])
    def test_engines_agree_with_kleene(self, name, k):
        expr = LAM_PROGRAMS[name]
        reference = analyse_cesk_engine(expr, "kleene", k=k)
        for engine in ("worklist", "depgraph"):
            result = analyse_cesk_engine(expr, engine, k=k)
            assert result.configs() == reference.configs(), engine
            assert result.num_states() == reference.num_states(), engine
            assert result.flows_to() == reference.flows_to(), engine

    @pytest.mark.parametrize("name", LAM_NAMES)
    def test_kleene_engine_is_the_shared_store_analysis(self, name):
        expr = LAM_PROGRAMS[name]
        legacy = analyse_cesk_shared(expr, 1)
        engine = analyse_cesk_engine(expr, "kleene", k=1)
        assert engine.fp == legacy.fp

    def test_final_values_agree(self):
        expr = LAM_PROGRAMS["mj09"]
        results = {e: analyse_cesk_engine(expr, e) for e in ENGINES}
        finals = {e: r.final_values() for e, r in results.items()}
        assert finals["kleene"] == finals["worklist"] == finals["depgraph"]


class TestFJEngineEquivalence:
    @pytest.mark.parametrize("name", FJ_NAMES)
    @pytest.mark.parametrize("k", [0, 1])
    def test_engines_agree_with_kleene(self, name, k):
        program = FJ_PROGRAMS[name]
        reference = analyse_fj_engine(program, "kleene", k=k)
        for engine in ("worklist", "depgraph"):
            result = analyse_fj_engine(program, engine, k=k)
            assert result.configs() == reference.configs(), engine
            assert result.num_states() == reference.num_states(), engine
            assert result.class_flows() == reference.class_flows(), engine

    @pytest.mark.parametrize("name", FJ_NAMES)
    def test_kleene_engine_is_the_shared_store_analysis(self, name):
        program = FJ_PROGRAMS[name]
        legacy = analyse_fj_shared(program, 1)
        engine = analyse_fj_engine(program, "kleene", k=1)
        assert engine.fp == legacy.fp

    def test_final_classes_agree(self):
        program = FJ_PROGRAMS["animals"]
        finals = {e: analyse_fj_engine(program, e).final_classes() for e in ENGINES}
        assert finals["kleene"] == finals["worklist"] == finals["depgraph"]


class TestStoreImplEquivalence:
    """``versioned`` and ``persistent`` store backings agree everywhere.

    The versioned store changes how the worklist engines detect and
    propagate store growth (mutable store + changelog instead of
    persistent-map joins), not what they compute: every engine and
    store-impl combination must produce the identical widened fixed
    point -- configurations *and* global store -- across all three
    languages and the whole corpus.
    """

    @pytest.mark.parametrize("name", CPS_NAMES)
    @pytest.mark.parametrize("engine", ["worklist", "depgraph"])
    def test_cps_corpus(self, name, engine):
        program = CPS_PROGRAMS[name]
        persistent = analyse_with_engine(program, engine, k=1)
        versioned = analyse_with_engine(program, engine, k=1, store_impl="versioned")
        assert versioned.fp == persistent.fp
        assert versioned.flows_to() == persistent.flows_to()

    @pytest.mark.parametrize("name", LAM_NAMES)
    @pytest.mark.parametrize("engine", ["worklist", "depgraph"])
    def test_lam_corpus(self, name, engine):
        expr = LAM_PROGRAMS[name]
        persistent = analyse_cesk_engine(expr, engine, k=1)
        versioned = analyse_cesk_engine(expr, engine, k=1, store_impl="versioned")
        assert versioned.fp == persistent.fp
        assert versioned.flows_to() == persistent.flows_to()

    @pytest.mark.parametrize("name", FJ_NAMES)
    @pytest.mark.parametrize("engine", ["worklist", "depgraph"])
    def test_fj_corpus(self, name, engine):
        program = FJ_PROGRAMS[name]
        persistent = analyse_fj_engine(program, engine, k=1)
        versioned = analyse_fj_engine(program, engine, k=1, store_impl="versioned")
        assert versioned.fp == persistent.fp
        assert versioned.class_flows() == persistent.class_flows()

    @pytest.mark.parametrize("k", [0, 1])
    def test_versioned_agrees_with_kleene(self, k):
        program = CPS_PROGRAMS["mj09"]
        kleene = analyse_with_engine(program, "kleene", k=k)
        versioned = analyse_with_engine(
            program, "depgraph", k=k, store_impl="versioned"
        )
        assert versioned.fp == kleene.fp

    def test_versioned_on_generated_family(self):
        program = id_chain(8)
        stats = {}
        persistent = analyse_with_engine(program, "depgraph", k=1)
        versioned = analyse_with_engine(
            program, "depgraph", k=1, stats=stats, store_impl="versioned"
        )
        assert versioned.fp == persistent.fp
        assert stats["evaluations"] >= stats["configurations"] > 0

    def test_store_impls_are_named(self):
        assert STORE_IMPLS == ("persistent", "versioned")

    def test_kleene_rejects_versioned(self):
        from repro.core.addresses import KCFA

        with pytest.raises(ValueError, match="kleene"):
            analyse(KCFA(1), engine="kleene", store_impl="versioned")

    def test_unknown_store_impl_rejected(self):
        from repro.core.addresses import KCFA

        with pytest.raises(ValueError, match="store impl"):
            analyse(KCFA(1), engine="depgraph", store_impl="magnetic-tape")

    def test_versioned_needs_an_engine(self):
        from repro.core.addresses import KCFA

        with pytest.raises(ValueError, match="engine"):
            analyse(KCFA(1), store_impl="versioned")

    def test_counting_runs_on_versioned(self):
        """Counting stores have a versioned counterpart since the engines
        learned to saturate counts; the fixed point matches kleene."""
        from repro.core.addresses import KCFA

        program = CPS_PROGRAMS["mj09"]
        kleene = analyse(KCFA(1), store_like=CountingStore(), engine="kleene").run(program)
        fast = analyse(
            KCFA(1),
            store_like=CountingStore(),
            engine="depgraph",
            store_impl="versioned",
        ).run(program)
        assert fast.fp == kleene.fp


def _uninterned(value):
    """A structurally equal, pointer-fresh rebuild of a whole syntax tree."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _uninterned(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return type(value)(**fields)
    if isinstance(value, tuple):
        return tuple(_uninterned(item) for item in value)
    return value


class TestInternedVsPlain:
    """Hash-consing is invisible to the analyses.

    An interned (parser-canonicalized) program and a pointer-fresh
    rebuild of the same tree are structurally equal, so every analysis
    must produce equal fixed points for the two -- across languages and
    engines.  This pins down that the cached-hash/identity-eq layer
    changed only the cost of hashing, never its meaning.
    """

    @pytest.mark.parametrize("name", CPS_NAMES)
    def test_cps_corpus(self, name):
        program = CPS_PROGRAMS[name]
        plain = _uninterned(program)
        assert plain == program and plain is not program
        for engine in ENGINES:
            interned_result = analyse_with_engine(program, engine, k=1)
            plain_result = analyse_with_engine(plain, engine, k=1)
            assert interned_result.fp == plain_result.fp, engine

    def test_lam_spot_check(self):
        expr = LAM_PROGRAMS["church-two-two"]
        plain = _uninterned(expr)
        for engine in ENGINES:
            assert (
                analyse_cesk_engine(expr, engine, k=1).fp
                == analyse_cesk_engine(plain, engine, k=1).fp
            ), engine

    def test_fj_spot_check(self):
        program = FJ_PROGRAMS["visitor"]
        plain = _uninterned(program)
        for engine in ENGINES:
            assert (
                analyse_fj_engine(program, engine, k=1).fp
                == analyse_fj_engine(plain, engine, k=1).fp
            ), engine


class TestRecordingStore:
    def test_logs_reads_and_writes_only_while_bracketed(self):
        store_like = RecordingStore(BasicStore())
        sigma = store_like.bind(store_like.empty(), "a", frozenset([1]))
        assert store_like.reads == set() and store_like.writes == set()

        store_like.begin_log()
        store_like.fetch(sigma, "a")
        sigma = store_like.bind(sigma, "b", frozenset([2]))
        reads, writes = store_like.end_log()
        assert reads == frozenset(["a"])
        assert writes == frozenset(["b"])

        store_like.fetch(sigma, "b")  # after end_log: not recorded
        assert store_like.reads == {"a"}

    def test_update_counts_as_read_and_write(self):
        store_like = RecordingStore(CountingStore())
        sigma = store_like.bind(store_like.empty(), "a", frozenset([1]))
        store_like.begin_log()
        store_like.update(sigma, "a", frozenset([2]))
        reads, writes = store_like.end_log()
        assert "a" in reads and "a" in writes

    def test_store_elements_are_interchangeable(self):
        plain = BasicStore()
        recording = RecordingStore(BasicStore())
        s1 = plain.bind(plain.empty(), "x", frozenset([1]))
        s2 = recording.bind(recording.empty(), "x", frozenset([1]))
        assert s1 == s2
        assert unwrap_store(recording).__class__ is BasicStore


class TestEngineGuards:
    def test_unknown_engine_rejected(self):
        from repro.core.addresses import KCFA

        with pytest.raises(ValueError, match="unknown engine"):
            analyse(KCFA(1), engine="magic")

    def test_gc_allowed_on_kleene_engine(self):
        from repro.core.addresses import KCFA

        analysis = analyse(KCFA(1), gc=True, engine="kleene")
        result = analysis.run(CPS_PROGRAMS["mj09"])
        assert result.num_states() > 0

    def test_depgraph_requires_recording_store(self):
        """Calling the raw engine on an unwrapped domain fails loudly."""
        from repro.core.addresses import KCFA

        analysis = analyse(KCFA(1), shared=True)  # no engine: plain store
        with pytest.raises(TypeError, match="RecordingStore"):
            global_store_explore(
                analysis.collecting,
                analysis.step(),
                CPS_PROGRAMS["mj09"],
                track_deps=True,
            )


class TestGCEngineEquivalence:
    """Abstract GC runs on the worklist engines (both store impls) and
    computes the identical fixed point to the Kleene+GC baseline.

    On the persistent path each branch's result store arrives already
    swept by the woven-in collector; on the versioned path the engine
    runs each evaluation against a write overlay, sweeps reachability
    from every successor, and merges only the live writes.  The Kleene+GC
    iterates are monotone on every corpus program, so the grow-only
    worklist image converges to the same least fixed point.  (The full
    preset-by-preset corpus sweep lives in tests/test_config.py; these
    are the direct engine-level checks.)
    """

    ENGINE_IMPLS = [
        ("worklist", "persistent"),
        ("worklist", "versioned"),
        ("depgraph", "persistent"),
        ("depgraph", "versioned"),
    ]

    @pytest.mark.parametrize("name", CPS_NAMES)
    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_cps_corpus(self, name, engine, impl):
        from repro.core.addresses import KCFA

        program = CPS_PROGRAMS[name]
        reference = analyse(KCFA(1), gc=True, engine="kleene").run(program)
        result = analyse(KCFA(1), gc=True, engine=engine, store_impl=impl).run(program)
        assert result.fp == reference.fp

    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_lam_spot_check(self, engine, impl):
        from repro.core.addresses import KCFA

        expr = LAM_PROGRAMS["mj09"]
        reference = analyse_cesk(KCFA(1), gc=True, engine="kleene").run(expr)
        result = analyse_cesk(KCFA(1), gc=True, engine=engine, store_impl=impl).run(expr)
        assert result.fp == reference.fp

    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_fj_spot_check(self, engine, impl):
        from repro.core.addresses import KCFA

        program = FJ_PROGRAMS["visitor"]
        reference = analyse_fj(program, KCFA(1), gc=True, engine="kleene").run(program)
        result = analyse_fj(
            program, KCFA(1), gc=True, engine=engine, store_impl=impl
        ).run(program)
        assert result.fp == reference.fp

    def test_gc_sweeps_dead_bindings_out_of_the_global_store(self):
        """The GC'd global store is a subset of the unswept one."""
        from repro.core.addresses import KCFA

        program = LAM_PROGRAMS["church-two-two"]
        plain = analyse_cesk(KCFA(1), engine="depgraph", store_impl="versioned").run(program)
        swept = analyse_cesk(
            KCFA(1), gc=True, engine="depgraph", store_impl="versioned"
        ).run(program)
        plain_addrs = set(plain.global_store().keys())
        swept_addrs = set(swept.global_store().keys())
        assert swept_addrs <= plain_addrs

    def test_gc_engine_stats_report_fewer_evaluations_than_kleene(self):
        from repro.core.addresses import KCFA
        from repro.corpus.cps_programs import id_chain

        program = id_chain(12)
        kleene_stats: dict = {}
        fast_stats: dict = {}
        kleene = analyse(KCFA(1), gc=True, engine="kleene")
        kleene.run(program)
        kleene_stats = kleene.last_stats
        fast = analyse(KCFA(1), gc=True, engine="depgraph", store_impl="versioned")
        fast.run(program)
        fast_stats = fast.last_stats
        assert fast_stats["evaluations"] < kleene_stats["evaluations"]


class TestCountingEngineEquivalence:
    """Counting stores run on the worklist engines via count saturation.

    At the Kleene fixed point every step-written address has count MANY
    (the confirming round re-binds it once more), so the engines track
    written addresses through the write log and saturate their counts
    after convergence -- the identical fixed point, store included.
    """

    ENGINE_IMPLS = TestGCEngineEquivalence.ENGINE_IMPLS

    @pytest.mark.parametrize("name", CPS_NAMES)
    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_cps_corpus(self, name, engine, impl):
        program = CPS_PROGRAMS[name]
        reference = analyse_with_engine(program, "kleene", k=1, counting=True)
        result = analyse_with_engine(
            program, engine, k=1, counting=True, store_impl=impl
        )
        assert result.fp == reference.fp

    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_lam_spot_check(self, engine, impl):
        from repro.core.addresses import KCFA

        expr = LAM_PROGRAMS["church-two-two"]
        reference = analyse_cesk(
            KCFA(1), store_like=CountingStore(), engine="kleene"
        ).run(expr)
        result = analyse_cesk(
            KCFA(1), store_like=CountingStore(), engine=engine, store_impl=impl
        ).run(expr)
        assert result.fp == reference.fp

    @pytest.mark.parametrize("engine,impl", ENGINE_IMPLS)
    def test_fj_spot_check(self, engine, impl):
        from repro.core.addresses import KCFA

        program = FJ_PROGRAMS["animals"]
        reference = analyse_fj(
            program, KCFA(1), store_like=CountingStore(), engine="kleene"
        ).run(program)
        result = analyse_fj(
            program, KCFA(1), store_like=CountingStore(), engine=engine, store_impl=impl
        ).run(program)
        assert result.fp == reference.fp

    def test_seed_bindings_keep_their_counts(self):
        """Saturation only touches step-written addresses: the halt
        continuation, bound once when the store is seeded, stays ONE."""
        from repro.cesk.machine import HALT_ADDRESS
        from repro.core.addresses import KCFA
        from repro.core.lattice import AbsNat

        expr = LAM_PROGRAMS["id-simple"]
        result = analyse_cesk(
            KCFA(1), store_like=CountingStore(), engine="depgraph", store_impl="versioned"
        ).run(expr)
        assert result.store_like.count(result.global_store(), HALT_ADDRESS) is AbsNat.ONE

    def test_gc_and_counting_compose_on_worklist_engines(self):
        from repro.core.addresses import KCFA

        program = CPS_PROGRAMS["mj09"]
        reference = analyse(
            KCFA(1), store_like=CountingStore(), gc=True, engine="kleene"
        ).run(program)
        for engine, impl in self.ENGINE_IMPLS:
            result = analyse(
                KCFA(1), store_like=CountingStore(), gc=True, engine=engine, store_impl=impl
            ).run(program)
            assert result.fp == reference.fp, (engine, impl)


class TestFusedTransitionMatrix:
    """The transition axis joins the equivalence matrix: on every engine
    the staged (fused) step computes the generic kleene fixed point.

    The deep fused-vs-generic matrices (per engine x store-impl cell, GC
    and counting composition, per-state domains, read/write-log parity)
    live in ``tests/test_fused.py``; this class keeps the fused axis
    visible next to the engine and store-impl matrices it extends --
    every row compares against the one generic kleene reference.
    """

    ENGINE_IMPLS = [
        ("kleene", "persistent"),
        ("worklist", "persistent"),
        ("worklist", "versioned"),
        ("depgraph", "persistent"),
        ("depgraph", "versioned"),
    ]

    @pytest.mark.parametrize("name", CPS_NAMES)
    def test_cps_corpus(self, name):
        program = CPS_PROGRAMS[name]
        reference = analyse_with_engine(program, "kleene", k=1)
        for engine, impl in self.ENGINE_IMPLS:
            result = analyse_with_engine(
                program, engine, k=1, store_impl=impl, transition="fused"
            )
            assert result.fp == reference.fp, (engine, impl)

    @pytest.mark.parametrize("name", LAM_NAMES)
    def test_lam_corpus(self, name):
        expr = LAM_PROGRAMS[name]
        reference = analyse_cesk_engine(expr, "kleene", k=1)
        for engine, impl in self.ENGINE_IMPLS:
            result = analyse_cesk_engine(
                expr, engine, k=1, store_impl=impl, transition="fused"
            )
            assert result.fp == reference.fp, (engine, impl)

    @pytest.mark.parametrize("name", FJ_NAMES)
    def test_fj_corpus(self, name):
        program = FJ_PROGRAMS[name]
        reference = analyse_fj_engine(program, "kleene", k=1)
        for engine, impl in self.ENGINE_IMPLS:
            result = analyse_fj_engine(
                program, engine, k=1, store_impl=impl, transition="fused"
            )
            assert result.fp == reference.fp, (engine, impl)
