"""CPS syntax: the grammar of the paper's Figure 1.

::

    lam  in Lam  ::= (lambda (v1 ... vn) call)
    f,ae in AExp  = Var + Lam
    call in Call ::= (f ae1 ... aen) | Exit

Terms are frozen dataclasses with structural equality and hashing, so
they can sit inside machine states inside powerset lattices.  Following
the paper, k-CFA time-stamps are sequences *of the call terms
themselves* (``Time = [CExp]``), which structural equality supports
directly.

Beyond the grammar the module provides :func:`free_vars`,
:func:`subterms`, :func:`call_sites`, a pretty-printer (:func:`pp`) that
round-trips through :mod:`repro.cps.parser`, and :func:`alphatize`
(unique variable names -- classical hygiene before monovariant
analysis).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Iterator, Union

Var = str


class AExp:
    """An atomic expression: a variable reference or a lambda term."""

    __slots__ = ()


class CExp:
    """A call expression: an application or ``Exit``."""

    __slots__ = ()


@hash_consed
@dataclass(frozen=True)
class Ref(AExp):
    """A variable reference."""

    var: Var

    def __repr__(self) -> str:
        return self.var


@hash_consed
@dataclass(frozen=True)
class Lam(AExp):
    """``(lambda (v1 ... vn) call)``: the only value-forming expression."""

    params: tuple[Var, ...]
    body: "CExp"

    def __repr__(self) -> str:
        return pp(self)


@hash_consed
@dataclass(frozen=True)
class Call(CExp):
    """``(f ae1 ... aen)``: application of a function to arguments."""

    fun: AExp
    args: tuple[AExp, ...]

    def __repr__(self) -> str:
        return pp(self)


@hash_consed
@dataclass(frozen=True)
class Exit(CExp):
    """The terminal call expression."""

    def __repr__(self) -> str:
        return "(exit)"


Term = Union[AExp, CExp]


def free_vars(term: Term) -> frozenset:
    """Free variables of an atomic or call expression."""
    if isinstance(term, Ref):
        return frozenset([term.var])
    if isinstance(term, Lam):
        return free_vars(term.body) - frozenset(term.params)
    if isinstance(term, Call):
        out = free_vars(term.fun)
        for arg in term.args:
            out |= free_vars(arg)
        return out
    if isinstance(term, Exit):
        return frozenset()
    raise TypeError(f"not a CPS term: {term!r}")


def subterms(term: Term) -> Iterator[Term]:
    """All subterms (including ``term`` itself), preorder."""
    yield term
    if isinstance(term, Lam):
        yield from subterms(term.body)
    elif isinstance(term, Call):
        yield from subterms(term.fun)
        for arg in term.args:
            yield from subterms(arg)


def call_sites(term: Term) -> list[Call]:
    """All application sites in a term, in preorder."""
    return [t for t in subterms(term) if isinstance(t, Call)]


def lambdas(term: Term) -> list[Lam]:
    """All lambda terms in a term, in preorder."""
    return [t for t in subterms(term) if isinstance(t, Lam)]


def variables(term: Term) -> frozenset:
    """Every variable name occurring in ``term`` (bound or free)."""
    out: set = set()
    for sub in subterms(term):
        if isinstance(sub, Ref):
            out.add(sub.var)
        elif isinstance(sub, Lam):
            out.update(sub.params)
    return frozenset(out)


def is_closed(call: CExp) -> bool:
    """A program is a closed call expression."""
    return not free_vars(call)


def pp(term: Term) -> str:
    """Pretty-print a term back to its s-expression concrete syntax."""
    if isinstance(term, Ref):
        return term.var
    if isinstance(term, Lam):
        return f"(lambda ({' '.join(term.params)}) {pp(term.body)})"
    if isinstance(term, Call):
        parts = [pp(term.fun)] + [pp(arg) for arg in term.args]
        return "(" + " ".join(parts) + ")"
    if isinstance(term, Exit):
        return "(exit)"
    raise TypeError(f"not a CPS term: {term!r}")


def alphatize(term: Term, fresh: Iterator[str] | None = None, env: dict | None = None) -> Term:
    """Rename bound variables so every binder introduces a distinct name.

    Monovariant analyses (0CFA) key the store by variable name; distinct
    binders sharing a name would be merged spuriously, so corpus programs
    are alphatized before analysis.  Free variables are left untouched.
    """
    if fresh is None:
        fresh = (f"%{i}" for i in itertools.count())
    if env is None:
        env = {}
    if isinstance(term, Ref):
        return Ref(env.get(term.var, term.var))
    if isinstance(term, Lam):
        renamed = {param: f"{param}{next(fresh)}" for param in term.params}
        inner = dict(env)
        inner.update(renamed)
        return Lam(
            tuple(renamed[param] for param in term.params),
            alphatize(term.body, fresh, inner),
        )
    if isinstance(term, Call):
        return Call(
            alphatize(term.fun, fresh, env),
            tuple(alphatize(arg, fresh, env) for arg in term.args),
        )
    if isinstance(term, Exit):
        return term
    raise TypeError(f"not a CPS term: {term!r}")


def term_size(term: Term) -> int:
    """Number of subterms; the size measure used by the benchmark tables."""
    return sum(1 for _ in subterms(term))
