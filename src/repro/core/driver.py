"""``run_analysis``: the paper's three degrees of freedom, tied together (5.2, 7).

``runAnalysis`` in the paper::

    runAnalysis :: (CPSInterface m a, Lattice fp, Collecting m (PSigma a) fp)
                => CExp -> fp
    runAnalysis e = exploreFP mnext (e, Map.empty)

Its signature names exactly what can vary:  (1) the monad, (2) the
semantic-interface implementation, and (3) the analysis lattice with its
fixed-point computation.  Here those arrive as the ``step`` function
(already closed over a monad and an interface implementation by the
language package) and a :class:`~repro.core.fixpoint.Collecting`
instance; everything else is inert plumbing.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.collecting import PerStateStoreCollecting
from repro.core.fixpoint import Collecting, explore_fp, worklist_explore


def run_analysis(
    collecting: Collecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_steps: int = 1_000_000,
) -> Any:
    """Compute the collecting semantics: ``exploreFP step (inject initial)``."""
    return explore_fp(collecting, step, initial_state, max_steps=max_steps)


def run_analysis_worklist(
    collecting: PerStateStoreCollecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_states: int = 1_000_000,
) -> frozenset:
    """Same fixed point as :func:`run_analysis` on per-state-store domains,
    computed by a frontier worklist (each configuration stepped once)."""
    return worklist_explore(
        collecting, step, initial_state, collecting.successors_of, max_states=max_states
    )


@dataclass
class AnalysisRun:
    """A timed analysis outcome, used by the benchmark harness and reports."""

    result: Any
    seconds: float
    label: str = ""
    metrics: dict = field(default_factory=dict)


def timed_analysis(
    collecting: Collecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    label: str = "",
    worklist: bool = False,
) -> AnalysisRun:
    """Run an analysis under a wall-clock timer (benchmark harness helper)."""
    start = _time.perf_counter()
    if worklist:
        if not isinstance(collecting, PerStateStoreCollecting):
            raise TypeError("worklist evaluation needs a per-state-store domain")
        result = run_analysis_worklist(collecting, step, initial_state)
    else:
        result = run_analysis(collecting, step, initial_state)
    elapsed = _time.perf_counter() - start
    return AnalysisRun(result=result, seconds=elapsed, label=label)
