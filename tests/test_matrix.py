"""The full configuration matrix, per language.

The paper's framework promises that the degrees of freedom compose:
any ``Addressable`` x any ``StoreLike`` x {per-state, shared} x {GC, no
GC} is a sound analysis.  This module runs the entire matrix on one
small program per language and checks the two invariants every cell
must satisfy:

* the concrete answer is covered;
* the analysis terminates with a non-trivial state set.
"""

import pytest

from repro.core.addresses import BoundedNat, KCFA, LContext, ZeroCFA
from repro.core.store import BasicStore, CountingStore

ADDRESSINGS = [
    pytest.param(lambda: ZeroCFA(), id="0cfa"),
    pytest.param(lambda: KCFA(1), id="1cfa"),
    pytest.param(lambda: KCFA(2), id="2cfa"),
    pytest.param(lambda: LContext(2), id="lctx2"),
    pytest.param(lambda: BoundedNat(16), id="bound16"),
]
STORES = [
    pytest.param(lambda: BasicStore(), id="basic"),
    pytest.param(lambda: CountingStore(), id="counting"),
]
SHAPES = [
    pytest.param((False, False), id="per-state"),
    pytest.param((True, False), id="shared"),
    pytest.param((False, True), id="per-state+gc"),
    pytest.param((True, True), id="shared+gc"),
]


@pytest.mark.parametrize("make_addressing", ADDRESSINGS)
@pytest.mark.parametrize("make_store", STORES)
@pytest.mark.parametrize("shape", SHAPES)
class TestCPSMatrix:
    def test_cps_cell(self, make_addressing, make_store, shape):
        from repro.cps.analysis import analyse
        from repro.cps.concrete import interpret
        from repro.corpus.cps_programs import PROGRAMS

        shared, gc = shape
        program = PROGRAMS["mj09"]
        interpret(program)  # sanity: the program terminates concretely
        analysis = analyse(
            make_addressing(), store_like=make_store(), shared=shared, gc=gc
        )
        result = analysis.run(program, worklist=not shared)
        assert result.num_states() >= 3
        # the Exit control point is reached in every configuration
        assert result.reaching_exit()


@pytest.mark.parametrize("make_addressing", ADDRESSINGS)
@pytest.mark.parametrize("make_store", STORES)
@pytest.mark.parametrize("shape", SHAPES)
class TestCESKMatrix:
    def test_cesk_cell(self, make_addressing, make_store, shape):
        from repro.cesk.analysis import analyse_cesk
        from repro.cesk.concrete import evaluate
        from repro.corpus.lam_programs import PROGRAMS

        shared, gc = shape
        program = PROGRAMS["mj09"]
        concrete = evaluate(program)
        analysis = analyse_cesk(
            make_addressing(), store_like=make_store(), shared=shared, gc=gc
        )
        result = analysis.run(program, worklist=not shared)
        assert concrete.lam in result.final_values()


@pytest.mark.parametrize("make_addressing", ADDRESSINGS)
@pytest.mark.parametrize("make_store", STORES)
@pytest.mark.parametrize("shape", SHAPES)
class TestFJMatrix:
    def test_fj_cell(self, make_addressing, make_store, shape):
        from repro.fj.analysis import analyse_fj
        from repro.fj.concrete import evaluate_fj
        from repro.corpus.fj_programs import PROGRAMS

        shared, gc = shape
        program = PROGRAMS["animals"]
        concrete = evaluate_fj(program)
        analysis = analyse_fj(
            program, make_addressing(), store_like=make_store(), shared=shared, gc=gc
        )
        result = analysis.run(program, worklist=not shared)
        assert concrete.cls in result.final_classes()


class TestMatrixCoherence:
    """Cross-cell relationships that must hold regardless of configuration."""

    @pytest.mark.parametrize("make_addressing", ADDRESSINGS)
    def test_shared_covers_per_state_everywhere(self, make_addressing):
        from repro.cps.analysis import analyse
        from repro.corpus.cps_programs import PROGRAMS

        program = PROGRAMS["mj09"]
        per_state = analyse(make_addressing()).run(program)
        shared = analyse(make_addressing(), shared=True).run(program)
        for var, lams in per_state.flows_to().items():
            assert lams <= shared.flows_to().get(var, frozenset())

    @pytest.mark.parametrize("make_store", STORES)
    def test_store_choice_does_not_change_flows(self, make_store):
        from repro.cps.analysis import analyse
        from repro.core.addresses import KCFA
        from repro.corpus.cps_programs import PROGRAMS

        program = PROGRAMS["mj09"]
        reference = analyse(KCFA(1)).run(program).flows_to()
        result = analyse(KCFA(1), store_like=make_store()).run(program).flows_to()
        assert result == reference

    @pytest.mark.parametrize("make_addressing", ADDRESSINGS)
    def test_gc_only_shrinks_stores(self, make_addressing):
        from repro.cps.analysis import analyse
        from repro.corpus.cps_programs import PROGRAMS

        program = PROGRAMS["mj09"]
        plain = analyse(make_addressing()).run(program)
        swept = analyse(make_addressing(), gc=True).run(program)
        assert swept.store_size() <= plain.store_size()
