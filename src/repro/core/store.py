"""``StoreLike`` and counting stores: the store as a swappable component (6.2-6.3).

The paper's class::

    class (Eq a, Lattice s, Lattice d) => StoreLike a s d | s -> a, s -> d where
      sigma0      :: s
      bind        :: s -> a -> d -> s
      replace     :: s -> a -> d -> s
      fetch       :: s -> a -> d
      filterStore :: s -> (a -> Bool) -> s

binds together addresses ``a``, a store representation ``s`` and the
store co-domain ``d``.  Here a :class:`StoreLike` object carries its
value-set lattice and exposes the store-set lattice (needed by the
store-sharing Galois connection of 6.5).

Four instances:

* :class:`BasicStore` -- ``a :-> P(Val)``, the plain join-on-bind store;
* :class:`VersionedStore` -- the same co-domain over an engine-owned
  *mutable* :class:`MutableStore` with per-address change versions, the
  O(delta) backing of the worklist engines (see PERFORMANCE.md);
* :class:`CountingStore` -- ``a :-> (P(Val), AbsNat)``: every binding also
  tracks how many times its address has been allocated, in the abstract
  naturals ``{0,1,inf}`` (6.3).  The :class:`ACounter` mix-in exposes the
  counts; a count of 1 licenses *strong updates* via :meth:`StoreLike.update`;
* :class:`VersionedCountingStore` -- the counting co-domain over a
  :class:`MutableStore`, so abstract counting runs on the worklist
  engines' O(delta) loop too (the engine saturates step-written counts
  on convergence, reproducing the Kleene counting fixed point -- see
  :func:`repro.core.fixpoint.global_store_explore`).

Because the store is parameterized over addresses and value sets, these
instances are reused untouched by all three language definitions.

:class:`RecordingStore` is a transparent decorator over any other
instance: it can log which addresses a bracketed computation fetched and
bound.  The dependency-tracked fixed-point engine
(:func:`repro.core.fixpoint.global_store_explore`) brackets each
configuration's evaluation with :meth:`RecordingStore.begin_log` /
:meth:`RecordingStore.end_log` to learn the configuration's store
footprint without touching the semantics.  The *bracketing protocol*:
``begin_log`` opens exactly one log, every ``fetch`` inside the bracket
is recorded as a read (including fetches of addresses first bound after
the log opened -- the abstract-GC sweep depends on this), every
``bind``/``replace``/``update`` as a write, and ``end_log`` must close
the bracket even when the bracketed step raises; brackets never nest.

:class:`GCOverlay` is the write overlay the versioned engine threads
through an evaluation when abstract GC is on: reads fall through to the
shared global :class:`MutableStore`, writes stay private until the
engine has swept reachability over the evaluation's successors and
merges only the live ones (via ``merge_entry``) into the global store.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import ChainMap
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from repro.core.lattice import (
    AbsNat,
    AbsNatLattice,
    Lattice,
    MapLattice,
    PairLattice,
    PowersetLattice,
)
from repro.util.pcollections import PMap, pmap


#: Sentinel distinguishing "address unbound" from "address bound to None".
_UNBOUND = object()


class StoreLike(ABC):
    """The store abstraction: create, bind, replace, fetch, filter.

    ``d`` (the co-domain) is always a value-*set* here, i.e. an element
    of ``self.value_lattice`` (a powerset lattice), matching the paper's
    use ``StoreLike a s (P (Val a))``.
    """

    def __init__(self, value_lattice: Lattice | None = None):
        self.value_lattice: Lattice = value_lattice or PowersetLattice()

    @abstractmethod
    def empty(self) -> Any:
        """``sigma0``: the empty store."""

    @abstractmethod
    def bind(self, store: Any, addr: Hashable, d: Any) -> Any:
        """Weak update: join ``d`` into the values at ``addr``."""

    @abstractmethod
    def replace(self, store: Any, addr: Hashable, d: Any) -> Any:
        """Strong update: overwrite the values at ``addr`` with ``d``."""

    @abstractmethod
    def fetch(self, store: Any, addr: Hashable) -> Any:
        """Look up the value set at ``addr`` (bottom when unbound)."""

    @abstractmethod
    def filter_store(self, store: Any, keep: Callable[[Hashable], bool]) -> Any:
        """Restrict the store's domain to addresses satisfying ``keep``."""

    @abstractmethod
    def addresses(self, store: Any) -> Iterable[Hashable]:
        """The store's domain (for reachability sweeps and reports)."""

    @abstractmethod
    def lattice(self) -> Lattice:
        """The lattice of stores themselves (for widening and joins)."""

    # -- derived -----------------------------------------------------------

    def bind_one(self, store: Any, addr: Hashable, value: Any) -> Any:
        """Bind a single value, wrapped as a singleton (the common case)."""
        return self.bind(store, addr, frozenset([value]))

    def update(self, store: Any, addr: Hashable, d: Any) -> Any:
        """Cardinality-aware update: strong when provably safe, else weak.

        The default store has no cardinality information, so this is a
        weak update; :class:`CountingStore` overrides it to replace when
        the abstract count at ``addr`` is exactly one.
        """
        return self.bind(store, addr, d)


class BasicStore(StoreLike):
    """``Store a = a :-> P(Val)`` with join-on-bind (the paper's default)."""

    def __init__(self, value_lattice: Lattice | None = None):
        super().__init__(value_lattice)
        self._lattice = MapLattice(self.value_lattice)

    def empty(self) -> PMap:
        return pmap()

    def bind(self, store: PMap, addr: Hashable, d: Any) -> PMap:
        old = store.get(addr, _UNBOUND)
        if old is _UNBOUND:
            return store.set(addr, d)
        return store.set(addr, self.value_lattice.join(old, d))

    def replace(self, store: PMap, addr: Hashable, d: Any) -> PMap:
        return store.set(addr, d)

    def fetch(self, store: PMap, addr: Hashable) -> Any:
        value = store.get(addr, _UNBOUND)
        if value is _UNBOUND:
            return self.value_lattice.bottom()
        return value

    def filter_store(self, store: PMap, keep: Callable[[Hashable], bool]) -> PMap:
        return store.restrict(keep)

    def addresses(self, store: PMap) -> Iterable[Hashable]:
        return store.keys()

    def lattice(self) -> Lattice:
        return self._lattice


class ACounter(ABC):
    """The paper's ``ACounter``: stores that can report abstract counts (6.3)."""

    @abstractmethod
    def count(self, store: Any, addr: Hashable) -> AbsNat:
        """How many concrete allocations ``addr`` may stand for."""


class CountingStore(StoreLike, ACounter):
    """``CountingStore a d = a :-> (d, AbsNat)``: store + abstract counter (6.3).

    ``bind`` joins the value set *and* bumps the count with the abstract
    addition ``(+) 1``, so a count of :data:`AbsNat.ONE` proves the
    address was allocated along every path at most once -- the
    cardinality bound behind must-alias and environment analysis.  The
    counting store plugs into any analysis in place of a
    :class:`BasicStore` with **no change to the semantics**, which is the
    point of 6.3 (checked by experiment E5).
    """

    def __init__(self, value_lattice: Lattice | None = None):
        super().__init__(value_lattice)
        self.count_lattice = AbsNatLattice()
        self._entry_lattice = PairLattice(self.value_lattice, self.count_lattice)
        self._lattice = MapLattice(self._entry_lattice)

    def empty(self) -> PMap:
        return pmap()

    def bind(self, store: PMap, addr: Hashable, d: Any) -> PMap:
        if addr in store:
            old_d, old_n = store[addr]
            return store.set(
                addr, (self.value_lattice.join(old_d, d), old_n.plus(AbsNat.ONE))
            )
        return store.set(addr, (d, AbsNat.ONE))

    def replace(self, store: PMap, addr: Hashable, d: Any) -> PMap:
        # A strong update rewrites the value but does not allocate, so the
        # count is preserved (it still bounds how many concrete addresses
        # this abstract address denotes).
        if addr in store:
            _old_d, old_n = store[addr]
            return store.set(addr, (d, old_n))
        return store.set(addr, (d, AbsNat.ONE))

    def fetch(self, store: PMap, addr: Hashable) -> Any:
        if addr in store:
            return store[addr][0]
        return self.value_lattice.bottom()

    def count(self, store: PMap, addr: Hashable) -> AbsNat:
        if addr in store:
            return store[addr][1]
        return AbsNat.ZERO

    def filter_store(self, store: PMap, keep: Callable[[Hashable], bool]) -> PMap:
        return store.restrict(keep)

    def addresses(self, store: PMap) -> Iterable[Hashable]:
        return store.keys()

    def lattice(self) -> Lattice:
        return self._lattice

    def update(self, store: PMap, addr: Hashable, d: Any) -> PMap:
        """Strong update when the count permits, weak otherwise."""
        if self.count(store, addr) is AbsNat.ONE:
            return self.replace(store, addr, d)
        return self.bind(store, addr, d)

    def singleton_addresses(self, store: PMap) -> frozenset:
        """Addresses whose abstract count is exactly one (must-alias facts)."""
        return frozenset(a for a in store if store[a][1] is AbsNat.ONE)

    def saturate(self, store: PMap, addrs: Iterable[Hashable]) -> PMap:
        """Bump the counts at ``addrs`` by one abstract allocation each.

        The worklist engines call this once, after convergence, on the
        set of addresses any evaluation bound: at the Kleene fixed point
        every such address has been re-bound at least once more (the
        confirming round re-steps every configuration), so its count has
        saturated at MANY.  Re-adding one abstract allocation per
        step-written address reproduces exactly that fixed point without
        paying for the re-evaluations.  Addresses absent from the store
        (e.g. writes abstract GC swept away) are left absent.
        """
        for addr in addrs:
            if addr in store:
                d, n = store[addr]
                store = store.set(addr, (d, n.plus(AbsNat.ONE)))
        return store


class RecordingStore(StoreLike):
    """A delegating store that can log the addresses a computation touches.

    Store *elements* are untouched -- the wrapper delegates every
    operation to ``inner`` -- so a store built through a recording
    wrapper is interchangeable with one built directly.  Between
    :meth:`begin_log` and :meth:`end_log`, every ``fetch`` records its
    address as a read and every ``bind``/``replace``/``update`` records
    its address as a write; the dependency-tracked engine uses the two
    sets to decide which configurations a store change can affect.
    """

    def __init__(self, inner: StoreLike):
        super().__init__(inner.value_lattice)
        self.inner = inner
        self.logging = False
        self.reads: set = set()
        self.writes: set = set()

    def begin_log(self) -> None:
        """Start a fresh read/write log for one bracketed evaluation.

        Brackets do not nest: a reentrant ``begin_log`` would silently
        discard the outer bracket's log, so it is an error.
        """
        if self.logging:
            raise RuntimeError(
                "RecordingStore.begin_log while a log is already open; "
                "end_log the outer bracket first (brackets do not nest)"
            )
        self.logging = True
        self.reads = set()
        self.writes = set()

    def end_log(self) -> tuple[frozenset, frozenset]:
        """Stop logging and return the ``(reads, writes)`` address sets."""
        self.logging = False
        return frozenset(self.reads), frozenset(self.writes)

    def empty(self) -> Any:
        return self.inner.empty()

    def bind(self, store: Any, addr: Hashable, d: Any) -> Any:
        if self.logging:
            self.writes.add(addr)
        return self.inner.bind(store, addr, d)

    def replace(self, store: Any, addr: Hashable, d: Any) -> Any:
        if self.logging:
            self.writes.add(addr)
        return self.inner.replace(store, addr, d)

    def update(self, store: Any, addr: Hashable, d: Any) -> Any:
        if self.logging:
            # a cardinality-aware update consults the count at ``addr``
            # before writing, so it is both a read and a write
            self.reads.add(addr)
            self.writes.add(addr)
        return self.inner.update(store, addr, d)

    def fetch(self, store: Any, addr: Hashable) -> Any:
        if self.logging:
            self.reads.add(addr)
        return self.inner.fetch(store, addr)

    def filter_store(self, store: Any, keep: Callable[[Hashable], bool]) -> Any:
        return self.inner.filter_store(store, keep)

    def addresses(self, store: Any) -> Iterable[Hashable]:
        return self.inner.addresses(store)

    def lattice(self) -> Lattice:
        return self.inner.lattice()


class MutableStore:
    """The store element a :class:`VersionedStore` operates on.

    A plain mutable mapping ``addr -> value-set`` plus the versioning
    instrumentation the delta-driven engine consumes:

    * ``versions[addr]`` -- a per-address counter, bumped exactly when a
      bind/replace *changes* the value set at ``addr`` (a bind that adds
      nothing bumps nothing);
    * ``changelog`` -- the addresses of those changes in order, so "what
      changed since mark ``m``" is the slice ``changelog[m:]`` and "did
      anything change" is an integer comparison of lengths.

    Identity semantics: two mutable stores are equal only when they are
    the same object.  For value semantics, freeze to a
    :class:`~repro.util.pcollections.PMap` via :meth:`VersionedStore.freeze`.

    The read-side mapping protocol (``get``/``in``/``keys``/``len``)
    matches :class:`~repro.util.pcollections.PMap`, so
    :class:`VersionedStore`'s read operations accept either a live
    mutable store or a frozen snapshot.
    """

    __slots__ = ("data", "versions", "changelog")

    def __init__(self, entries: Any = ()):  # Mapping | iterable of pairs
        self.data: dict = dict(entries)
        self.versions: dict = {addr: 1 for addr in self.data}
        self.changelog: list = list(self.data)

    # -- read-side mapping protocol (shared with PMap) ----------------------

    def get(self, addr: Hashable, default: Any = None) -> Any:
        return self.data.get(addr, default)

    def __contains__(self, addr: object) -> bool:
        return addr in self.data

    def __len__(self) -> int:
        return len(self.data)

    def keys(self):
        return self.data.keys()

    def copy(self) -> "MutableStore":
        dup = MutableStore()
        dup.data = dict(self.data)
        dup.versions = dict(self.versions)
        dup.changelog = list(self.changelog)
        return dup

    def version(self, addr: Hashable) -> int:
        """The monotone per-address change counter (0 when unbound)."""
        return self.versions.get(addr, 0)

    def mark(self) -> int:
        """The current change count; pair with :meth:`changed_since`."""
        return len(self.changelog)

    def changed_since(self, mark: int) -> list:
        """Addresses whose value set changed after ``mark``, in order."""
        return self.changelog[mark:]

    # -- snapshot / restore (the warm-start boundary) ------------------------

    def snapshot(self) -> "StoreSnapshot":
        """An immutable image of the store *and* its per-address versions.

        Unlike :meth:`VersionedStore.freeze` (data only), a snapshot keeps
        the version counters, so two snapshots of the same analysis can be
        diffed cell-by-cell (``versions`` differ exactly at the addresses
        whose value sets changed) and a :meth:`restore`\\ d store continues
        the version sequence instead of restarting it.
        """
        return StoreSnapshot(data=pmap(self.data), versions=pmap(self.versions))

    @classmethod
    def restore(cls, snapshot: "StoreSnapshot") -> "MutableStore":
        """A live mutable store resumed from a :class:`StoreSnapshot`.

        The changelog starts *empty*: ``changed_since(0)`` on the restored
        store reports exactly the growth since the snapshot, which is what
        the warm-start engine path consumes (a plain ``__init__`` or
        :meth:`VersionedStore.thaw` would prime the changelog with every
        seeded address, making the whole seed look freshly changed).
        """
        dup = cls()
        dup.data = dict(snapshot.data)
        dup.versions = dict(snapshot.versions)
        dup.changelog = []
        return dup

    def __repr__(self) -> str:
        return f"MutableStore({len(self.data)} addrs, {len(self.changelog)} changes)"


@dataclass(frozen=True)
class StoreSnapshot:
    """An immutable ``(data, versions)`` image of a :class:`MutableStore`.

    Both components are :class:`~repro.util.pcollections.PMap`\\ s, so a
    snapshot is hashable, comparable and picklable -- the shape the
    fixpoint cache persists and the warm-start path
    (:func:`repro.core.fixpoint.global_store_explore` with ``warm_start=``)
    resumes from via :meth:`MutableStore.restore`.
    """

    data: Any
    versions: Any

    @classmethod
    def of_mapping(cls, store: Any) -> "StoreSnapshot":
        """Normalize any store image to a snapshot.

        A :class:`StoreSnapshot` passes through (its versions are already
        meaningful), a live :class:`MutableStore` is snapshotted, and a
        frozen mapping of unknown history gets version 1 everywhere --
        the convention ``MutableStore`` itself uses for entries present
        at construction.
        """
        if isinstance(store, StoreSnapshot):
            return store
        if isinstance(store, MutableStore):
            return store.snapshot()
        return StoreSnapshot(
            data=pmap(store), versions=pmap({addr: 1 for addr in store.keys()})
        )


class VersionedStore(StoreLike):
    """An engine-owned *mutable* store with per-address change versions.

    The persistent :class:`BasicStore` pays O(|store|) per bind (the
    ``PMap`` copy) and the worklist engines pay another O(|store|) per
    evaluation joining result stores and re-comparing values through
    ``fetch``.  A :class:`VersionedStore` mutates one
    :class:`MutableStore` in place and bumps a per-address version
    counter only when a bind actually grows the value set, so the engine
    learns "did anything change" and "which addresses grew" from the
    changelog in O(delta) -- see
    :func:`repro.core.fixpoint.global_store_explore`, which switches to
    the delta-driven loop when it finds one of these underneath the
    collecting domain.

    Because mutation is join-only, threading one shared store through
    every monadic branch is exactly the global-store widening the
    worklist engines already compute; the ``kleene`` engine iterates over
    immutable whole-domain snapshots and therefore pairs only with the
    persistent stores (enforced at assembly time).

    Invariant (checked by the monotonicity tests): value sets only grow,
    ``versions[addr]`` is bumped exactly when ``data[addr]`` changes, and
    ``changelog`` records those addresses in order.
    """

    def empty(self) -> MutableStore:
        return MutableStore()

    def bind(self, store: MutableStore, addr: Hashable, d: Any) -> MutableStore:
        data = store.data
        old = data.get(addr, _UNBOUND)
        if old is _UNBOUND:
            data[addr] = d
        else:
            if self.value_lattice.leq(d, old):
                return store
            data[addr] = self.value_lattice.join(old, d)
        store.versions[addr] = store.versions.get(addr, 0) + 1
        store.changelog.append(addr)
        return store

    def replace(self, store: MutableStore, addr: Hashable, d: Any) -> MutableStore:
        old = store.data.get(addr, _UNBOUND)
        if old is d or old == d:
            return store
        store.data[addr] = d
        store.versions[addr] = store.versions.get(addr, 0) + 1
        store.changelog.append(addr)
        return store

    def fetch(self, store: Any, addr: Hashable) -> Any:
        # ``store`` may be a live MutableStore or a frozen PMap snapshot;
        # both speak ``get``.
        value = store.get(addr, _UNBOUND)
        if value is _UNBOUND:
            return self.value_lattice.bottom()
        return value

    def filter_store(self, store: Any, keep: Callable[[Hashable], bool]) -> MutableStore:
        return MutableStore({a: store.get(a) for a in store.keys() if keep(a)})

    def addresses(self, store: Any) -> Iterable[Hashable]:
        return list(store.keys())

    def lattice(self) -> Lattice:
        # The lattice of *snapshots*: mutable stores have identity, not
        # order, so widening/joining frozen PMap images is the meaningful
        # (and only engine-visible) store-set lattice.
        return MapLattice(self.value_lattice)

    # -- engine-side abstract GC (6.4 on the delta-driven loop) ---------------

    def merge_entry(self, store: MutableStore, addr: Hashable, entry: Any) -> MutableStore:
        """Join one raw store *entry* (as found in ``data``) into ``store``.

        The versioned engine's GC path collects an evaluation's writes in
        a :class:`GCOverlay` and merges only the entries reachable from
        some successor state; the merge must join at the entry level (not
        re-``bind``) so counting stores do not double-bump.  For the
        plain versioned store an entry *is* a value set, so this is
        ``bind``.
        """
        return self.bind(store, addr, entry)

    # -- snapshot conversions (the immutable boundary) -----------------------

    def thaw(self, store: Any) -> MutableStore:
        """A private mutable copy of ``store`` (MutableStore or mapping).

        The engine thaws the injected seed store so repeated runs of one
        assembled analysis never share mutation.
        """
        if isinstance(store, MutableStore):
            return store.copy()
        return MutableStore(store)

    def freeze(self, store: MutableStore) -> PMap:
        """An immutable snapshot, presentable wherever a PMap store goes."""
        return pmap(store.data)


class GCOverlay:
    """A write overlay over a shared :class:`MutableStore` (engine-side GC).

    Under abstract GC only the bindings *reachable from a successor
    state* may enter the global store; a mutable shared store cannot take
    writes directly, or dead bindings would leak into every other
    configuration's view.  The versioned engine therefore threads one of
    these per evaluation: it speaks enough of the :class:`MutableStore`
    protocol for :class:`VersionedStore`/:class:`VersionedCountingStore`
    operations (``data`` mapping, ``versions``, ``changelog``, and the
    read-side ``get``/``in``/``keys``/``len``), reads fall through to the
    underlying global store, and writes land in a private map that the
    engine inspects (:meth:`written`) after sweeping reachability over
    the evaluation's successors.  Live entries are then merged into the
    global store with ``merge_entry`` -- whose version bumps are what
    retrigger the readers of a GC'd-then-rebound address.
    """

    __slots__ = ("base", "data", "versions", "changelog", "_writes")

    def __init__(self, base: MutableStore):
        self.base = base
        self._writes: dict = {}
        # ChainMap: reads see writes-over-base, mutation lands in _writes
        self.data = ChainMap(self._writes, base.data)
        self.versions: dict = {}
        self.changelog: list = []

    def written(self) -> dict:
        """The private ``addr -> entry`` map of this evaluation's writes."""
        return self._writes

    # -- read-side mapping protocol (shared with MutableStore/PMap) -----------

    def get(self, addr: Hashable, default: Any = None) -> Any:
        return self.data.get(addr, default)

    def __contains__(self, addr: object) -> bool:
        return addr in self.data

    def __len__(self) -> int:
        return len(self.data)

    def keys(self):
        return self.data.keys()

    def __repr__(self) -> str:
        return f"GCOverlay({len(self._writes)} writes over {self.base!r})"


class ShardOverlay(GCOverlay):
    """A :class:`GCOverlay` that also records the addresses it reads.

    The sharded worklist (:mod:`repro.parallel`) evaluates each pending
    configuration against one of these: writes stay private until the
    round barrier (so concurrent shards never observe each other's
    in-flight bindings), and the read set feeds the dependency map that
    decides which configurations a cross-shard write retriggers.  Reads
    are captured at :meth:`get` because ``VersionedStore.fetch`` routes
    its lookup through the element's ``get`` while ``bind`` reads via
    ``data.get`` directly -- so, exactly like the sequential engine's
    ``RecordingStore``, a fetch is a dependency and a bind's internal
    join read is not.
    """

    __slots__ = ("reads",)

    def __init__(self, base: MutableStore):
        super().__init__(base)
        self.reads: set = set()

    def get(self, addr: Hashable, default: Any = None) -> Any:
        self.reads.add(addr)
        return self.data.get(addr, default)

    def __repr__(self) -> str:
        return (
            f"ShardOverlay({len(self._writes)} writes, "
            f"{len(self.reads)} reads over {self.base!r})"
        )


class VersionedCountingStore(StoreLike, ACounter):
    """``CountingStore`` semantics over an engine-owned :class:`MutableStore`.

    Entries are ``(value-set, AbsNat)`` pairs exactly as in
    :class:`CountingStore`, so a frozen snapshot is indistinguishable
    from a persistent counting store's ``PMap``.  The versioning rules
    follow :class:`VersionedStore` with one refinement: the changelog
    records *value-set* growth only.  A ``bind`` that adds no new values
    still bumps the abstract count, but counts are invisible to ``fetch``
    -- the only store observation a re-evaluated configuration can make
    -- so count-only changes must not retrigger readers (they would
    re-bump the count they were retriggered by, looping until MANY for
    nothing).  The engine instead saturates counts once, after
    convergence, via :meth:`saturate`.
    """

    def __init__(self, value_lattice: Lattice | None = None):
        super().__init__(value_lattice)
        self.count_lattice = AbsNatLattice()
        self._entry_lattice = PairLattice(self.value_lattice, self.count_lattice)
        self._lattice = MapLattice(self._entry_lattice)

    def empty(self) -> MutableStore:
        return MutableStore()

    def bind(self, store: MutableStore, addr: Hashable, d: Any) -> MutableStore:
        data = store.data
        entry = data.get(addr, _UNBOUND)
        if entry is _UNBOUND:
            data[addr] = (d, AbsNat.ONE)
        else:
            old_d, old_n = entry
            new_n = old_n.plus(AbsNat.ONE)
            if self.value_lattice.leq(d, old_d):
                if new_n is not old_n:
                    data[addr] = (old_d, new_n)  # count-only: no changelog
                return store
            data[addr] = (self.value_lattice.join(old_d, d), new_n)
        store.versions[addr] = store.versions.get(addr, 0) + 1
        store.changelog.append(addr)
        return store

    def replace(self, store: MutableStore, addr: Hashable, d: Any) -> MutableStore:
        # strong update: rewrite the value set, preserve the count (it
        # still bounds how many concrete addresses this one denotes)
        entry = store.data.get(addr, _UNBOUND)
        old_n = AbsNat.ONE if entry is _UNBOUND else entry[1]
        if entry is not _UNBOUND and entry[0] == d:
            return store
        store.data[addr] = (d, old_n)
        store.versions[addr] = store.versions.get(addr, 0) + 1
        store.changelog.append(addr)
        return store

    def fetch(self, store: Any, addr: Hashable) -> Any:
        entry = store.get(addr, _UNBOUND)
        if entry is _UNBOUND:
            return self.value_lattice.bottom()
        return entry[0]

    def count(self, store: Any, addr: Hashable) -> AbsNat:
        entry = store.get(addr, _UNBOUND)
        if entry is _UNBOUND:
            return AbsNat.ZERO
        return entry[1]

    def update(self, store: MutableStore, addr: Hashable, d: Any) -> MutableStore:
        """Strong update when the count permits, weak otherwise."""
        if self.count(store, addr) is AbsNat.ONE:
            return self.replace(store, addr, d)
        return self.bind(store, addr, d)

    def filter_store(self, store: Any, keep: Callable[[Hashable], bool]) -> MutableStore:
        return MutableStore({a: store.get(a) for a in store.keys() if keep(a)})

    def addresses(self, store: Any) -> Iterable[Hashable]:
        return list(store.keys())

    def lattice(self) -> Lattice:
        # the lattice of frozen snapshots, shape-identical to CountingStore's
        return self._lattice

    def merge_entry(self, store: MutableStore, addr: Hashable, entry: Any) -> MutableStore:
        """Entry-lattice join of a ``(value-set, count)`` pair into ``store``.

        Unlike ``bind``, merging does not model a fresh allocation: the
        overlay already accounted for the bump when the write happened,
        so the counts join (max) instead of abstract-adding.
        """
        d, n = entry
        data = store.data
        old = data.get(addr, _UNBOUND)
        if old is _UNBOUND:
            data[addr] = (d, n)
        else:
            old_d, old_n = old
            new_n = self.count_lattice.join(old_n, n)
            if self.value_lattice.leq(d, old_d):
                if new_n is not old_n:
                    data[addr] = (old_d, new_n)
                return store
            data[addr] = (self.value_lattice.join(old_d, d), new_n)
        store.versions[addr] = store.versions.get(addr, 0) + 1
        store.changelog.append(addr)
        return store

    def saturate(self, store: MutableStore, addrs: Iterable[Hashable]) -> MutableStore:
        """Post-convergence count saturation (see :meth:`CountingStore.saturate`)."""
        data = store.data
        for addr in addrs:
            entry = data.get(addr, _UNBOUND)
            if entry is _UNBOUND:
                continue
            d, n = entry
            data[addr] = (d, n.plus(AbsNat.ONE))
        return store

    def singleton_addresses(self, store: Any) -> frozenset:
        """Addresses whose abstract count is exactly one (must-alias facts)."""
        return frozenset(a for a in store.keys() if self.count(store, a) is AbsNat.ONE)

    # -- snapshot conversions (the immutable boundary) -----------------------

    def thaw(self, store: Any) -> MutableStore:
        """A private mutable copy of ``store`` (MutableStore or mapping)."""
        if isinstance(store, MutableStore):
            return store.copy()
        return MutableStore(store)

    def freeze(self, store: MutableStore) -> PMap:
        """An immutable snapshot, shape-identical to a :class:`CountingStore` PMap."""
        return pmap(store.data)


def unwrap_store(store_like: StoreLike) -> StoreLike:
    """Strip any :class:`RecordingStore` decoration (for result inspection)."""
    while isinstance(store_like, RecordingStore):
        store_like = store_like.inner
    return store_like
