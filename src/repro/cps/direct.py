"""The hand-written abstract transition of section 2.4 (pre-monadic).

Before the monadic refactoring, the paper's abstract machine is the
relation::

    ((f ae1 ... aen), rho, sigma, t) ~> (call, rho'', sigma', t') if
        (lam, rho') in A(f, rho, sigma)      -- branch per closure
        d_i in A(ae_i, rho, sigma)           -- branch per argument value
        t'  = tick(clo, state)
        a_i = alloc(v_i, t')
        rho'' = rho'[v_i -> a_i]
        sigma' = sigma |_| [a_i -> {d_i}]

This module keeps that formulation alive as an independent oracle: the
adequacy experiment (E10) and its tests check that the monadic ``mnext``
run through the ``StorePassing`` machinery reaches *exactly* the same
configuration sets.  Nothing else in the package depends on this file.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.addresses import Addressable
from repro.core.store import StoreLike
from repro.cps.semantics import Clo, PState, free_vars_cache
from repro.cps.syntax import AExp, Call, Lam, Ref
from repro.util.pcollections import PMap


def atomic_eval(env: PMap, store_like: StoreLike, store, aexp: AExp) -> frozenset:
    """``A(ae, rho, sigma)``: the abstract atomic evaluator of section 2.3."""
    if isinstance(aexp, Lam):
        captured = env.restrict(lambda v: v in free_vars_cache(aexp))
        return frozenset([Clo(aexp, captured)])
    if isinstance(aexp, Ref):
        if aexp.var not in env:
            return frozenset()
        return frozenset(store_like.fetch(store, env[aexp.var]))
    return frozenset()


def direct_abstract_step(addressing: Addressable, store_like: StoreLike):
    """Build the section-2.4 transition over configurations ``((PState, t), store)``.

    Returns a function mapping one configuration to the frozenset of its
    successors, with the same evaluation order as the monadic ``mnext``
    (tick before alloc, argument combinations by cartesian product).
    """

    def step(config) -> frozenset:
        (pstate, t), store = config
        if not isinstance(pstate.ctrl, Call):
            return frozenset([config])
        call = pstate.ctrl
        out: set = set()
        for proc in atomic_eval(pstate.env, store_like, store, call.fun):
            if not isinstance(proc, Clo) or len(proc.lam.params) != len(call.args):
                continue
            t2 = addressing.advance(proc, pstate, t)
            addrs = [addressing.valloc(v, t2) for v in proc.lam.params]
            arg_choices: list[Iterable] = [
                atomic_eval(pstate.env, store_like, store, ae) for ae in call.args
            ]
            for ds in itertools.product(*arg_choices):
                store2 = store
                for addr, d in zip(addrs, ds):
                    store2 = store_like.bind(store2, addr, frozenset([d]))
                env2 = proc.env.update(zip(proc.lam.params, addrs))
                out.add(((PState(proc.lam.body, env2), t2), store2))
        return frozenset(out)

    return step
