"""Differential-soundness fuzz harness (the nightly CI entrypoint).

Generates a seeded corpus of imp programs, checks the executable
soundness statement (abstract covers concrete) across a preset matrix,
and writes CI-friendly artifacts::

    PYTHONPATH=src python tools/fuzz_soundness.py --seed 42 --count 300 \\
        --report fuzz-report.json --artifacts counterexamples/

* ``--report``     deterministic JSON (byte-identical for one seed);
* ``--artifacts``  one ``violation_<index>_<preset>.imp`` file per shrunk
  counterexample -- empty directory means a clean run;
* exit status      0 on zero violations, 1 otherwise.

``repro fuzz`` is the same harness without the artifacts directory; the
library entrypoint is :func:`repro.service.fuzz.run_fuzz`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.fuzz import FUZZ_PRESETS, render_fuzz_report, run_fuzz  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=300)
    parser.add_argument(
        "--preset", action="append", default=None, help="repeatable; default matrix"
    )
    parser.add_argument("--max-steps", type=int, default=200_000)
    parser.add_argument(
        "--max-evals",
        type=int,
        default=10_000,
        help="per-preset abstract evaluation budget (deterministic abort)",
    )
    parser.add_argument("--report", default="fuzz-report.json")
    parser.add_argument(
        "--artifacts",
        default=None,
        help="directory for shrunk counterexample .imp files (created if missing)",
    )
    args = parser.parse_args(argv)

    presets = tuple(args.preset) if args.preset else FUZZ_PRESETS
    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        presets=presets,
        max_steps=args.max_steps,
        max_evals=args.max_evals,
    )
    Path(args.report).write_text(render_fuzz_report(report))
    print(f"wrote {args.report} (corpus digest {report['corpus_digest'][:12]})")

    violations = report["violations"]
    if args.artifacts:
        artifacts = Path(args.artifacts)
        artifacts.mkdir(parents=True, exist_ok=True)
        for violation in violations:
            name = f"violation_{violation['index']}_{violation['preset']}.imp"
            (artifacts / name).write_text(violation["shrunk"])
        if violations:
            print(f"wrote {len(violations)} counterexample(s) to {artifacts}/")

    checked = ", ".join(f"{preset}: {n}" for preset, n in report["checked"].items())
    print(
        f"fuzzed {report['count']} programs (seed {report['seed']}); "
        f"skipped {report['skipped']}; checked {checked}"
    )
    aborts = {p: n for p, n in report["aborted"].items() if n}
    if aborts:
        print("aborted (analysis budget): "
              + ", ".join(f"{preset}: {n}" for preset, n in aborts.items()))
    if violations:
        print(f"{len(violations)} soundness violation(s)", file=sys.stderr)
        return 1
    print("no soundness violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
