"""Abstract garbage collection (paper 6.4), generically.

Abstract GC prunes store bindings unreachable from a state, exactly as a
concrete collector would, and is "store-sensitive": it often yields a
dramatic precision increase and a drop in analysis time (experiment E6
measures both).  The paper defines it through three notions:

* *touching*: the addresses a state or value mentions directly,
  ``T(ae, rho) = { rho(v) : v in free(ae) }``;
* *adjacency*: ``a ~>_sigma a'  iff  a' in T(sigma(a))``;
* *reachability*: the transitive closure of adjacency from the state's
  touched set, giving ``R(state)``;

and the collector ``Gamma(state) = state with sigma | R(state)``.

Touching is the only language-specific ingredient, so this module
factors it out as the :class:`Touching` protocol; the closure
computation, the store sweep and the monadic ``GarbageCollector`` hook
are shared by CPS, CESK and Featherweight Java.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Protocol

from repro.core.store import StoreLike


class Touching(Protocol):
    """Language-supplied touchability: what addresses do roots/values mention?"""

    def touched_by_state(self, pstate: Any) -> frozenset:
        """Root addresses: those touched directly by a (partial) state."""
        ...

    def touched_by_value(self, value: Any) -> frozenset:
        """Addresses touched by a single stored abstract value."""
        ...


def reachable_addresses(
    store_like: StoreLike,
    store: Any,
    roots: Iterable[Hashable],
    touched_by_value: Callable[[Any], frozenset],
) -> frozenset:
    """``R``: all addresses reachable from ``roots`` through the store.

    The adjacency relation follows the paper: from address ``a`` we can
    reach every address touched by any abstract value in ``sigma(a)``.
    """
    seen: set = set(roots)
    frontier: list = list(seen)
    while frontier:
        addr = frontier.pop()
        for value in store_like.fetch(store, addr):
            for succ in touched_by_value(value):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
    return frozenset(seen)


def collect_store(
    store_like: StoreLike,
    store: Any,
    pstate: Any,
    touching: Touching,
) -> Any:
    """``Gamma``: the store restricted to addresses reachable from ``pstate``."""
    live = reachable_addresses(
        store_like, store, touching.touched_by_state(pstate), touching.touched_by_value
    )
    return store_like.filter_store(store, lambda addr: addr in live)


class GarbageCollector:
    """The paper's ``GarbageCollector m a`` class with its default no-op.

    ``gc`` takes a partial state and returns an operation *in the
    analysis monad* (6.4): collection is a store effect, so it lives
    where the store lives -- inside the monad.  The default
    implementation does nothing; :class:`MonadicStoreCollector` performs
    the real sweep against any :class:`StoreLike` via ``filterStore``.
    """

    def __init__(self, monad: Any):
        self.monad = monad

    def gc(self, pstate: Any) -> Any:
        """Return the monadic no-op (override to actually collect)."""
        return self.monad.unit(None)

    def collect(self, store: Any, pstate: Any) -> Any:
        """Collect ``store`` for ``pstate`` directly (no monad).

        The staged (fused) transition path calls this instead of
        sequencing :meth:`gc` through the monad -- it is the same
        operation desugared.  The default collector collects nothing,
        mirroring the monadic no-op above.
        """
        return store


class MonadicStoreCollector(GarbageCollector):
    """A real abstract garbage collector for any store-in-the-monad analysis.

    Requires the analysis monad to expose ``modify_store`` (as
    :class:`~repro.core.monads.StorePassing` does); the language supplies
    its :class:`Touching` instance and the :class:`StoreLike` in use.
    """

    def __init__(self, monad: Any, store_like: StoreLike, touching: Touching):
        super().__init__(monad)
        self.store_like = store_like
        self.touching = touching

    def gc(self, pstate: Any) -> Any:
        return self.monad.modify_store(
            lambda store: collect_store(self.store_like, store, pstate, self.touching)
        )

    def collect(self, store: Any, pstate: Any) -> Any:
        """The real sweep, directly: ``Gamma`` applied to one store."""
        return collect_store(self.store_like, store, pstate, self.touching)
