"""Abstract transition graphs: build, query and export (Graphviz DOT).

The collecting semantics gives the *set* of reachable configurations;
for debugging and for visualizing what widening or GC did, the edge
structure matters too.  :func:`transition_graph` re-runs the monadic
step over a per-state-store analysis to recover the edges;
:func:`to_dot` renders them.

Works for any language package: pass the step function and the
``PerStateStoreCollecting`` instance the analysis was built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.collecting import PerStateStoreCollecting
from repro.core.fixpoint import FixpointDiverged


@dataclass
class TransitionGraph:
    """A finite abstract transition system."""

    nodes: list = field(default_factory=list)
    edges: list = field(default_factory=list)  # (source index, target index)
    initial: int = 0

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.edges)

    def successors(self, index: int) -> list:
        return [dst for src, dst in self.edges if src == index]

    def predecessors(self, index: int) -> list:
        return [src for src, dst in self.edges if dst == index]

    def terminal_nodes(self) -> list:
        """Nodes whose only outgoing edge is a self-loop (or none)."""
        return [
            i
            for i in range(len(self.nodes))
            if all(dst == i for dst in self.successors(i))
        ]

    def branching_nodes(self) -> list:
        """Nodes with more than one distinct successor: nondeterminism."""
        return [i for i in range(len(self.nodes)) if len(set(self.successors(i))) > 1]


def transition_graph(
    collecting: PerStateStoreCollecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_states: int = 100_000,
    label: Callable[[Any], str] | None = None,
) -> TransitionGraph:
    """Explore from ``initial_state``, recording configurations and edges."""
    seed = next(iter(collecting.inject(initial_state)))
    index: dict = {seed: 0}
    nodes = [seed]
    edges: list = []
    frontier = [seed]
    while frontier:
        if len(nodes) > max_states:
            raise FixpointDiverged(f"graph exceeded {max_states} configurations")
        config = frontier.pop()
        for nxt in collecting.run_config(step, config):
            if nxt not in index:
                index[nxt] = len(nodes)
                nodes.append(nxt)
                frontier.append(nxt)
            edges.append((index[config], index[nxt]))
    return TransitionGraph(nodes=nodes, edges=sorted(set(edges)), initial=0)


def default_label(config: Any) -> str:
    """A compact node label: the control component of the configuration."""
    (pstate, _guts), _store = config
    text = repr(getattr(pstate, "ctrl", pstate))
    return text if len(text) <= 40 else text[:37] + "..."


def to_dot(graph: TransitionGraph, label: Callable[[Any], str] | None = None) -> str:
    """Render as Graphviz DOT (deterministic output, suitable for goldens)."""
    label = label or default_label
    lines = ["digraph abstract_transitions {", "  rankdir=LR;", "  node [shape=box];"]
    for i, config in enumerate(graph.nodes):
        text = label(config).replace("\\", "\\\\").replace('"', '\\"')
        shape = ' peripheries=2' if i in graph.terminal_nodes() else ""
        lines.append(f'  n{i} [label="{text}"{shape}];')
    lines.append(f"  start [shape=point]; start -> n{graph.initial};")
    for src, dst in graph.edges:
        lines.append(f"  n{src} -> n{dst};")
    lines.append("}")
    return "\n".join(lines)
