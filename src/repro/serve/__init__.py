"""The resident analysis server: a warm engine behind an async JSON front end.

A CLI invocation pays interpreter boot, imports, parsing, and a cold (or
disk-rehydrated) fixed point on every call.  A resident process pays them
once: the intern pool stays populated, the hot LRU keeps live fixed
points, and the dispatch pipeline (:mod:`repro.service.jobs`) answers
repeat requests from memory.  The package splits along the obvious seam:

* :mod:`repro.serve.protocol` -- the wire format: newline-delimited
  JSON request/response framing, error codes, request validation.
* :mod:`repro.serve.metrics` -- the counter surface behind the ``stats``
  method (requests, tiers, timeouts, latency percentiles).
* :mod:`repro.serve.server` -- the asyncio TCP server, its bounded
  worker pool, and :class:`~repro.serve.server.ServerHandle` (the
  in-thread host the tests, benchmarks, and CI smoke reuse).
* :mod:`repro.serve.client` -- the tiny synchronous client behind
  ``repro client``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import AnalysisServer, ServerHandle

__all__ = ["AnalysisServer", "ServeClient", "ServeError", "ServerHandle"]
