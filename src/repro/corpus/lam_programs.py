"""Direct-style lambda-calculus corpus programs.

These feed both the CESK machine directly and -- through
:func:`repro.lam.cps_transform.cps_convert` -- the CPS analyses, so the
cross-language experiments can compare the two pipelines on the same
source.
"""

from __future__ import annotations

from repro.lam.parser import parse_expr
from repro.lam.syntax import App, Expr, Lam, Let, Var

#: Identity applied to identity.
ID_SIMPLE = "(let ((id (lambda (x) x))) (id (lambda (y) y)))"

#: The k-CFA-paradox example in direct style: one identity, two call sites.
MJ09_DIRECT = """
(let* ((id (lambda (x) x))
       (a (id (lambda (z) z)))
       (b (id (lambda (y) y))))
  b)
"""

#: Eta-expansion interposed between uses (the classic 'eta' benchmark shape):
#: the eta-wrapper is a second identity-like merge point.
ETA = """
(let* ((id (lambda (x) x))
       (eta (lambda (y) (id y)))
       (a (eta (lambda (u) u)))
       (b (eta (lambda (w) w))))
  (a b))
"""

#: Church numeral two applied twice: exercises higher-order flow through
#: self-application of a two-argument curried function.
CHURCH_TWO_TWO = """
(let* ((two (lambda (f) (lambda (x) (f (f x)))))
       (inc (lambda (u) u)))
  (((two two) inc) (lambda (q) q)))
"""

#: The divergent omega combinator (terminates abstractly only).
OMEGA_DIRECT = "((lambda (x) (x x)) (lambda (y) (y y)))"

#: A Z-combinator loop: concretely divergent, abstractly a tight cycle.
Z_LOOP = """
(let ((z (lambda (f)
           ((lambda (g) (f (lambda (v) ((g g) v))))
            (lambda (g) (f (lambda (v) ((g g) v))))))))
  ((z (lambda (self) (lambda (n) (self n)))) (lambda (w) w)))
"""

PROGRAMS: dict[str, Expr] = {}


def _register(name: str, source: str) -> None:
    PROGRAMS[name] = parse_expr(source)


_register("id-simple", ID_SIMPLE)
_register("mj09", MJ09_DIRECT)
_register("eta", ETA)
_register("church-two-two", CHURCH_TWO_TWO)
_register("omega", OMEGA_DIRECT)
_register("z-loop", Z_LOOP)


def program(name: str) -> Expr:
    return PROGRAMS[name]


# ---------------------------------------------------------------------------
# Generator families
# ---------------------------------------------------------------------------


def church_numeral(n: int) -> Expr:
    """The Church numeral ``n`` as a direct-style term."""
    if n < 0:
        raise ValueError("Church numerals are non-negative")
    body: Expr = Var("x")
    for _ in range(n):
        body = App(Var("f"), (body,))
    return Lam(("f",), Lam(("x",), body))


def church_add_program(m: int, n: int) -> Expr:
    """Compute ``m + n`` on Church numerals and normalize via an identity.

    ``plus = (lambda (m n) (lambda (f) (lambda (x) ((m f) ((n f) x)))))``;
    the sum is forced by applying it to an identity step function and a
    distinguished base value, so the analysis sees the full unfolding.
    """
    plus = parse_expr("(lambda (m) (lambda (n) (lambda (f) (lambda (x) ((m f) ((n f) x))))))")
    total = App(App(plus, (church_numeral(m),)), (church_numeral(n),))
    return App(App(total, (parse_expr("(lambda (u) u)"),)), (parse_expr("(lambda (q) q)"),))


def eta_chain(n: int) -> Expr:
    """``n`` nested eta-wrappers around one identity: each layer is a merge
    point for monovariant analyses, so precision loss compounds with depth."""
    if n < 1:
        raise ValueError("chain length must be at least 1")
    body: Expr = Var("w0")
    expr: Expr = Let("w0", App(Var("e0"), (Lam(("u0",), Var("u0")),)), body)
    for i in range(1, n):
        expr = Let(
            f"w{i}", App(Var(f"e{i}"), (Lam((f"u{i}",), Var(f"u{i}")),)), expr
        )
    for i in reversed(range(n)):
        inner_target = "id" if i == 0 else f"e{i-1}"
        expr = Let(f"e{i}", Lam((f"y{i}",), App(Var(inner_target), (Var(f"y{i}"),))), expr)
    return Let("id", Lam(("x",), Var("x")), expr)


def apply_tower(n: int) -> Expr:
    """``n`` sequential applications of fresh identities (pure size scaling)."""
    if n < 1:
        raise ValueError("tower height must be at least 1")
    expr: Expr = Var(f"v{n - 1}")
    for i in reversed(range(n)):
        prev = Lam((f"z{i}",), Var(f"z{i}")) if i == 0 else Var(f"v{i-1}")
        expr = Let(f"v{i}", App(Lam((f"x{i}",), Var(f"x{i}")), (prev,)), expr)
    return expr
