"""The observability layer: metrics registry, tracer, artifact checker.

Four contracts, pinned:

* **Instruments behave** -- counters are monotone, pull gauges read
  their callback, histograms roll samples off past the reservoir bound,
  the one nearest-rank :func:`~repro.obs.metrics.percentile` matches a
  hand-computed oracle, and a name registered as one kind cannot be
  re-requested as another.
* **Exports are deterministic** -- ``snapshot()`` and ``prometheus()``
  render in sorted series order, twice the same bytes, with labels
  escaped; the process-wide :func:`~repro.obs.metrics.default_registry`
  reinstalls its pull gauges after a ``reset()``.
* **Traces are well-formed** -- spans nest (no partial overlap),
  timestamps are monotone per thread, durations are non-negative, the
  Chrome document round-trips through ``json.loads``, and
  ``tools/check_trace.py`` accepts every artifact the tracer writes and
  rejects hand-broken ones.
* **Tracing observes, never perturbs** -- across the corpus matrix, an
  analysis run under a live tracer reaches a bit-identical fixed point
  to the untraced run.
"""

import json
import sys
import threading
from pathlib import Path

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_registry,
    percentile,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_default_tracer,
    use_tracer,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
import check_trace  # noqa: E402  (tools/ is not a package)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample_every_fraction(self):
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.0], fraction) == 7.0

    def test_nearest_rank_oracle(self):
        samples = [5.0, 1.0, 4.0, 2.0, 3.0]  # sorted: 1..5
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0
        # rank rounds to nearest: 0.99 * 4 = 3.96 -> index 4
        assert percentile(samples, 0.99) == 5.0

    def test_does_not_mutate_input(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 0.5)
        assert samples == [3.0, 1.0, 2.0]


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_pull(self):
        gauge = Gauge()
        gauge.set(2.5)
        assert gauge.value == 2.5
        pulled = Gauge(callback=lambda: 42)
        assert pulled.value == 42

    def test_histogram_reservoir_rolloff(self):
        histogram = Histogram()
        for value in range(Histogram.MAX_SAMPLES + 10):
            histogram.observe(float(value))
        assert len(histogram.samples()) == Histogram.MAX_SAMPLES
        # count and sum keep counting past the rolloff
        assert histogram.count == Histogram.MAX_SAMPLES + 10
        assert histogram.samples()[0] == 10.0  # oldest rolled off

    def test_timer_times_the_block(self):
        timer = Timer()
        with timer.time():
            pass
        assert timer.histogram.count == 1
        assert timer.histogram.sum >= 0.0


class TestRegistry:
    def test_series_are_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", tier="hot")
        second = registry.counter("hits", tier="hot")
        assert first is second
        other = registry.counter("hits", tier="disk")
        assert other is not first

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests", method="ping").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency").observe(0.5)
        doc = registry.snapshot()
        assert doc["requests"]["method=ping"] == 3
        assert doc["depth"][""] == 2
        cell = doc["latency"][""]
        assert cell["count"] == 1 and cell["p50"] == 0.5

    def test_prometheus_deterministic_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total", method="z").inc()
        registry.counter("b_total", method="a").inc(2)
        registry.gauge("a_gauge").set(1.5)
        registry.describe("b_total", "a counter")
        text = registry.prometheus()
        assert text == registry.prometheus()  # deterministic
        lines = text.splitlines()
        assert lines[0] == "# TYPE a_gauge gauge"
        assert lines[1] == "a_gauge 1.5"
        assert lines[2] == "# HELP b_total a counter"
        assert lines[3] == "# TYPE b_total counter"
        assert lines[4] == 'b_total{method="a"} 2'
        assert lines[5] == 'b_total{method="z"} 1'

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd", label='he said "hi"\n').inc()
        text = registry.prometheus()
        assert 'odd{label="he said \\"hi\\"\\n"} 1' in text

    def test_prometheus_summary_export(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        text = registry.prometheus()
        assert "# TYPE lat summary" in text
        assert 'lat{quantile="0.5"} 2' in text
        assert "lat_count 3" in text
        assert "lat_sum 6" in text

    def test_default_registry_reinstalls_pull_gauges_after_reset(self):
        registry = default_registry()
        assert ("intern_pool_size", ()) in registry._series
        registry.reset()
        registry = default_registry()
        assert ("intern_pool_size", ()) in registry._series
        # the pull gauge reads the live pool, never a stale copy
        from repro.util.intern import intern_pool_size

        assert registry.gauge("intern_pool_size").value == intern_pool_size()


class TestTracer:
    def test_null_tracer_is_free_and_inert(self):
        span = NULL_TRACER.span("anything", key="value")
        with span:
            pass
        assert NULL_TRACER.span("other") is span  # one preallocated no-op
        assert not NullTracer().active

    def test_current_tracer_resolution_order(self):
        assert current_tracer() is NULL_TRACER
        process = Tracer()
        set_default_tracer(process)
        try:
            assert current_tracer() is process
            local = Tracer()
            with use_tracer(local):
                assert current_tracer() is local
            assert current_tracer() is process
        finally:
            set_default_tracer(NULL_TRACER)
        assert current_tracer() is NULL_TRACER

    def test_spans_nest_with_monotone_clock(self):
        tracer = Tracer()
        with tracer.span("outer", cat="test"):
            with tracer.span("inner", cat="test"):
                tracer.event("tick", cat="test")
        events = tracer.events()
        names = [event["name"] for event in events]
        # spans append at exit: innermost first
        assert names == ["tick", "inner", "outer"]
        tick, inner, outer = events
        assert outer["ph"] == "X" and inner["ph"] == "X" and tick["ph"] == "i"
        assert outer["dur"] >= 0 and inner["dur"] >= 0
        # proper containment, not partial overlap
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        assert inner["ts"] <= tick["ts"] <= inner["ts"] + inner["dur"] + 1e-6

    def test_span_records_args(self):
        tracer = Tracer()
        with tracer.span("phase", cat="test", label="x", n=3):
            pass
        (event,) = tracer.events()
        assert event["args"] == {"label": "x", "n": 3}

    def test_thread_ids_compress_and_isolate(self):
        tracer = Tracer()

        def work():
            with tracer.span("worker", cat="test"):
                pass

        threads = [threading.Thread(target=work) for _ in range(2)]
        with tracer.span("main", cat="test"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        tids = {event["tid"] for event in tracer.events()}
        assert len(tids) == 3 and all(isinstance(tid, int) for tid in tids)

    def test_chrome_document_round_trips(self, tmp_path):
        tracer = Tracer(process_name="test-proc")
        with tracer.span("phase", cat="test"):
            tracer.event("mark", cat="test")
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "test-proc"
        assert {event["name"] for event in events[1:]} == {"mark", "phase"}

    def test_jsonl_suffix_selects_line_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase", cat="test"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "phase"


class TestCheckTrace:
    """tools/check_trace.py accepts real artifacts, rejects broken ones."""

    def _write(self, tmp_path, events, name="trace.json"):
        path = tmp_path / name
        path.write_text(json.dumps({"traceEvents": events}))
        return str(path)

    def test_accepts_tracer_output(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", cat="test"):
            with tracer.span("inner", cat="test"):
                tracer.event("mark", cat="test")
        path = tmp_path / "ok.json"
        tracer.write(str(path))
        assert check_trace.main([str(path), "--min-events", "3"]) == 0

    def test_accepts_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only", cat="test"):
            pass
        path = tmp_path / "ok.jsonl"
        tracer.write(str(path))
        assert check_trace.main([str(path)]) == 0

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert check_trace.main([str(path)]) == 1

    def test_rejects_partial_overlap(self, tmp_path):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 0},
        ]
        assert check_trace.main([self._write(tmp_path, events)]) == 1

    def test_accepts_proper_nesting_and_siblings(self, tmp_path):
        events = [
            {"name": "outer", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"name": "left", "ph": "X", "ts": 1, "dur": 3, "pid": 1, "tid": 0},
            {"name": "right", "ph": "X", "ts": 5, "dur": 4, "pid": 1, "tid": 0},
        ]
        assert check_trace.main([self._write(tmp_path, events)]) == 0

    def test_rejects_negative_duration(self, tmp_path):
        events = [{"name": "a", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 0}]
        assert check_trace.main([self._write(tmp_path, events)]) == 1

    def test_rejects_backwards_instants(self, tmp_path):
        events = [
            {"name": "a", "ph": "i", "ts": 10, "pid": 1, "tid": 0, "s": "t"},
            {"name": "b", "ph": "i", "ts": 5, "pid": 1, "tid": 0, "s": "t"},
        ]
        assert check_trace.main([self._write(tmp_path, events)]) == 1

    def test_rejects_empty_trace_from_real_run(self, tmp_path):
        assert check_trace.main([self._write(tmp_path, [])]) == 1


class TestTracingNeverPerturbs:
    """Corpus-wide: a traced run reaches a bit-identical fixed point."""

    @pytest.mark.parametrize("lang", ("cps", "lam", "fj"))
    def test_traced_fixed_point_bit_identical(self, lang, tmp_path):
        from serve_helpers import MATRIX_PROGRAMS

        from repro.config import assemble, preset_config
        from repro.corpus import corpus_program

        config = preset_config("1cfa", lang)
        program = corpus_program(lang, MATRIX_PROGRAMS[lang])
        plain = assemble(config, program=program).run(program)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = assemble(config, program=program).run(program)
        assert traced.fp == plain.fp
        # and the run actually produced a valid artifact
        path = tmp_path / f"{lang}.json"
        tracer.write(str(path))
        assert check_trace.main([str(path)]) == 0

    def test_instrumented_modules_default_to_the_null_tracer(self):
        # the hot path must not require tracer setup to stay a no-op
        assert current_tracer() is NULL_TRACER
