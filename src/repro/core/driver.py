"""``run_analysis``: the paper's three degrees of freedom, tied together (5.2, 7).

``runAnalysis`` in the paper::

    runAnalysis :: (CPSInterface m a, Lattice fp, Collecting m (PSigma a) fp)
                => CExp -> fp
    runAnalysis e = exploreFP mnext (e, Map.empty)

Its signature names exactly what can vary:  (1) the monad, (2) the
semantic-interface implementation, and (3) the analysis lattice with its
fixed-point computation.  Here those arrive as the ``step`` function
(already closed over a monad and an interface implementation by the
language package) and a :class:`~repro.core.fixpoint.Collecting`
instance; everything else is inert plumbing.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.collecting import PerStateStoreCollecting, SharedStoreCollecting
from repro.core.fused import FusedTransition
from repro.obs.metrics import default_registry
from repro.obs.trace import current_tracer
from repro.core.fixpoint import (
    ENGINES,
    STORE_IMPLS,
    Collecting,
    explore_fp,
    global_store_explore,
    worklist_explore,
)
from repro.core.store import (
    ACounter,
    RecordingStore,
    StoreLike,
    VersionedCountingStore,
    VersionedStore,
)


def run_analysis(
    collecting: Collecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_steps: int = 1_000_000,
) -> Any:
    """Compute the collecting semantics: ``exploreFP step (inject initial)``."""
    return explore_fp(collecting, step, initial_state, max_steps=max_steps)


def run_analysis_worklist(
    collecting: PerStateStoreCollecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_states: int = 1_000_000,
) -> frozenset:
    """Same fixed point as :func:`run_analysis` on per-state-store domains,
    computed by a frontier worklist (each configuration stepped once)."""
    return worklist_explore(
        collecting, step, initial_state, collecting.successors_of, max_states=max_states
    )


def prepare_engine_store(
    engine: str,
    store_like: StoreLike,
    gc: bool = False,
    store_impl: str = "persistent",
) -> StoreLike:
    """Validate an engine selection and ready its store (all three languages).

    ``store_impl`` picks the store representation behind the worklist
    engines (:data:`~repro.core.fixpoint.STORE_IMPLS`): ``persistent``
    keeps the given PMap-backed store; ``versioned`` swaps in a
    :class:`~repro.core.store.VersionedStore` (or
    :class:`~repro.core.store.VersionedCountingStore` when the given
    store counts) over the same value lattice, whose mutable element and
    per-address change versions let the engine do O(delta) work per
    evaluation.  The kleene engine iterates over immutable whole-domain
    snapshots, so it pairs only with ``persistent``.

    The store is wrapped in a :class:`~repro.core.store.RecordingStore`
    whenever the fixed-point loop consumes the evaluation's read/write
    footprint: for the ``depgraph`` engine (dependency tracking,
    including the GC sweep's reads) and for counting stores (the write
    log decides which counts to saturate on convergence).  The blind
    ``worklist`` engine never reads the log, so plain and GC'd worklist
    runs skip the wrapper and its per-operation overhead.

    Policy questions -- *which* engine/GC/counting combinations make a
    sensible analysis -- live in
    :meth:`repro.config.AnalysisConfig.validated`; this helper only
    refuses setups the engines cannot execute at all.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose one of {ENGINES}")
    if store_impl not in STORE_IMPLS:
        raise ValueError(
            f"unknown store impl {store_impl!r}; choose one of {STORE_IMPLS}"
        )
    counting = isinstance(store_like, ACounter)
    if store_impl == "versioned":
        if engine == "kleene":
            raise ValueError(
                "the kleene engine iterates immutable whole-domain snapshots; "
                "the versioned (mutable) store pairs with the worklist engines"
            )
        if counting:
            store_like = VersionedCountingStore(store_like.value_lattice)
        else:
            store_like = VersionedStore(store_like.value_lattice)
    if engine == "depgraph" or (engine != "kleene" and counting):
        return RecordingStore(store_like)
    return store_like


def run_engine_analysis(
    analysis: Any,
    initial_state: Any,
    max_steps: int = 1_000_000,
    warm_start: Any = None,
    capture: Any = None,
    trace: list | None = None,
) -> tuple:
    """Run an assembled analysis under its configured engine.

    Duck-typed over the three language analysis objects: each carries
    ``engine``, ``collecting``, ``step()`` and a ``last_stats`` dict that
    is refreshed with the run's evaluation counts.  ``warm_start`` and
    ``capture`` pass straight through to
    :func:`~repro.core.fixpoint.global_store_explore` (incremental
    re-analysis; see :mod:`repro.service.incremental`).  Analyses
    assembled with ``parallelism="sharded"`` route the versioned
    depgraph path through :mod:`repro.parallel` instead of the
    sequential loop (identical fixed point); ``schedule="priority"``
    drains the worklist in dependency-rank order (same fixed point,
    fewer evaluations on chain/loop shapes).  ``trace`` collects the
    sequential evaluation order (see ``global_store_explore``).

    Observability sits here, *around* the engines, never inside them:
    one ``fixpoint`` span per analysis, and the run's ``last_stats``
    counters folded into the process registry afterwards -- O(1) per
    analysis, zero work in the per-evaluation hot loop.
    """
    analysis.last_stats = {}
    with current_tracer().span(
        "fixpoint", cat="engine", engine=analysis.engine
    ):
        fp = run_with_engine(
            analysis.engine,
            analysis.collecting,
            analysis.step(),
            initial_state,
            max_steps=max_steps,
            stats=analysis.last_stats,
            warm_start=warm_start,
            capture=capture,
            parallelism=getattr(analysis, "parallelism", "none"),
            shards=getattr(analysis, "shards", 1),
            schedule=getattr(analysis, "schedule", "fifo"),
            trace=trace,
        )
    _fold_engine_stats(analysis.engine, analysis.last_stats)
    return fp


def _fold_engine_stats(engine: str, stats: dict) -> None:
    """Mirror one finished run's counters into the process registry.

    The engines keep filling their plain ``stats`` dict (the per-run
    report surface); this fold is what makes the same numbers visible
    as cumulative process-wide series (``repro stats``, benchmarks).
    """
    registry = default_registry()
    registry.counter("engine_analyses_total", engine=engine).inc()
    for key in ("evaluations", "retriggers", "reused", "dedup_hits"):
        value = stats.get(key) or 0
        if value:
            registry.counter(f"engine_{key}_total", engine=engine).inc(value)


def run_with_engine(
    engine: str,
    collecting: SharedStoreCollecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_steps: int = 1_000_000,
    stats: dict | None = None,
    warm_start: Any = None,
    capture: Any = None,
    parallelism: str = "none",
    shards: int = 1,
    schedule: str = "fifo",
    trace: list | None = None,
) -> tuple:
    """Compute the store-widened collecting semantics under a named engine.

    The three :data:`~repro.core.fixpoint.ENGINES` are interchangeable
    evaluation strategies over the same global-store domain:

    * ``kleene``    -- whole-domain Kleene rounds (``exploreFP``);
    * ``worklist``  -- frontier worklist, dependency-blind re-evaluation;
    * ``depgraph``  -- frontier worklist, dependency-tracked re-evaluation.

    All return the fixed point in the shared shape ``(configs, store)``.
    ``stats`` is filled with ``evaluations`` (single-configuration step
    applications, the unit of work all three engines share) plus the
    worklist engines' retrigger/dependency counters.  ``warm_start`` and
    ``capture`` (worklist engines only -- kleene has no per-configuration
    evaluations to record or replay) are documented on
    :func:`~repro.core.fixpoint.global_store_explore`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose one of {ENGINES}")
    if engine == "kleene":
        if warm_start is not None or capture is not None:
            raise ValueError(
                "the kleene engine re-applies the functional to whole-domain "
                "snapshots; warm starts and evaluation capture need the "
                "per-configuration worklist engines"
            )
        if parallelism != "none":
            raise ValueError(
                "the sharded worklist partitions a pending-configuration "
                "frontier; the kleene engine has none"
            )
        if schedule != "fifo":
            raise ValueError(
                "schedule orders a worklist drain; the kleene engine "
                "iterates the whole domain and has no worklist to order"
            )
        if trace is not None:
            raise ValueError(
                "schedule tracing records worklist pops; the kleene engine "
                "has no per-configuration evaluation order to trace"
            )
        evaluations = 0

        if isinstance(step, FusedTransition):
            # staged steps carry the desugared calling convention; wrap
            # without losing the marker the collecting domains dispatch on
            def counted_fused(pstate: Any, guts: Any, store: Any) -> list:
                nonlocal evaluations
                evaluations += 1
                return step(pstate, guts, store)

            counted_step: Any = FusedTransition(counted_fused, step.language)
        else:

            def counted_step(state: Any) -> Any:
                nonlocal evaluations
                evaluations += 1
                return step(state)

        fp = explore_fp(collecting, counted_step, initial_state, max_steps=max_steps)
        if stats is not None:
            stats.update(evaluations=evaluations, configurations=len(fp[0]))
        return fp
    return global_store_explore(
        collecting,
        step,
        initial_state,
        track_deps=(engine == "depgraph"),
        max_evals=max_steps,
        stats=stats,
        warm_start=warm_start,
        capture=capture,
        parallelism=parallelism,
        shards=shards,
        schedule=schedule,
        trace=trace,
    )


@dataclass
class AnalysisRun:
    """A timed analysis outcome, used by the benchmark harness and reports."""

    result: Any
    seconds: float
    label: str = ""
    metrics: dict = field(default_factory=dict)


def timed_analysis(
    collecting: Collecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    label: str = "",
    worklist: bool = False,
    engine: str | None = None,
) -> AnalysisRun:
    """Run an analysis under a wall-clock timer (benchmark harness helper)."""
    start = _time.perf_counter()
    metrics: dict = {}
    if engine is not None:
        if not isinstance(collecting, SharedStoreCollecting):
            raise TypeError("engine selection needs a shared-store domain")
        result = run_with_engine(engine, collecting, step, initial_state, stats=metrics)
    elif worklist:
        if not isinstance(collecting, PerStateStoreCollecting):
            raise TypeError("worklist evaluation needs a per-state-store domain")
        result = run_analysis_worklist(collecting, step, initial_state)
    else:
        result = run_analysis(collecting, step, initial_state)
    elapsed = _time.perf_counter() - start
    return AnalysisRun(result=result, seconds=elapsed, label=label, metrics=metrics)
