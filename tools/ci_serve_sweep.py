"""Preset-matrix sweep against a running ``repro serve`` (CI server-smoke job).

Drives every ``preset x language`` cell through the **CLI client** -- one
``python -m repro client analyse`` subprocess per cell, exactly what a
user at a shell pays -- against a daemon that the CI job started
beforehand.  Two modes:

* ``--expect-complete`` (the cold sweep): every cell must succeed and
  carry a serving tier; first occurrences of a content address must be
  cache misses (presets that differ only in evaluation strategy share an
  address, so later cells may legitimately hit).
* ``--expect-hot`` (the repeat sweep): every cell must be served from
  the in-memory hot tier with zero evaluations -- the resident server's
  whole value proposition, asserted corpus-wide.

Exit status is the number of failing cells (0 = clean)::

    python tools/ci_serve_sweep.py --port 7357 --expect-complete
    python tools/ci_serve_sweep.py --port 7357 --expect-hot
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

from repro.config import LANGUAGES, PRESETS

#: One small corpus program per language (the same matrix the serve and
#: service test suites sweep).
PROGRAMS = {"cps": "mj09", "lam": "eta", "fj": "animals"}


def sweep_cell(port: int, host: str, preset: str, lang: str) -> dict:
    """One ``repro client analyse`` subprocess; the parsed response row."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "client",
        "analyse",
        "--host",
        host,
        "--port",
        str(port),
        "--lang",
        lang,
        "--corpus",
        PROGRAMS[lang],
        "--preset",
        preset,
    ]
    completed = subprocess.run(argv, capture_output=True, text=True)
    if completed.returncode != 0:
        raise RuntimeError(
            f"client exited {completed.returncode}: {completed.stderr.strip()}"
        )
    return json.loads(completed.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--expect-complete",
        action="store_true",
        help="cold sweep: cells succeed; first sight of a key is a miss",
    )
    mode.add_argument(
        "--expect-hot",
        action="store_true",
        help="repeat sweep: every cell tier == hot with 0 evaluations",
    )
    args = parser.parse_args(argv)

    failures = 0
    seen_keys: set[str] = set()
    tiers: dict[str, int] = {}
    for preset in sorted(PRESETS):
        for lang in sorted(LANGUAGES):
            cell = f"{lang}/{PROGRAMS[lang]}/{preset}"
            try:
                row = sweep_cell(args.port, args.host, preset, lang)
            except (RuntimeError, json.JSONDecodeError) as exc:
                print(f"FAIL {cell}: {exc}", file=sys.stderr)
                failures += 1
                continue
            tier = row.get("tier")
            tiers[tier] = tiers.get(tier, 0) + 1
            if args.expect_hot:
                if tier != "hot" or row.get("evaluations") != 0:
                    print(
                        f"FAIL {cell}: tier={tier} "
                        f"evaluations={row.get('evaluations')} (expected hot/0)",
                        file=sys.stderr,
                    )
                    failures += 1
            else:
                first_sight = row["key"] not in seen_keys
                seen_keys.add(row["key"])
                if tier is None or (first_sight and row.get("cache") != "miss"):
                    print(
                        f"FAIL {cell}: tier={tier} cache={row.get('cache')} "
                        "(first sight of this key must be a miss)",
                        file=sys.stderr,
                    )
                    failures += 1
    total = len(PRESETS) * len(LANGUAGES)
    label = "hot" if args.expect_hot else "cold"
    print(f"{label} sweep: {total - failures}/{total} cells ok, tiers {tiers}")
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
