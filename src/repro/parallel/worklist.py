"""Round-based sharded evaluation of the versioned global-store worklist.

The sequential O(delta) engine (:func:`repro.core.fixpoint._versioned_explore`)
pops one configuration at a time, runs it directly against the shared
:class:`~repro.core.store.MutableStore`, and retriggers readers off the
changelog.  :func:`sharded_explore` computes the *same* least fixed
point in bulk-synchronous rounds:

1. **Partition.** The pending configurations are snapshotted and split
   into at most ``shards`` disjoint slices: round-robin under
   ``schedule=fifo`` (the historical deal), or sorted by dependency
   rank and cut into contiguous chunks under ``schedule=priority`` so
   each shard receives depth-contiguous work (see
   :func:`repro.core.schedule.deal_slices`).
2. **Evaluate.** Each slice runs on a worker thread.  Every
   configuration is evaluated against a fresh
   :class:`~repro.core.store.ShardOverlay` over the round-frozen global
   store, so concurrent shards never observe each other's in-flight
   writes: reads land in the overlay's read set (the dependency edges),
   writes land in its private map.
3. **Merge.** At the round barrier the engine walks the slice results
   in deterministic (shard, position) order and merges every private
   write into the global store through ``merge_entry`` -- the same
   grow-only ``bind`` the sequential engine uses, so the changelog
   records exactly the addresses whose value sets grew this round.
4. **Retrigger.** Dependency edges recorded *this* round are added to
   the map first, then every reader of a grown address is re-enqueued
   (unless it is already queued for the next round).

Why the result is bit-identical to the sequential engine: the fixed
point is the least solution of a monotone system over
``P(configs) x Store``, and chaotic iteration converges to that least
solution regardless of evaluation order; both components are built from
commutative, associative joins (frozenset union, per-address value-set
union), so neither the partition, the thread schedule, nor the merge
order can steer the result.  A shard evaluating against a round-stale
store at worst *under*-produces successors and writes it would have
produced later anyway -- the retrigger pass re-runs it once the missing
addresses grow.  Only the trajectory statistics (rounds, retriggers,
peak frontier) are schedule-dependent.

Thread-safety relies on three properties of the surrounding machinery:

* the engine's :class:`~repro.core.store.RecordingStore` wrapper is a
  pure delegator while not logging (sharded evaluation never opens the
  log -- the overlay's read set replaces it);
* the shared ``MutableStore`` is only *read* between barriers; all
  mutation happens in the merge phase, on the coordinating thread;
* hash-consing races (two threads interning structurally-equal terms)
  are correctness-safe: ``@hash_consed`` equality falls back to
  structural comparison when identities differ.

What the mode refuses, and why (enforced in
:func:`repro.core.fixpoint.global_store_explore` and mirrored in
:meth:`repro.config.AnalysisConfig.validated`):

* **abstract GC / counting** -- the per-evaluation reachability sweep
  and the count-saturation pass are sequential engine effects woven
  around each evaluation;
* **warm starts / capture** -- an :class:`~repro.core.fixpoint.EvalRecord`'s
  write set must include no-growth binds (the sequential recorder logs
  them; ``warm-restrict`` keeps a seeded cell alive iff some surviving
  configuration wrote it), but a bind that adds no new values
  early-returns before touching the overlay's private map, so the
  sharded write sets would under-approximate and warm restriction
  would drop live cells.

Under a GIL-enabled interpreter the threads serialize on pure-Python
work and sharding is pure overhead; see PERFORMANCE.md ("Parallel
fixpoints") for the cost model and when to expect wins.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.core.schedule import deal_slices
from repro.core.store import ShardOverlay
from repro.obs.metrics import default_registry
from repro.obs.trace import current_tracer


def sharded_explore(
    collecting: Any,
    step: Callable[[Any], Any],
    initial_state: Any,
    base_store: Any,
    *,
    shards: int,
    max_evals: int = 1_000_000,
    stats: dict | None = None,
    schedule: str = "fifo",
) -> tuple:
    """Compute ``global_store_explore``'s fixed point in sharded rounds.

    ``collecting`` must be a shared-store domain whose ``inner`` store
    is the versioned ``base_store`` (the caller --
    :func:`repro.core.fixpoint.global_store_explore` -- has already
    validated the configuration: versioned store, dependency tracking,
    no GC, no counting, no warm start or capture).  Returns the fixed
    point in the shared-domain shape ``(frozenset(configs), store)``,
    bit-identical to the sequential engine's.

    ``stats``, when supplied, gains the sequential keys plus
    ``rounds``, ``shards`` and ``peak_frontier``; ``evaluations`` and
    ``retriggers`` count the sharded trajectory, which may differ from
    the sequential one (the fixed point does not).

    ``schedule`` orders the within-round deal only: the round barrier
    already dominates the drain order, so ranks steer which shard gets
    which configurations (and in what order inside a slice), not when a
    round runs.  Dedup is per round -- a reader retriggered by several
    grown addresses in one round is enqueued once, the suppressions
    counted in ``dedup_hits``.
    """
    inner = collecting.inner
    seed_configs, seed_store = collecting.inject(initial_state)
    mstore = base_store.thaw(seed_store)

    seen: set = set(seed_configs)
    pending: deque = deque(seen)
    deps: dict = {}
    ranks: dict = {config: 0 for config in seen}
    max_rank = 0
    dedup_hits = 0
    evals = 0
    retriggers = 0
    rounds = 0
    peak_frontier = 0

    def evaluate(slice_: list) -> list:
        # one worker, one slice: fresh overlay per configuration so the
        # read set is exactly this evaluation's dependencies and the
        # write map is exactly its store growth
        out = []
        for config in slice_:
            overlay = ShardOverlay(mstore)
            pairs = inner.run_config_pairs(step, (config, overlay), instrument=False)
            out.append((config, overlay.reads, overlay.written(), pairs))
        return out

    tracer = current_tracer()
    pool = ThreadPoolExecutor(max_workers=shards) if shards > 1 else None
    try:
        while pending:
            rounds += 1
            batch = list(pending)
            pending.clear()
            peak_frontier = max(peak_frontier, len(batch))
            evals += len(batch)
            if evals > max_evals:
                raise _diverged(max_evals)

            slices = deal_slices(batch, shards, schedule, ranks)
            with tracer.span(
                "evaluate-round", cat="parallel", round=rounds, frontier=len(batch)
            ):
                if pool is not None and len(slices) > 1:
                    results = list(pool.map(evaluate, slices))
                else:
                    results = [evaluate(s) for s in slices]

            # barrier: merge in deterministic (shard, position) order --
            # not that order matters for the fixed point, but it keeps
            # the changelog (and hence the stats trajectory) reproducible
            with tracer.span("merge-barrier", cat="parallel", round=rounds):
                mark = mstore.mark()
                queued: set = set()
                for slice_results in results:
                    for config, reads, written, pairs in slice_results:
                        for addr in reads:
                            deps.setdefault(addr, set()).add(config)
                        for addr, entry in written.items():
                            base_store.merge_entry(mstore, addr, entry)
                        for pair in pairs:
                            if pair not in seen:
                                seen.add(pair)
                                rank = ranks.get(config, 0) + 1
                                ranks[pair] = rank
                                if rank > max_rank:
                                    max_rank = rank
                                queued.add(pair)
                                pending.append(pair)

                for addr in set(mstore.changed_since(mark)):
                    for reader in deps.get(addr, ()):
                        if reader not in queued:
                            queued.add(reader)
                            pending.append(reader)
                            retriggers += 1
                        else:
                            dedup_hits += 1
    finally:
        if pool is not None:
            pool.shutdown()

    frozen = base_store.freeze(mstore)
    registry = default_registry()
    registry.counter("parallel_rounds_total").inc(rounds)
    registry.gauge("parallel_peak_frontier").set(peak_frontier)
    if stats is not None:
        stats.update(
            evaluations=evals,
            retriggers=retriggers,
            configurations=len(seen),
            tracked_addresses=len(deps),
            reused=0,
            dedup_hits=dedup_hits,
            max_rank=max_rank,
            schedule=schedule,
            rounds=rounds,
            shards=shards,
            peak_frontier=peak_frontier,
        )
    return (frozenset(seen), frozen)


def _diverged(max_evals: int) -> Exception:
    # imported lazily: repro.core.fixpoint imports this module lazily in
    # the other direction, and the exception type must be the one
    # callers of the sequential engine already catch
    from repro.core.fixpoint import FixpointDiverged

    return FixpointDiverged(
        f"no fixed point within {max_evals} configuration evaluations"
    )
