"""Abstract garbage collection machinery (paper 6.4)."""

from dataclasses import dataclass

from hypothesis import given
from hypothesis import strategies as st

from repro.core.gc import (
    GarbageCollector,
    MonadicStoreCollector,
    collect_store,
    reachable_addresses,
)
from repro.core.monads import StorePassing
from repro.core.store import BasicStore


@dataclass(frozen=True)
class Node:
    """A toy stored value pointing at other addresses."""

    points_to: frozenset

    @staticmethod
    def to(*addrs):
        return Node(frozenset(addrs))


class GraphTouching:
    """Touchability over Node graphs; roots supplied per-state as a set."""

    def touched_by_state(self, pstate):
        return frozenset(pstate)

    def touched_by_value(self, value):
        return value.points_to


def build_store(store_like, edges):
    store = store_like.empty()
    for addr, targets in edges.items():
        store = store_like.bind(store, addr, frozenset([Node.to(*targets)]))
    return store


class TestReachability:
    def setup_method(self):
        self.s = BasicStore()

    def test_direct_roots_always_reachable(self):
        store = build_store(self.s, {"a": []})
        assert reachable_addresses(self.s, store, ["a"], lambda v: v.points_to) == frozenset(
            ["a"]
        )

    def test_transitive_chain(self):
        store = build_store(self.s, {"a": ["b"], "b": ["c"], "c": []})
        live = reachable_addresses(self.s, store, ["a"], lambda v: v.points_to)
        assert live == frozenset(["a", "b", "c"])

    def test_unreachable_excluded(self):
        store = build_store(self.s, {"a": ["b"], "b": [], "junk": ["a"]})
        live = reachable_addresses(self.s, store, ["a"], lambda v: v.points_to)
        assert "junk" not in live

    def test_cycles_terminate(self):
        store = build_store(self.s, {"a": ["b"], "b": ["a"]})
        live = reachable_addresses(self.s, store, ["a"], lambda v: v.points_to)
        assert live == frozenset(["a", "b"])

    def test_multiple_values_per_address(self):
        s = self.s
        store = s.empty()
        store = s.bind(store, "a", frozenset([Node.to("b"), Node.to("c")]))
        store = s.bind(store, "b", frozenset([Node.to()]))
        store = s.bind(store, "c", frozenset([Node.to()]))
        live = reachable_addresses(s, store, ["a"], lambda v: v.points_to)
        assert live == frozenset(["a", "b", "c"])

    @given(
        st.dictionaries(
            st.sampled_from("abcdef"),
            st.lists(st.sampled_from("abcdef"), max_size=3),
            max_size=6,
        ),
        st.frozensets(st.sampled_from("abcdef"), max_size=2),
    )
    def test_reachability_is_sound_and_idempotent(self, edges, roots):
        store = build_store(self.s, edges)
        live = reachable_addresses(self.s, store, roots, lambda v: v.points_to)
        # roots live; and re-sweeping from live set adds nothing
        assert roots <= live
        again = reachable_addresses(self.s, store, live, lambda v: v.points_to)
        assert again == live


class TestCollectStore:
    def setup_method(self):
        self.s = BasicStore()
        self.touching = GraphTouching()

    def test_collect_drops_garbage(self):
        store = build_store(self.s, {"a": ["b"], "b": [], "junk": []})
        collected = collect_store(self.s, store, frozenset(["a"]), self.touching)
        assert set(self.s.addresses(collected)) == {"a", "b"}

    def test_collect_preserves_live_values(self):
        store = build_store(self.s, {"a": ["b"], "b": []})
        collected = collect_store(self.s, store, frozenset(["a"]), self.touching)
        assert self.s.fetch(collected, "a") == self.s.fetch(store, "a")

    def test_collect_is_idempotent(self):
        store = build_store(self.s, {"a": ["b"], "b": [], "x": ["y"], "y": []})
        once = collect_store(self.s, store, frozenset(["a"]), self.touching)
        twice = collect_store(self.s, once, frozenset(["a"]), self.touching)
        assert once == twice

    def test_empty_roots_clear_store(self):
        store = build_store(self.s, {"a": []})
        collected = collect_store(self.s, store, frozenset(), self.touching)
        assert not list(self.s.addresses(collected))


class TestGarbageCollectorClasses:
    def test_default_gc_is_noop(self):
        sp = StorePassing()
        collector = GarbageCollector(sp)
        result = sp.run(collector.gc(frozenset(["a"])), "guts", "store")
        assert result == [((None, "guts"), "store")]

    def test_monadic_collector_sweeps_store(self):
        sp = StorePassing()
        s = BasicStore()
        collector = MonadicStoreCollector(sp, s, GraphTouching())
        store = build_store(s, {"a": [], "junk": []})
        results = sp.run(collector.gc(frozenset(["a"])), "guts", store)
        [((_, _guts), swept)] = results
        assert set(s.addresses(swept)) == {"a"}
