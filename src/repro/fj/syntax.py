"""Featherweight Java abstract syntax (Igarashi-Pierce-Wadler).

The five expression forms of FJ::

    e ::= x | e.f | e.m(e...) | new C(e...) | (C) e

Classes declare typed fields and methods whose bodies are single
``return`` expressions; the canonical constructor of FJ is implicit
(it always assigns every field from the like-named parameter, so we
synthesize it rather than parse boilerplate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Iterator

OBJECT = "Object"
"""The root of the class hierarchy."""


class Expr:
    """An FJ expression."""

    __slots__ = ()


@hash_consed
@dataclass(frozen=True)
class VarE(Expr):
    """A variable (including ``this``)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@hash_consed
@dataclass(frozen=True)
class FieldAccess(Expr):
    """``e.f``."""

    obj: Expr
    fld: str

    def __repr__(self) -> str:
        return f"{self.obj!r}.{self.fld}"


@hash_consed
@dataclass(frozen=True)
class Invoke(Expr):
    """``e.m(e1, ..., en)``."""

    obj: Expr
    method: str
    args: tuple[Expr, ...]

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.obj!r}.{self.method}({args})"


@hash_consed
@dataclass(frozen=True)
class New(Expr):
    """``new C(e1, ..., en)``."""

    cls: str
    args: tuple[Expr, ...]

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"new {self.cls}({args})"


@hash_consed
@dataclass(frozen=True)
class Cast(Expr):
    """``(C) e``."""

    cls: str
    obj: Expr

    def __repr__(self) -> str:
        return f"({self.cls}) {self.obj!r}"


@hash_consed
@dataclass(frozen=True)
class MethodDef:
    """``T m(T1 x1, ..., Tn xn) { return e; }``."""

    ret_type: str
    name: str
    params: tuple[tuple[str, str], ...]  # (type, name)
    body: Expr

    def param_names(self) -> tuple[str, ...]:
        return tuple(name for _t, name in self.params)

    def param_types(self) -> tuple[str, ...]:
        return tuple(t for t, _name in self.params)

    def __repr__(self) -> str:
        params = ", ".join(f"{t} {n}" for t, n in self.params)
        return f"{self.ret_type} {self.name}({params}) {{ return {self.body!r}; }}"


@hash_consed
@dataclass(frozen=True)
class ClassDef:
    """``class C extends D { fields; methods }`` with the canonical constructor."""

    name: str
    superclass: str
    fields: tuple[tuple[str, str], ...]  # (type, name), own fields only
    methods: tuple[MethodDef, ...]

    def method(self, name: str) -> MethodDef | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None

    def __repr__(self) -> str:
        return f"class {self.name} extends {self.superclass}"


@hash_consed
@dataclass(frozen=True)
class Program:
    """An FJ program: class definitions plus a main expression."""

    classes: tuple[ClassDef, ...]
    main: Expr

    def class_named(self, name: str) -> ClassDef | None:
        for c in self.classes:
            if c.name == name:
                return c
        return None


def free_vars(expr: Expr) -> frozenset:
    """Free variables of an FJ expression (``this`` included)."""
    if isinstance(expr, VarE):
        return frozenset([expr.name])
    if isinstance(expr, FieldAccess):
        return free_vars(expr.obj)
    if isinstance(expr, Invoke):
        out = free_vars(expr.obj)
        for a in expr.args:
            out |= free_vars(a)
        return out
    if isinstance(expr, New):
        out = frozenset()
        for a in expr.args:
            out |= free_vars(a)
        return out
    if isinstance(expr, Cast):
        return free_vars(expr.obj)
    raise TypeError(f"not an FJ expression: {expr!r}")


def subterms(expr: Expr) -> Iterator[Expr]:
    """All subexpressions, preorder."""
    yield expr
    if isinstance(expr, FieldAccess):
        yield from subterms(expr.obj)
    elif isinstance(expr, Invoke):
        yield from subterms(expr.obj)
        for a in expr.args:
            yield from subterms(a)
    elif isinstance(expr, New):
        for a in expr.args:
            yield from subterms(a)
    elif isinstance(expr, Cast):
        yield from subterms(expr.obj)


def program_size(program: Program) -> int:
    """Total number of expression nodes across methods and main."""
    total = sum(1 for _ in subterms(program.main))
    for cls in program.classes:
        for m in cls.methods:
            total += sum(1 for _ in subterms(m.body))
    return total
