"""E10 -- adequacy of the monadic refactoring (3, Figure 2).

Claims regenerated: the monadic ``mnext`` run through the
``StorePassing`` machinery computes exactly the same reachable
configuration sets as the hand-written pre-monadic transition of section
2.4, and as the generator do-notation variant; the monadic encoding's
overhead is the price of the abstraction, measured here.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, timed
from repro.core.addresses import KCFA
from repro.core.collecting import PerStateStoreCollecting
from repro.core.fixpoint import reachable
from repro.core.store import BasicStore
from repro.cps.analysis import AbstractCPSInterface
from repro.cps.direct import direct_abstract_step
from repro.cps.semantics import inject, mnext, mnext_do
from repro.corpus.cps_programs import PROGRAMS, id_chain


def monadic_reachable(program, addressing, step_fn):
    store_like = BasicStore()
    interface = AbstractCPSInterface(addressing, store_like)
    collecting = PerStateStoreCollecting(interface.monad, store_like, addressing.tau0())
    step = lambda ps: step_fn(interface, ps)
    return reachable(
        collecting.inject(inject(program)),
        lambda config: collecting.successors_of(step, config),
    )


def direct_reachable(program, addressing):
    store_like = BasicStore()
    step = direct_abstract_step(addressing, store_like)
    seed = ((inject(program), addressing.tau0()), store_like.empty())
    return reachable([seed], step)


def test_e10_three_formulations_agree(benchmark):
    names = ["identity", "mj09", "omega", "self-apply"]

    def run():
        out = {}
        for name in names:
            program = PROGRAMS[name]
            out[name] = (
                monadic_reachable(program, KCFA(1), mnext),
                monadic_reachable(program, KCFA(1), mnext_do),
                direct_reachable(program, KCFA(1)),
            )
        return out

    results = run_once(benchmark, run)
    for name, (monadic, do_notation, direct) in results.items():
        assert monadic == direct, name
        assert monadic == do_notation, name


def test_e10_monadic_overhead(benchmark):
    program = id_chain(8)

    def best_of(thunk, repeats=3):
        return min(timed(thunk)[1] for _ in range(repeats))

    def run():
        t_monadic = best_of(lambda: monadic_reachable(program, KCFA(1), mnext))
        t_do = best_of(lambda: monadic_reachable(program, KCFA(1), mnext_do))
        t_direct = best_of(lambda: direct_reachable(program, KCFA(1)))
        return t_monadic, t_do, t_direct

    t_monadic, t_do, t_direct = run_once(benchmark, run)
    print()
    print(
        fmt_table(
            ["formulation", "time", "vs direct"],
            [
                ("hand-written (2.4)", f"{t_direct:.4f}s", "1.0x"),
                ("monadic mnext (Fig. 2)", f"{t_monadic:.4f}s", f"{t_monadic/t_direct:.1f}x"),
                ("generator do-notation", f"{t_do:.4f}s", f"{t_do/t_direct:.1f}x"),
            ],
        )
    )
    # the measurement is informational (the abstraction's price); the
    # correctness content -- identical state sets -- is asserted in
    # test_e10_three_formulations_agree.  Millisecond-scale orderings are
    # too load-sensitive to gate on, so only sanity is asserted here.
    assert t_monadic > 0 and t_do > 0 and t_direct > 0


def test_e10_agreement_scales(benchmark):
    program = id_chain(4)

    def run():
        return (
            monadic_reachable(program, KCFA(1), mnext),
            direct_reachable(program, KCFA(1)),
        )

    monadic, direct = run_once(benchmark, run)
    assert monadic == direct
    assert len(monadic) >= 10
