"""E4 -- store cloning vs the single-threaded store (6.5, 8.2).

Claims regenerated: per-state-store analysis can take time (and space)
exponential in program size; the store-sharing widening -- implemented
as ``alpha . applyStep . gamma`` over the Galois connection of equation
(3), with *no* change to the semantics -- is polynomial; and the widened
result still covers the per-state result.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, timed
from repro.cps.analysis import analyse_kcfa, analyse_shared
from repro.corpus.cps_programs import heap_clone


def test_e4_heap_cloning_blowup(benchmark):
    sizes = (2, 4, 6, 8)

    def run():
        out = {}
        for n in sizes:
            program = heap_clone(n)
            per_state, t_ps = timed(lambda p=program: analyse_kcfa(p, 1))
            shared, t_sh = timed(lambda p=program: analyse_shared(p, 1))
            out[n] = (per_state.num_elements(), t_ps, shared.num_elements(), t_sh)
        return out

    table = run_once(benchmark, run)
    rows = [
        (n, ps, f"{tps:.3f}s", sh, f"{tsh:.3f}s")
        for n, (ps, tps, sh, tsh) in sorted(table.items())
    ]
    print()
    print(
        fmt_table(
            ["n", "per-state |fp|", "per-state time", "shared |fp|", "shared time"],
            rows,
        )
    )
    # exponential vs linear shape: per-state roughly doubles per step,
    # shared grows by a constant
    assert table[8][0] >= 3.5 * table[6][0]
    assert table[8][2] - table[6][2] <= 8


def test_e4_shared_covers_per_state(benchmark):
    program = heap_clone(5)

    def run():
        return analyse_kcfa(program, 1), analyse_shared(program, 1)

    per_state, shared = run_once(benchmark, run)
    for var, lams in per_state.flows_to().items():
        assert lams <= shared.flows_to().get(var, frozenset())
    assert per_state.states() <= shared.states()


def test_e4_widening_is_the_cheap_direction(benchmark):
    """At the blowup sizes the widened analysis wins outright."""
    program = heap_clone(10)

    def run():
        return timed(lambda: analyse_shared(program, 1))

    _result, seconds = run_once(benchmark, run)
    assert seconds < 30  # the per-state analysis at n=10 is ~2^10 configs
