"""Complete lattices, transliterated from the paper's ``Lattice`` class (5.2).

The paper defines::

    class Lattice a where
      bot :: a
      top :: a
      leq  :: a -> a -> Bool
      join :: a -> a -> a
      meet :: a -> a -> a

Haskell resolves the instance from the *type*; Python has no such
dispatch, so a lattice here is a first-class *instance object* (a
:class:`Lattice`) describing a carrier set, and lattice *elements* are
ordinary Python values (frozensets, PMaps, tuples, ...).  Composite
lattices are built by composing instance objects, mirroring the paper's

    instance Lattice ()
    instance (Lattice a, Lattice b) => Lattice (a, b)
    instance (Ord s, Eq s)          => Lattice (P s)
    instance (Ord k, Lattice v)     => Lattice (k :-> v)

exactly: :class:`UnitLattice`, :class:`PairLattice`,
:class:`PowersetLattice` and :class:`MapLattice`.

The module also houses the abstract-counting domain ``AbsNat = {0,1,inf}``
with its abstract addition ``(+)`` (the paper's 6.3), because it is a
lattice like any other and is reused by every counting store.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, TypeVar

from repro.util.pcollections import PMap, pmap

A = TypeVar("A")


class Lattice(ABC):
    """A complete lattice <C; leq, bot, top, join, meet> over Python values.

    ``top`` may be unrepresentable (e.g. the powerset of an infinite
    universe); such instances raise :class:`TopUndefined`.  All analysis
    code only ever needs ``bot``, ``leq`` and ``join`` (Kleene iteration
    ascends from bottom), so an undefined top is harmless in practice.
    """

    @abstractmethod
    def bottom(self) -> Any:
        """The least element."""

    def top(self) -> Any:
        """The greatest element, when representable."""
        raise TopUndefined(f"{type(self).__name__} has no representable top element")

    @abstractmethod
    def leq(self, x: Any, y: Any) -> bool:
        """The partial order: is ``x`` under ``y``?"""

    @abstractmethod
    def join(self, x: Any, y: Any) -> Any:
        """Least upper bound of ``x`` and ``y``."""

    @abstractmethod
    def meet(self, x: Any, y: Any) -> Any:
        """Greatest lower bound of ``x`` and ``y``."""

    # -- derived operations -------------------------------------------------

    def join_all(self, elements: Iterable[Any]) -> Any:
        """Least upper bound of finitely many elements (bottom if none)."""
        result = self.bottom()
        for element in elements:
            result = self.join(result, element)
        return result

    def equiv(self, x: Any, y: Any) -> bool:
        """Order-equivalence: ``x <= y`` and ``y <= x``."""
        return self.leq(x, y) and self.leq(y, x)


class TopUndefined(Exception):
    """Raised when a lattice cannot represent its top element."""


# ---------------------------------------------------------------------------
# instance Lattice ()
# ---------------------------------------------------------------------------


class UnitLattice(Lattice):
    """The one-point lattice; its sole element is ``()``.

    Used as the "guts" component when an analysis carries no extra state
    (e.g. context-insensitive analyses where time is trivial).
    """

    def bottom(self) -> tuple:
        return ()

    def top(self) -> tuple:
        return ()

    def leq(self, x: tuple, y: tuple) -> bool:
        return True

    def join(self, x: tuple, y: tuple) -> tuple:
        return ()

    def meet(self, x: tuple, y: tuple) -> tuple:
        return ()


# ---------------------------------------------------------------------------
# instance (Ord s, Eq s) => Lattice (P s)
# ---------------------------------------------------------------------------


class PowersetLattice(Lattice):
    """The powerset lattice ``<P(S); subset, {}, S, union, intersection>``.

    Elements are ``frozenset``s.  ``top`` is defined only when a finite
    ``universe`` is supplied; the collecting-semantics domains never need
    it (Kleene iteration ascends from the empty set).
    """

    def __init__(self, universe: frozenset | None = None):
        self.universe = None if universe is None else frozenset(universe)

    def bottom(self) -> frozenset:
        return frozenset()

    def top(self) -> frozenset:
        if self.universe is None:
            raise TopUndefined("powerset lattice over an unbounded universe")
        return self.universe

    def leq(self, x: frozenset, y: frozenset) -> bool:
        return x <= y

    def join(self, x: frozenset, y: frozenset) -> frozenset:
        return x | y

    def meet(self, x: frozenset, y: frozenset) -> frozenset:
        return x & y


# ---------------------------------------------------------------------------
# instance (Lattice a, Lattice b) => Lattice (a, b)
# ---------------------------------------------------------------------------


class PairLattice(Lattice):
    """Component-wise lattice on pairs; generalized by :class:`ProductLattice`."""

    def __init__(self, first: Lattice, second: Lattice):
        self.first = first
        self.second = second

    def bottom(self) -> tuple:
        return (self.first.bottom(), self.second.bottom())

    def top(self) -> tuple:
        return (self.first.top(), self.second.top())

    def leq(self, x: tuple, y: tuple) -> bool:
        return self.first.leq(x[0], y[0]) and self.second.leq(x[1], y[1])

    def join(self, x: tuple, y: tuple) -> tuple:
        return (self.first.join(x[0], y[0]), self.second.join(x[1], y[1]))

    def meet(self, x: tuple, y: tuple) -> tuple:
        return (self.first.meet(x[0], y[0]), self.second.meet(x[1], y[1]))


class ProductLattice(Lattice):
    """Component-wise lattice on n-tuples."""

    def __init__(self, *components: Lattice):
        if not components:
            raise ValueError("a product lattice needs at least one component")
        self.components = components

    def bottom(self) -> tuple:
        return tuple(c.bottom() for c in self.components)

    def top(self) -> tuple:
        return tuple(c.top() for c in self.components)

    def leq(self, x: tuple, y: tuple) -> bool:
        return all(c.leq(a, b) for c, a, b in zip(self.components, x, y))

    def join(self, x: tuple, y: tuple) -> tuple:
        return tuple(c.join(a, b) for c, a, b in zip(self.components, x, y))

    def meet(self, x: tuple, y: tuple) -> tuple:
        return tuple(c.meet(a, b) for c, a, b in zip(self.components, x, y))


# ---------------------------------------------------------------------------
# instance (Ord k, Lattice v) => Lattice (k :-> v)
# ---------------------------------------------------------------------------


class MapLattice(Lattice):
    """The map lattice ``k :-> v`` with point-wise order over a value lattice.

    Elements are :class:`~repro.util.pcollections.PMap`s.  An absent key
    denotes the value-lattice bottom, so the empty map is the lattice
    bottom and join is the paper's store join::

        sigma |_| sigma' = \\a. sigma(a) `join` sigma'(a)
    """

    def __init__(self, value_lattice: Lattice):
        self.value_lattice = value_lattice

    def bottom(self) -> PMap:
        return pmap()

    def leq(self, x: PMap, y: PMap) -> bool:
        value = self.value_lattice
        for key, vx in x.items():
            if key in y:
                if not value.leq(vx, y[key]):
                    return False
            elif not value.leq(vx, value.bottom()):
                return False
        return True

    def join(self, x: PMap, y: PMap) -> PMap:
        # Copy-on-grow: return ``x`` itself when ``y`` adds nothing, so
        # callers (notably the global-store engines) can use object
        # identity as a free did-anything-change test.
        value = self.value_lattice
        merged: dict | None = None
        for key, vy in y.items():
            if key in x:
                vx = x[key]
                if value.leq(vy, vx):
                    continue
                if merged is None:
                    merged = x.to_dict()
                merged[key] = value.join(vx, vy)
            else:
                if merged is None:
                    merged = x.to_dict()
                merged[key] = vy
        return x if merged is None else PMap(merged)

    def meet(self, x: PMap, y: PMap) -> PMap:
        value = self.value_lattice
        out: dict = {}
        for key, vx in x.items():
            if key in y:
                out[key] = value.meet(vx, y[key])
        return pmap(out)

    def lookup(self, m: PMap, key: Any) -> Any:
        """Total lookup: absent keys read as the value-lattice bottom."""
        if key in m:
            return m[key]
        return self.value_lattice.bottom()


# ---------------------------------------------------------------------------
# Flat and lifted lattices (used by constant-style abstractions and tests)
# ---------------------------------------------------------------------------

_BOT = ("<flat-bottom>",)
_TOP = ("<flat-top>",)


class FlatLattice(Lattice):
    """The flat lattice over a set of incomparable points: bot <= x <= top.

    Elements are either :data:`FlatLattice.BOT`, :data:`FlatLattice.TOP`,
    or any hashable payload value.  Distinct payloads are incomparable and
    join to top.
    """

    BOT = _BOT
    TOP = _TOP

    def bottom(self):
        return _BOT

    def top(self):
        return _TOP

    def leq(self, x, y) -> bool:
        if x == _BOT or y == _TOP:
            return True
        if x == _TOP:
            return y == _TOP
        if y == _BOT:
            return False
        return x == y

    def join(self, x, y):
        if x == _BOT:
            return y
        if y == _BOT:
            return x
        if x == y:
            return x
        return _TOP

    def meet(self, x, y):
        if x == _TOP:
            return y
        if y == _TOP:
            return x
        if x == y:
            return x
        return _BOT


class DualLattice(Lattice):
    """The order-dual of a lattice (top/bottom and join/meet swapped)."""

    def __init__(self, inner: Lattice):
        self.inner = inner

    def bottom(self):
        return self.inner.top()

    def top(self):
        return self.inner.bottom()

    def leq(self, x, y) -> bool:
        return self.inner.leq(y, x)

    def join(self, x, y):
        return self.inner.meet(x, y)

    def meet(self, x, y):
        return self.inner.join(x, y)


# ---------------------------------------------------------------------------
# AbsNat: the abstract-counting domain (paper 6.3)
# ---------------------------------------------------------------------------


class AbsNat(enum.Enum):
    """Abstract naturals ``N^ = {0, 1, inf}`` ordered as the chain 0 <= 1 <= inf.

    ``AbsNat`` both *is* a lattice element (for :class:`AbsNatLattice`)
    and carries the abstract addition ``(+)`` from the paper::

        AZero (+) n = n
        n (+) AZero = n
        n (+) m     = AMany

    A count of :data:`AbsNat.ONE` on an abstract address certifies that it
    stands for at most one concrete address, licensing strong updates
    (must-alias / environment analysis).
    """

    ZERO = 0
    ONE = 1
    MANY = 2

    def plus(self, other: "AbsNat") -> "AbsNat":
        """The paper's abstract addition ``(+)`` on abstract naturals."""
        if self is AbsNat.ZERO:
            return other
        if other is AbsNat.ZERO:
            return self
        return AbsNat.MANY

    def __le__(self, other: "AbsNat") -> bool:
        return self.value <= other.value

    def __lt__(self, other: "AbsNat") -> bool:
        return self.value < other.value

    def __repr__(self) -> str:  # compact in analysis dumps
        return {"ZERO": "0#", "ONE": "1#", "MANY": "inf#"}[self.name]


class AbsNatLattice(Lattice):
    """``N^`` as the chain lattice 0 <= 1 <= inf (paper 6.3).

    The paper notes the only requirement on ``N^`` is that it be a
    lattice; the degenerate one-point variant (counting switched off) is
    :class:`TrivialCountLattice`.
    """

    def bottom(self) -> AbsNat:
        return AbsNat.ZERO

    def top(self) -> AbsNat:
        return AbsNat.MANY

    def leq(self, x: AbsNat, y: AbsNat) -> bool:
        return x.value <= y.value

    def join(self, x: AbsNat, y: AbsNat) -> AbsNat:
        return x if x.value >= y.value else y

    def meet(self, x: AbsNat, y: AbsNat) -> AbsNat:
        return x if x.value <= y.value else y


class TrivialCountLattice(Lattice):
    """The degenerate count domain ``N^ = {inf}``: abstract counting off."""

    def bottom(self) -> AbsNat:
        return AbsNat.MANY

    def top(self) -> AbsNat:
        return AbsNat.MANY

    def leq(self, x: AbsNat, y: AbsNat) -> bool:
        return True

    def join(self, x: AbsNat, y: AbsNat) -> AbsNat:
        return AbsNat.MANY

    def meet(self, x: AbsNat, y: AbsNat) -> AbsNat:
        return AbsNat.MANY


# ---------------------------------------------------------------------------
# joinWith (paper 5.3.3)
# ---------------------------------------------------------------------------


def join_with(lattice: Lattice, f: Callable[[Any], Any], elements: Iterable[Any]) -> Any:
    """The paper's ``joinWith``: map ``f`` over a collection, folding with join.

    ``joinWith f = Set.foldr ((join) . f) bot``
    """
    result = lattice.bottom()
    for element in elements:
        result = lattice.join(result, f(element))
    return result
