"""Lowering ``imp`` into the direct-style lambda calculus.

The pass turns the imperative surface language into a pure
:class:`repro.lam.syntax.Expr`, which the existing pipeline consumes
unchanged (CESK machine, every preset/engine/store-impl, and -- through
:func:`repro.lam.cps_transform.cps_convert` -- the CPS analyses).

Encodings
---------

* **Integers** are *Scott* numerals -- ``0 = (lambda (s z) z)``,
  ``k+1 = (lambda (s z) (s k))`` -- over the **saturated domain**
  ``{0 .. DOMAIN_BOUND}``: literals clamp, addition saturates at the
  top, ``__sub`` is monus.  Scott case analysis is a single
  application, so every binary operator (``__add``, ``__mul``,
  ``__sub``, ``__leq``, ``__eq``, ``__lt``) is a *fixpoint-free lookup
  table*: nested case towers of depth ``DOMAIN_BOUND`` whose leaves
  are constants (:func:`_table2`).  That is the load-bearing choice
  for the abstract side: recursive arithmetic combinators turn every
  ``x * y`` into an abstract fixpoint whose flow sets cross-product
  through the recursion's self-application (minutes per program at
  1CFA), and even chained ``succ``-calls re-merge every intermediate
  value at the shared combinator's parameter.  The tables cost a
  bigger term and analyse in milliseconds.  Saturation keeps the
  unrolling total: the semantics is exact below the bound and clamps
  above it, which the differential fuzz oracle is insensitive to (it
  compares the concrete and abstract runs of the *same* lowered term).
* **Booleans** are two-argument Church booleans ``(lambda (t f) t/f)``,
  so an ``if`` is a single application of the condition to two branch
  thunks, forced with a dummy argument.  ``and``/``or`` are strict.
* **Assignment is shadowing.** Straight-line ``x = e;`` lowers to a
  nested ``let`` rebinding ``x``.  Control-flow joins thread the
  assigned variables explicitly: an ``if`` whose branches assign
  ``{x, y}`` lowers to a *join function* ``(lambda (x y) rest)`` that
  both branches call with their final values.
* **Loops are n-ary Z combinators.** A ``while`` whose body assigns
  ``{x, y}`` becomes a recursive function of ``(x, y)`` built with a
  call-by-value fixpoint combinator *private to that loop* (see
  :func:`_fix_combinator` for why sharing one is an analysis hazard);
  the loop exit calls the join function, the back edge calls the loop
  itself.
* **Closures capture by value**: a ``fn`` literal sees the bindings at
  its creation point (shadowing never mutates an environment), and may
  only assign its *own* ``let``\\ s and parameters -- assigning an outer
  variable from inside a function is a :class:`LoweringError`.

Every manufactured name (``__join0``, ``__loop0``, prelude combinators)
starts with ``__``, which the parser reserves; source programs therefore
cannot capture or shadow them, and the lowering needs no gensym hygiene
beyond its own counter.  ``cps_convert`` additionally ``uniquify``-renames
duplicate binders before CPS conversion, so Church-encoded reuse of
``f``/``x`` inside the prelude is safe there too.
"""

from __future__ import annotations

from repro.imp.syntax import (
    EBinOp,
    EBool,
    ECall,
    EFn,
    EInt,
    EUnary,
    EVar,
    Expr as IExpr,
    Program,
    SAssign,
    SExpr,
    SIf,
    SLet,
    SReturn,
    SWhile,
    Stmt,
)
from repro.lam.syntax import App, Expr, Lam, Let, Var


class LoweringError(ValueError):
    """A scope error: unbound read, undeclared assignment, bad arity."""


# -- the Church prelude -----------------------------------------------------

#: Integer arithmetic saturates here: the value domain is
#: ``{0 .. DOMAIN_BOUND}``.  Literals above the bound clamp, ``__succ``
#: of the top element is the top element, subtraction is monus.  Small
#: enough that the unrolled case towers stay compact, large enough for
#: the generated corpus (literals <= 3, short counting loops).
DOMAIN_BOUND = 4


def scott_numeral(n: int) -> Expr:
    """The Scott numeral: ``0 = (lambda (s z) z)``, ``k+1 = (lambda (s z) (s k))``.

    Clamps to :data:`DOMAIN_BOUND` -- every numeral the lowering ever
    manufactures lives in the saturated domain.
    """
    term: Expr = Lam(("s", "z"), Var("z"))
    for _ in range(min(n, DOMAIN_BOUND)):
        term = Lam(("s", "z"), App(Var("s"), (term,)))
    return term


_TRUE = Lam(("t", "f"), Var("t"))
_FALSE = Lam(("t", "f"), Var("f"))
_ID = Lam(("u",), Var("u"))


def _case(scrutinee: Expr, on_succ: Expr, on_zero: Expr) -> Expr:
    """Scott case analysis: one application of the numeral to its branches."""
    return App(scrutinee, (on_succ, on_zero))


def _case_tower(subject: Expr, leaf, tag: str) -> Expr:
    """Unrolled case analysis over the saturated domain -- no fixpoint.

    Evaluates to ``leaf(k)`` when ``subject`` is the numeral ``k``; at
    depth :data:`DOMAIN_BOUND` the remaining predecessor is dropped and
    ``leaf(DOMAIN_BOUND)`` is returned (saturation).  ``tag`` keeps the
    tower's binders distinct per combinator so their flow sets never
    merge, even under a monovariant analysis.
    """

    def chain(scrutinee: Expr, k: int) -> Expr:
        if k == DOMAIN_BOUND:
            return leaf(k)
        binder = f"__p{k + 1}_{tag}"
        return _case(scrutinee, Lam((binder,), chain(Var(binder), k + 1)), leaf(k))

    return chain(subject, 0)


def _bounded_tower(subject: Expr, depth: int, leaf, rest: Expr, tag: str) -> Expr:
    """A case tower that stops early once the answer is decided.

    Evaluates to ``leaf(k)`` when ``subject`` is the numeral ``k`` with
    ``k < depth``, and to ``rest`` for every ``k >= depth``.  Used for
    operators with one literal operand: ``i < 3`` is decided after
    peeling at most three successors, so the tower is three cases deep
    instead of a full two-operand table -- the dominant win inside loop
    bodies, where the tables would be re-explored on every abstract
    iteration.
    """

    def chain(scrutinee: Expr, k: int) -> Expr:
        if k == depth:
            return rest
        binder = f"__q{k + 1}_{tag}"
        return _case(scrutinee, Lam((binder,), chain(Var(binder), k + 1)), leaf(k))

    return chain(subject, 0)


def _table2(tag: str, value_of) -> Expr:
    """A binary operator as a full lookup table over the saturated domain.

    ``(lambda (m n) ...)`` where the body is a case tower over ``m``
    whose every leaf is a case tower over ``n`` whose every leaf is the
    *constant* ``value_of(k, j)``.  No recursion and no calls into other
    combinators: the only applications are the case analyses themselves,
    so the abstract dataflow of ``m op n`` is one bounded fan-out per
    operand and a constant result -- the cheapest encoding any of the
    analyses can be handed.  (Chaining ``__succ``/``__add`` calls
    instead re-merges every intermediate value at the shared
    combinator's parameters and measurably explodes the monovariant
    presets.)
    """
    return Lam(
        ("m", "n"),
        _case_tower(
            Var("m"),
            lambda k: _case_tower(Var("n"), lambda j: value_of(k, j), f"{tag}{k}"),
            tag,
        ),
    )


def _prelude_term(name: str) -> Expr:
    """Build one prelude combinator (all closed, all CBV-safe)."""
    if name == "__id":
        return _ID
    if name == "__true":
        return _TRUE
    if name == "__false":
        return _FALSE
    if name == "__not":
        return Lam(("a",), App(Var("a"), (Var("__false"), Var("__true"))))
    if name == "__and":
        return Lam(("a", "b"), App(Var("a"), (Var("b"), Var("__false"))))
    if name == "__or":
        return Lam(("a", "b"), App(Var("a"), (Var("__true"), Var("b"))))
    if name == "__add":
        return _table2("add", lambda k, j: scott_numeral(k + j))
    if name == "__mul":
        return _table2("mul", lambda k, j: scott_numeral(k * j))
    if name == "__sub":
        # monus: saturates at zero
        return _table2("sub", lambda k, j: scott_numeral(max(k - j, 0)))
    if name == "__iszero":
        return Lam(
            ("n",),
            _case(Var("n"), Lam(("__pz",), Var("__false")), Var("__true")),
        )
    if name == "__leq":
        return _table2("leq", lambda k, j: Var("__true" if k <= j else "__false"))
    if name == "__eq":
        return _table2("eq", lambda k, j: Var("__true" if k == j else "__false"))
    if name == "__lt":
        return _table2("lt", lambda k, j: Var("__true" if k < j else "__false"))
    raise LoweringError(f"unknown prelude combinator {name!r}")


#: Emission order: later entries may reference earlier ones.  The whole
#: prelude is fixpoint-free; only lowered ``while`` loops recurse, each
#: through its own private :func:`_fix_combinator` copy.
_PRELUDE_ORDER = (
    "__id",
    "__true",
    "__false",
    "__not",
    "__and",
    "__or",
    "__add",
    "__mul",
    "__sub",
    "__iszero",
    "__leq",
    "__eq",
    "__lt",
)

#: Transitive prelude dependencies (used to close the emitted set).
_PRELUDE_DEPS = {
    "__not": ("__true", "__false"),
    "__and": ("__false",),
    "__or": ("__true",),
    "__iszero": ("__true", "__false"),
    "__leq": ("__true", "__false"),
    "__eq": ("__true", "__false"),
    "__lt": ("__true", "__false"),
}

_BINOP_COMBINATOR = {
    "+": "__add",
    "-": "__sub",
    "*": "__mul",
    "==": "__eq",
    "<=": "__leq",
    "<": "__lt",
    "and": "__and",
    "or": "__or",
}

#: The saturated-domain meaning of each integer operator, on clamped
#: operands.  Single source of truth for the lookup tables, the
#: constant-operand towers, and literal-literal folding.
_SAT_SEMANTICS = {
    "+": lambda k, j: min(k + j, DOMAIN_BOUND),
    "-": lambda k, j: max(k - j, 0),
    "*": lambda k, j: min(k * j, DOMAIN_BOUND),
    "==": lambda k, j: k == j,
    "<=": lambda k, j: k <= j,
    "<": lambda k, j: k < j,
}

_OP_TAG = {"+": "add", "-": "sub", "*": "mul", "==": "eq", "<=": "leq", "<": "lt"}


def _fix_combinator(arity: int, tag: str) -> Expr:
    """An n-ary call-by-value Z combinator, private to one recursion.

    ``Z_n = (lambda (f) (half half))`` with
    ``half = (lambda (g) (f (lambda (v1..vn) ((g g) v1..vn))))`` -- the
    eta-expansion delays the self-application under CBV.

    ``tag`` makes the binder names unique to the client: a *shared* Z
    combinator is a context-sensitivity merge hub (every recursive
    function in the program flows through the same ``(g g)`` site and
    their values cross-product), which turns linear loops into
    state-space explosions.  Tagged binders keep each client's copy
    structurally distinct, so hash-consing cannot re-share them.
    """
    if arity < 1:
        raise LoweringError("fixpoint combinators are n-ary with n >= 1")
    f, g = f"__zf_{tag}", f"__zg_{tag}"
    eta_params = tuple(f"__ze{i}_{tag}" for i in range(arity))
    eta = Lam(
        eta_params,
        App(App(Var(g), (Var(g),)), tuple(Var(p) for p in eta_params)),
    )
    half = Lam((g,), App(Var(f), (eta,)))
    return Lam((f,), App(half, (half,)))


# -- the pass ---------------------------------------------------------------


class _Scope:
    """Lexical scope: what is readable, and what this function may assign."""

    def __init__(self, readable: frozenset, assignable: frozenset):
        self.readable = readable
        self.assignable = assignable

    def declare(self, name: str) -> "_Scope":
        return _Scope(self.readable | {name}, self.assignable | {name})

    def enter_function(self, params: tuple[str, ...]) -> "_Scope":
        return _Scope(self.readable | set(params), frozenset(params))


def _assigned_in(block: tuple[Stmt, ...]) -> frozenset:
    """Variables assigned in a block that are declared *outside* it.

    Scope-aware: an assignment to a name ``let``-declared earlier in the
    same block (or a nested one) targets that inner binding and does not
    escape.  Function literals are opaque -- they may only assign their
    own locals, which the lowering enforces separately.
    """
    assigned: set = set()

    def walk(stmts: tuple[Stmt, ...], local: set) -> None:
        local = set(local)
        for stmt in stmts:
            if isinstance(stmt, SLet):
                local.add(stmt.name)
            elif isinstance(stmt, SAssign):
                if stmt.name not in local:
                    assigned.add(stmt.name)
            elif isinstance(stmt, SIf):
                walk(stmt.then, local)
                walk(stmt.els, local)
            elif isinstance(stmt, SWhile):
                walk(stmt.body, local)

    walk(block, set())
    return frozenset(assigned)


class _Lowerer:
    def __init__(self) -> None:
        self._counter = 0
        self._used: set = set()

    def _fresh(self, base: str) -> str:
        name = f"__{base}{self._counter}"
        self._counter += 1
        return name

    def _combinator(self, name: str) -> Var:
        self._used.add(name)
        for dep in _PRELUDE_DEPS.get(name, ()):
            self._combinator(dep)
        return Var(name)

    # -- expressions -------------------------------------------------------

    def lower_expr(self, expr: IExpr, scope: _Scope) -> Expr:
        if isinstance(expr, EInt):
            if expr.value < 0:
                raise LoweringError("integer literals are non-negative")
            return scott_numeral(expr.value)
        if isinstance(expr, EBool):
            return self._combinator("__true" if expr.value else "__false")
        if isinstance(expr, EVar):
            if expr.name not in scope.readable:
                raise LoweringError(f"unbound variable {expr.name!r}")
            return Var(expr.name)
        if isinstance(expr, EFn):
            if not expr.params:
                raise LoweringError("functions take at least one parameter")
            inner = scope.enter_function(expr.params)
            body = self.lower_block(expr.body, inner, lambda: self._combinator("__id"))
            return Lam(expr.params, body)
        if isinstance(expr, ECall):
            if not expr.args:
                raise LoweringError("calls pass at least one argument")
            return App(
                self.lower_expr(expr.fun, scope),
                tuple(self.lower_expr(arg, scope) for arg in expr.args),
            )
        if isinstance(expr, EUnary):
            if expr.op != "!":
                raise LoweringError(f"unknown unary operator {expr.op!r}")
            return App(self._combinator("__not"), (self.lower_expr(expr.operand, scope),))
        if isinstance(expr, EBinOp):
            combinator = _BINOP_COMBINATOR.get(expr.op)
            if combinator is None:
                raise LoweringError(f"unknown operator {expr.op!r}")
            if expr.op in _SAT_SEMANTICS:
                lhs_lit = isinstance(expr.lhs, EInt)
                rhs_lit = isinstance(expr.rhs, EInt)
                if lhs_lit and rhs_lit:
                    k = min(max(expr.lhs.value, 0), DOMAIN_BOUND)
                    j = min(max(expr.rhs.value, 0), DOMAIN_BOUND)
                    return self._const_value(_SAT_SEMANTICS[expr.op](k, j))
                if lhs_lit:
                    return self._lower_binop_const(
                        expr.op, self.lower_expr(expr.rhs, scope), expr.lhs.value, "l"
                    )
                if rhs_lit:
                    return self._lower_binop_const(
                        expr.op, self.lower_expr(expr.lhs, scope), expr.rhs.value, "r"
                    )
            return App(
                self._combinator(combinator),
                (self.lower_expr(expr.lhs, scope), self.lower_expr(expr.rhs, scope)),
            )
        raise LoweringError(f"not an imp expression: {expr!r}")

    def _const_value(self, value) -> Expr:
        """A saturated-domain constant as a term (int or bool)."""
        if isinstance(value, bool):
            return self._combinator("__true" if value else "__false")
        return scott_numeral(value)

    def _lower_binop_const(self, op: str, subject: Expr, lit: int, side: str) -> Expr:
        """Specialize ``e op c`` / ``c op e`` to an early-stopping tower.

        With one clamped literal operand the operator is a *unary*
        function of the other, constant from some depth on (saturation
        or comparison decidedness): ``i < 3`` needs at most three case
        peels, not a full two-operand table.  The savings compound
        inside loop bodies, where the tables would be re-explored on
        every abstract iteration.
        """
        sem = _SAT_SEMANTICS[op]
        c = min(max(lit, 0), DOMAIN_BOUND)
        apply = (lambda j: sem(c, j)) if side == "l" else (lambda j: sem(j, c))
        values = [apply(j) for j in range(DOMAIN_BOUND + 1)]
        depth = DOMAIN_BOUND
        while depth > 0 and values[depth - 1] == values[DOMAIN_BOUND]:
            depth -= 1
        if depth == 0:
            # constant outcome; still evaluate the operand for effect
            return Let(self._fresh("t"), subject, self._const_value(values[0]))
        tag = self._fresh(_OP_TAG[op]).lstrip("_")
        return _bounded_tower(
            subject,
            depth,
            lambda k: self._const_value(values[k]),
            self._const_value(values[DOMAIN_BOUND]),
            tag,
        )

    # -- statements --------------------------------------------------------

    def lower_block(self, stmts: tuple[Stmt, ...], scope: _Scope, rest) -> Expr:
        """Lower a statement sequence; ``rest()`` builds the continuation.

        ``rest`` sees the *names* of the block's entry scope -- joins and
        loop exits re-bind those names, so building it lazily at each
        call site picks up the right program point.
        """
        if not stmts:
            return rest()
        stmt, remaining = stmts[0], stmts[1:]
        if isinstance(stmt, SLet):
            inner = scope.declare(stmt.name)
            return Let(
                stmt.name,
                self.lower_expr(stmt.rhs, scope),
                self.lower_block(remaining, inner, rest),
            )
        if isinstance(stmt, SAssign):
            if stmt.name not in scope.assignable:
                if stmt.name in scope.readable:
                    raise LoweringError(
                        f"cannot assign captured variable {stmt.name!r} "
                        "from inside a function (closures capture by value)"
                    )
                raise LoweringError(f"assignment to undeclared variable {stmt.name!r}")
            return Let(
                stmt.name,
                self.lower_expr(stmt.rhs, scope),
                self.lower_block(remaining, scope, rest),
            )
        if isinstance(stmt, SReturn):
            return self.lower_expr(stmt.value, scope)
        if isinstance(stmt, SExpr):
            # evaluate for effect, discard: let a fresh name bind it
            return Let(
                self._fresh("t"),
                self.lower_expr(stmt.value, scope),
                self.lower_block(remaining, scope, rest),
            )
        if isinstance(stmt, SIf):
            return self._lower_if(stmt, remaining, scope, rest)
        if isinstance(stmt, SWhile):
            return self._lower_while(stmt, remaining, scope, rest)
        raise LoweringError(f"not an imp statement: {stmt!r}")

    def _branch_targets(self, block_vars: frozenset, scope: _Scope) -> tuple[str, ...]:
        """The variables a join must thread: assigned here, declared outside."""
        return tuple(sorted(block_vars & scope.assignable))

    def _lower_if(self, stmt: SIf, remaining, scope: _Scope, rest) -> Expr:
        mut = self._branch_targets(
            _assigned_in(stmt.then) | _assigned_in(stmt.els), scope
        )
        join_name = self._fresh("join")
        join_params = mut if mut else (self._fresh("d"),)
        join_args: tuple[Expr, ...] = (
            tuple(Var(v) for v in mut) if mut else (self._combinator("__id"),)
        )

        def to_join() -> Expr:
            return App(Var(join_name), join_args)

        join = Lam(join_params, self.lower_block(remaining, scope, rest))
        then_thunk = Lam(
            (self._fresh("d"),), self.lower_block(stmt.then, scope, to_join)
        )
        else_thunk = Lam(
            (self._fresh("d"),), self.lower_block(stmt.els, scope, to_join)
        )
        cond = self.lower_expr(stmt.cond, scope)
        return Let(
            join_name,
            join,
            App(App(cond, (then_thunk, else_thunk)), (self._combinator("__id"),)),
        )

    def _lower_while(self, stmt: SWhile, remaining, scope: _Scope, rest) -> Expr:
        mut = self._branch_targets(_assigned_in(stmt.body), scope)
        loop_params = mut if mut else (self._fresh("d"),)
        loop_args: tuple[Expr, ...] = (
            tuple(Var(v) for v in mut) if mut else (self._combinator("__id"),)
        )
        exit_name = self._fresh("k")
        loop_name = self._fresh("loop")
        self_name = self._fresh("self")

        def back_edge() -> Expr:
            return App(Var(self_name), loop_args)

        def to_exit() -> Expr:
            return App(Var(exit_name), loop_args)

        body_thunk = Lam(
            (self._fresh("d"),), self.lower_block(stmt.body, scope, back_edge)
        )
        exit_thunk = Lam((self._fresh("d"),), to_exit())
        # the condition re-evaluates every iteration, inside the loop lambda
        cond = self.lower_expr(stmt.cond, scope)
        iteration = Lam(
            (self_name,),
            Lam(
                loop_params,
                App(App(cond, (body_thunk, exit_thunk)), (self._combinator("__id"),)),
            ),
        )
        # each loop gets its own private Z combinator (see _fix_combinator)
        fix = _fix_combinator(len(loop_params), loop_name.lstrip("_"))
        return Let(
            exit_name,
            Lam(loop_params, self.lower_block(remaining, scope, rest)),
            Let(loop_name, App(fix, (iteration,)), App(Var(loop_name), loop_args)),
        )

    # -- entry point -------------------------------------------------------

    def lower_program(self, program: Program) -> Expr:
        scope = _Scope(frozenset(), frozenset())
        body = self.lower_block(program.body, scope, lambda: self._combinator("__id"))
        # close over the used prelude (later entries may reference earlier
        # ones, so wrap in reverse emission order)
        for name in reversed(_PRELUDE_ORDER):
            if name in self._used:
                body = Let(name, _prelude_term(name), body)
        return body


def lower_program(program: Program) -> Expr:
    """Lower a parsed ``imp`` program to a closed direct-style term.

    The result is ``uniquify``-renamed (distinct binders keep
    monovariant analyses from merging unrelated prelude sites) and
    :func:`repro.util.intern.rehydrate`-canonicalized, so it behaves
    exactly like a parsed term: pool-pointer-equal subterms,
    process-independent content digests for the fixpoint cache.
    """
    from repro.lam.syntax import uniquify
    from repro.util.intern import rehydrate

    return rehydrate(uniquify(_Lowerer().lower_program(program)))


def lower_source(source: str) -> Expr:
    """Parse and lower ``imp`` source text."""
    from repro.imp.parser import parse_program

    return lower_program(parse_program(source))
