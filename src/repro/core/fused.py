"""Fused transitions: the monad stack staged out of the hot loop.

The paper's transition functions are written once in monadic normal form
against ``StateT g (StateT s [])`` (5.3.1).  That is the right *source
of truth* -- the monad decides nondeterminism, time and the store -- but
a terrible execution strategy: every evaluation rebuilds a tower of
``StateT`` closures, pays a ``Monad.bind`` dispatch per bind, and runs
the list monad's concatenations for nondeterminism.  Partial evaluation
of an interpreter with respect to its monad is the classical staging
move (the first Futamura projection applied to the monad stack): because
the monad is *fixed* at analysis-assembly time, every bind can be
unfolded now, once, leaving a first-order step function.

This module is the framework half of that move, shared by the three
language backends (:mod:`repro.cps.fused`, :mod:`repro.cesk.fused`,
:mod:`repro.fj.fused`):

* :class:`FusedTransition` -- the staged calling convention.  Where a
  generic step maps ``pstate -> m pstate'`` and the collecting domain
  runs it with ``monad.run(mv, guts, store)``, a fused transition *is*
  the desugared shape already::

      step(pstate, guts, store) -> [((pstate', guts'), store')]

  i.e. exactly the value ``runStateT (runStateT (mnext ps) g) s``
  produces, computed by plain loops.  The wrapper class exists so the
  collecting domains and engines can recognize a staged step and skip
  the monadic runner (``repro/core/collecting.py`` dispatches on it).

* The shared store/time threading: :func:`thread_bindings` performs the
  ``sequence [a |-> d]`` suffix every apply/dispatch step ends with, and
  :func:`branch_product` is the list monad's cartesian product over the
  fetched argument sets, staged into ``itertools.product``.

* :func:`register_fused` / :func:`build_fused` -- the per-language
  builder registry (language backends register at import time; the
  analysis layers resolve through here).

Equivalence contract (what a backend must preserve, and what the
corpus-wide matrices in ``tests/test_fused.py`` / ``tests/test_config.py``
check):

1. same successor ``(pstate', guts')`` pairs and per-branch stores as
   ``monad.run(mnext(interface, ps), guts, store)``;
2. every store observation and mutation goes through the interface's
   ``store_like`` -- which may be a
   :class:`~repro.core.store.RecordingStore` -- so read/write logs (and
   hence depgraph retriggering and counting saturation) are identical;
3. evaluation order matches the strict left-to-right order of the
   monadic path (all argument fetches before any bind; branches in
   fetch-set iteration order), so a shared *mutable* store observes the
   same interleaving of reads and writes.

Abstract GC stays an engine/domain concern: the per-state domains sweep
each fused branch's result store exactly where they weave the collector
into a generic step, and the versioned engine's overlay+sweep path never
needed the step's cooperation in the first place.
"""

from __future__ import annotations

from importlib import import_module
from itertools import product
from typing import Any, Callable, Hashable, Iterable, Sequence


class FusedTransition:
    """A staged transition ``(pstate, guts, store) -> [((pstate', guts'), store')]``.

    Instances are just a callable plus a language tag; the class is the
    *marker* the collecting domains (:mod:`repro.core.collecting`) and
    the kleene evaluation counter (:func:`repro.core.driver.run_with_engine`)
    dispatch on to bypass ``monad.run``.
    """

    __slots__ = ("fn", "language")

    def __init__(self, fn: Callable[[Any, Any, Any], list], language: str = ""):
        self.fn = fn
        self.language = language

    def __call__(self, pstate: Any, guts: Any, store: Any) -> list:
        return self.fn(pstate, guts, store)

    def __repr__(self) -> str:
        return f"FusedTransition({self.language or self.fn!r})"


def thread_bindings(
    store_like: Any, store: Any, addrs: Sequence[Hashable], values: Sequence[Any]
) -> Any:
    """``sequence [a |-> {d}]``, staged: thread singleton binds left to right.

    Persistent stores thread the returned value; mutable stores mutate in
    place and return themselves -- either way the caller must use the
    return value, exactly as the monadic ``modify_store`` chain does.
    """
    for addr, value in zip(addrs, values):
        store = store_like.bind(store, addr, frozenset([value]))
    return store


def branch_product(value_sets: Sequence[Iterable[Any]]) -> Iterable[tuple]:
    """The list monad's work over ``mapM arg``, staged.

    ``mapM`` under ``StateT g (StateT s [])`` evaluates every argument's
    fetch first (atomic evaluation never writes) and then continues once
    per combination -- i.e. the cartesian product of the fetched sets, in
    left-to-right major order.  ``itertools.product`` is exactly that.
    """
    return product(*value_sets)


def make_closer(clo_type: Callable, free_vars: Callable) -> Callable:
    """A memoized closure constructor for the lambda-calculus backends.

    ``Clo(lam, env | free(lam))`` is a pure function of two immutable,
    hash-consed inputs, so memoizing it per ``(lam, env)`` is invisible
    to every observer -- and saves the environment restriction the
    generic path re-runs on every evaluation of an operand.  The cache
    lives in the returned closure, i.e. per staged transition.
    """
    cache: dict = {}

    def close(lam: Any, env: Any) -> Any:
        key = (lam, env)
        clo = cache.get(key)
        if clo is None:
            free = free_vars(lam)
            clo = clo_type(lam, env.restrict(lambda v: v in free))
            cache[key] = clo
        return clo

    return close


def make_pusher(
    pstate_type: Callable, kont_tag: Callable, valloc: Callable, bind: Callable
) -> Callable:
    """A continuation-push helper for the CESK-shaped backends.

    Pushing a frame is the same three staged operations in CESK and FJ
    (allocate a kont address under the language's ``KontTag``, bind the
    frame there, enter the sub-expression); only the state and tag types
    differ, so they are parameters.
    """

    def push(out: list, site: Any, frame: Any, enter: Any, env: Any,
             guts: Any, store: Any) -> None:
        ka2 = valloc(kont_tag(site), guts)
        store2 = bind(store, ka2, frozenset([frame]))
        out.append(((pstate_type(enter, env, ka2), guts), store2))

    return push


#: language name -> ``builder(interface) -> FusedTransition``.
_BUILDERS: dict[str, Callable[[Any], FusedTransition]] = {}

#: Which module registers each language's builder (lazy import targets).
_BACKENDS = {
    "cps": "repro.cps.fused",
    "lam": "repro.cesk.fused",
    "fj": "repro.fj.fused",
}


def register_fused(language: str, builder: Callable[[Any], FusedTransition]) -> None:
    """Register a language's fused-step builder (called at backend import)."""
    _BUILDERS[language] = builder


def build_fused(language: str, interface: Any) -> FusedTransition:
    """Stage the named language's transition for ``interface``.

    The builder specializes the step to the interface's ``Addressable``
    and ``StoreLike`` (and class table, for FJ) -- the components are
    fixed per analysis, so their methods are closed over once instead of
    re-dispatched per bind.
    """
    if language not in _BACKENDS:
        raise ValueError(
            f"no fused backend for language {language!r}; "
            f"choose one of {tuple(_BACKENDS)}"
        )
    if language not in _BUILDERS:
        import_module(_BACKENDS[language])
    return _BUILDERS[language](interface)
