"""The concrete FJ machine: Identity monad over a mutable heap."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.monads import Identity
from repro.fj.class_table import ClassTable
from repro.fj.machine import HALT_ADDRESS, HaltF, ObjV, PState, inject_fj
from repro.fj.semantics import FJInterface, FJStuck, is_final_fj, mnext_fj
from repro.fj.syntax import Expr, Program
from repro.util.pcollections import PMap


@dataclass(frozen=True)
class HeapAddr:
    index: int

    def __repr__(self) -> str:
        return f"#{self.index}"


class ConcreteFJInterface(FJInterface):
    """The FJ interface over the real heap (deterministic)."""

    def __init__(self, table: ClassTable):
        super().__init__(Identity(), table)
        self.heap: dict = {HALT_ADDRESS: HaltF()}
        self._next = 0

    def _fresh(self) -> HeapAddr:
        addr = HeapAddr(self._next)
        self._next += 1
        return addr

    def fetch_values(self, env: PMap, var: str) -> Any:
        if var not in env:
            raise FJStuck(f"unbound variable {var!r}")
        return self.heap[env[var]]

    def fetch_addr(self, addr: Hashable) -> Any:
        if addr not in self.heap:
            raise FJStuck(f"dangling address {addr!r}")
        return self.heap[addr]

    def fetch_konts(self, ka: Hashable) -> Any:
        if ka not in self.heap:
            raise FJStuck(f"dangling continuation address {ka!r}")
        return self.heap[ka]

    def bind_addr(self, addr: Hashable, value: Any) -> Any:
        self.heap[addr] = value
        return None

    def alloc(self, var: Any) -> HeapAddr:
        return self._fresh()

    def alloc_kont(self, site: Expr) -> HeapAddr:
        return self._fresh()

    def tick(self, receiver: ObjV, site_state: Any) -> Any:
        return None


class FJTimeout(Exception):
    """The concrete FJ machine exceeded its step budget."""


def evaluate_fj(program: Program, max_steps: int = 100_000) -> ObjV:
    """Run a program's main expression to its final object value."""
    table = ClassTable.of(program)
    interface = ConcreteFJInterface(table)
    state = inject_fj(program.main)
    for _ in range(max_steps):
        if is_final_fj(state):
            return state.ctrl
        state = mnext_fj(interface, state)
    raise FJTimeout(f"no final state within {max_steps} steps")


def evaluate_fj_trace(program: Program, max_steps: int = 100_000) -> list[PState]:
    """Run to completion, recording every machine state."""
    table = ClassTable.of(program)
    interface = ConcreteFJInterface(table)
    state = inject_fj(program.main)
    trace = [state]
    for _ in range(max_steps):
        if is_final_fj(state):
            return trace
        state = mnext_fj(interface, state)
        trace.append(state)
    raise FJTimeout(f"no final state within {max_steps} steps")


def evaluate_fj_with_heap(program: Program, max_steps: int = 100_000) -> tuple[ObjV, dict]:
    """Run to completion and also return the final heap (for field reads)."""
    table = ClassTable.of(program)
    interface = ConcreteFJInterface(table)
    state = inject_fj(program.main)
    for _ in range(max_steps):
        if is_final_fj(state):
            return state.ctrl, dict(interface.heap)
        state = mnext_fj(interface, state)
    raise FJTimeout(f"no final state within {max_steps} steps")
