"""Galois connections and the store-sharing alpha/gamma (paper 5.1, 6.5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.galois import (
    ConfigHoareLattice,
    GaloisConnection,
    store_sharing_alpha,
    store_sharing_connection,
    store_sharing_gamma,
)
from repro.core.lattice import PowersetLattice
from repro.core.store import BasicStore
from repro.util.pcollections import pmap

# configurations ((state, guts), store) over tiny carriers
states = st.sampled_from(["s1", "s2", "s3"])
gutses = st.sampled_from([0, 1])
stores = st.dictionaries(
    st.sampled_from(["a", "b"]), st.frozensets(st.integers(0, 2), max_size=2), max_size=2
).map(pmap)
configs = st.frozensets(st.tuples(st.tuples(states, gutses), stores), max_size=4)
widened = st.tuples(st.frozensets(st.tuples(states, gutses), max_size=4), stores)

STORE_LATTICE = BasicStore().lattice()


class TestStoreSharingAlphaGamma:
    def setup_method(self):
        self.alpha = store_sharing_alpha(STORE_LATTICE)
        self.gamma = store_sharing_gamma()

    def test_alpha_joins_stores(self):
        s1 = pmap({"a": frozenset([1])})
        s2 = pmap({"a": frozenset([2]), "b": frozenset([3])})
        fp = frozenset([(("s1", 0), s1), (("s2", 0), s2)])
        states_out, store = self.alpha(fp)
        assert states_out == frozenset([("s1", 0), ("s2", 0)])
        assert store["a"] == frozenset([1, 2])
        assert store["b"] == frozenset([3])

    def test_alpha_of_empty(self):
        states_out, store = self.alpha(frozenset())
        assert states_out == frozenset() and store == pmap()

    def test_gamma_spreads_store(self):
        store = pmap({"a": frozenset([1])})
        result = self.gamma((frozenset([("s1", 0), ("s2", 1)]), store))
        assert result == frozenset([(("s1", 0), store), (("s2", 1), store)])

    @given(configs)
    def test_alpha_gamma_extensive(self, fp):
        # c <= gamma(alpha(c)) in the Hoare order on configurations
        hoare = ConfigHoareLattice(STORE_LATTICE)
        assert hoare.leq(fp, self.gamma(self.alpha(fp)))

    @given(widened)
    def test_gamma_alpha_reductive(self, w):
        states_in, store = w
        back = self.alpha(self.gamma(w))
        abstract = store_sharing_connection(STORE_LATTICE).abstract
        assert abstract.leq(back, w)


class TestConnectionLaws:
    def test_store_sharing_satisfies_galois_laws_on_samples(self):
        conn = store_sharing_connection(STORE_LATTICE)
        s_small = pmap({"a": frozenset([1])})
        s_big = pmap({"a": frozenset([1, 2])})
        concrete_samples = [
            frozenset(),
            frozenset([(("s1", 0), s_small)]),
            frozenset([(("s1", 0), s_small), (("s2", 0), s_big)]),
        ]
        abstract_samples = [
            (frozenset(), pmap()),
            (frozenset([("s1", 0)]), s_small),
            (frozenset([("s1", 0), ("s2", 0)]), s_big),
        ]
        assert conn.check_laws(concrete_samples, abstract_samples)

    @given(configs, widened)
    def test_adjunction_pointwise(self, c, a):
        conn = store_sharing_connection(STORE_LATTICE)
        assert conn.is_adjoint_on(c, a)

    def test_check_laws_detects_broken_connection(self):
        ps = PowersetLattice()
        broken = GaloisConnection(
            concrete=ps,
            abstract=ps,
            alpha=lambda c: frozenset(),  # not extensive
            gamma=lambda a: frozenset(),
        )
        assert not broken.check_laws([frozenset([1])], [frozenset()])
