"""Benchmark program corpus for all three languages.

* :mod:`repro.corpus.cps_programs` -- handwritten CPS terms and scalable
  generator families (polyvariance chains, store-cloning blowups);
* :mod:`repro.corpus.lam_programs` -- direct-style lambda-calculus
  programs (Church arithmetic, the k-CFA-paradox example, ``blur``,
  ``eta``, ``sat``), shared by the CESK machine and -- via the CPS
  transform -- by the CPS analyses;
* :mod:`repro.corpus.fj_programs`  -- Featherweight Java programs;
* :mod:`repro.corpus.imp_programs` -- ``imp`` surface-language programs,
  registered *lowered*: they are ``lam`` terms by the time the service
  layer sees them, addressable as language ``imp`` or -- so batch jobs
  whose configs carry language ``lam`` can name them spawn-safely -- as
  ``lam`` programs under the ``imp:`` name prefix;
* :mod:`repro.corpus.generate`     -- the seeded, type-directed ``imp``
  program generator behind the differential fuzz harness.

:func:`corpus_program` is the language-keyed lookup the service layer's
batch jobs use to name corpus programs as plain (spawn-safe) strings.
"""

from typing import Any


def corpus_programs(language: str) -> dict:
    """The ``name -> program`` registry of one language's corpus.

    The single home of the language dispatch (the CLI's ``--corpus``
    sweep and :func:`corpus_program` both route through it).  Imports
    lazily so ``repro.corpus`` stays cheap to import for callers that
    only ever touch one language.
    """
    if language == "cps":
        from repro.corpus.cps_programs import PROGRAMS
    elif language == "lam":
        from repro.corpus.lam_programs import PROGRAMS
    elif language == "fj":
        from repro.corpus.fj_programs import PROGRAMS
    elif language == "imp":
        from repro.corpus.imp_programs import PROGRAMS
    else:
        raise ValueError(
            f"unknown corpus language {language!r}; choose cps, lam, fj or imp"
        )
    return PROGRAMS


def corpus_program(language: str, name: str) -> Any:
    """Fetch a corpus program by ``(language, name)``.

    ``imp`` programs register lowered, so they are also addressable as
    ``lam`` programs under the ``imp:`` prefix -- how batch jobs (whose
    configs carry the *analysis* language) name them spawn-safely.
    """
    if language == "lam" and name.startswith("imp:"):
        return corpus_program("imp", name[len("imp:"):])
    programs = corpus_programs(language)
    try:
        return programs[name]
    except KeyError:
        known = ", ".join(sorted(programs))
        raise ValueError(
            f"unknown {language} corpus program {name!r}; choose one of: {known}"
        ) from None
