"""E2 -- the store-passing collecting semantics (5.3).

Claim regenerated: with unique (concrete) addresses the collecting
semantics enumerates exactly the concrete control points -- no merging
-- and every abstraction's result covers it.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, precision_summary
from repro.cps.analysis import analyse_concrete_collecting, analyse_kcfa
from repro.cps.concrete import interpret_trace
from repro.corpus.cps_programs import PROGRAMS, id_chain

TERMINATING = ["identity", "id-id", "mj09", "self-apply"]


def test_e2_collecting_semantics_corpus(benchmark):
    def run():
        return {name: analyse_concrete_collecting(PROGRAMS[name]) for name in TERMINATING}

    results = run_once(benchmark, run)
    rows = []
    for name, result in results.items():
        concrete_ctrls = {s.ctrl for s in interpret_trace(PROGRAMS[name])}
        abstract_ctrls = {s.ctrl for s in result.states()}
        assert abstract_ctrls == concrete_ctrls  # exactness with unique addrs
        per_addr = result.flows_per_address()
        widest = max(len(lams) for lams in per_addr.values())
        rows.append((name, result.num_states(), widest))
    print()
    print(fmt_table(["program", "states", "max values per address (1 = exact)"], rows))
    # unique addresses: every address of a deterministic run holds one value
    assert all(row[2] == 1 for row in rows)


def test_e2_collecting_scaling(benchmark):
    programs = {n: id_chain(n) for n in (2, 4, 8)}

    def run():
        return {n: analyse_concrete_collecting(p).num_states() for n, p in programs.items()}

    states = run_once(benchmark, run)
    assert states[8] > states[4] > states[2]


def test_e2_abstraction_covers_collecting(benchmark):
    program = PROGRAMS["mj09"]

    def run():
        return analyse_concrete_collecting(program), analyse_kcfa(program, 0)

    exact, abstract = run_once(benchmark, run)
    for var, lams in exact.flows_to().items():
        assert lams <= abstract.flows_to().get(var, frozenset())
