"""The abstract CESK analysis family."""


from repro.core.lattice import AbsNat
from repro.cesk.analysis import (
    analyse_cesk_counting,
    analyse_cesk_gc,
    analyse_cesk_kcfa,
    analyse_cesk_shared,
    analyse_cesk_zerocfa,
)
from repro.cesk.concrete import ConcreteCESKInterface, evaluate
from repro.cesk.machine import inject
from repro.cesk.semantics import is_final, mnext_cesk
from repro.corpus.lam_programs import PROGRAMS, apply_tower, eta_chain

TERMINATING = ["id-simple", "mj09", "eta", "church-two-two"]
# programs safe for per-state (heap-cloning) stores; church-two-two
# clones exponentially there (measured in experiment E4)
PER_STATE_SAFE = ["id-simple", "mj09", "eta"]


class TestPolyvariance:
    def test_mj09_zerocfa_merges(self):
        r = analyse_cesk_zerocfa(PROGRAMS["mj09"])
        assert len(r.flows_to()["b"]) == 2
        assert len(r.final_values()) == 2

    def test_mj09_onecfa_separates(self):
        r = analyse_cesk_kcfa(PROGRAMS["mj09"], 1)
        assert len(r.flows_to()["b"]) == 1
        assert len(r.final_values()) == 1

    def test_final_value_covers_concrete(self):
        # the shared store keeps church-two-two tractable: per-state stores
        # clone exponentially on it (the 6.5 pathology, measured in E4)
        for name in TERMINATING:
            concrete = evaluate(PROGRAMS[name]).lam
            for k in (0, 1):
                abstract = analyse_cesk_shared(PROGRAMS[name], k).final_values()
                assert concrete in abstract

    def test_precision_monotone_in_k(self):
        for name in TERMINATING:
            f1 = analyse_cesk_shared(PROGRAMS[name], 1).flows_to()
            f0 = analyse_cesk_shared(PROGRAMS[name], 0).flows_to()
            for var, lams in f1.items():
                assert lams <= f0.get(var, lams)

    def test_eta_chain_compounds_monovariant_loss(self):
        # deeper eta chains merge more at the shared identity parameter
        shallow = analyse_cesk_zerocfa(eta_chain(1)).flows_to()
        deep = analyse_cesk_zerocfa(eta_chain(3)).flows_to()
        assert len(deep.get("x", ())) >= len(shallow.get("x", ()))


class TestTermination:
    def test_omega_terminates(self):
        r = analyse_cesk_zerocfa(PROGRAMS["omega"])
        assert r.num_states() > 2
        assert not r.final_states()

    def test_z_loop_terminates(self):
        r = analyse_cesk_kcfa(PROGRAMS["z-loop"], 1)
        assert r.num_states() > 2


class TestSharedStore:
    def test_shared_covers_per_state(self):
        for name in PER_STATE_SAFE + ["omega"]:
            per_state = analyse_cesk_kcfa(PROGRAMS[name], 1)
            shared = analyse_cesk_shared(PROGRAMS[name], 1)
            for var, lams in per_state.flows_to().items():
                assert lams <= shared.flows_to().get(var, frozenset())

    def test_shared_fixed_point_is_smaller_or_equal(self):
        program = eta_chain(3)
        per_state = analyse_cesk_kcfa(program, 1)
        shared = analyse_cesk_shared(program, 1)
        assert shared.num_elements() <= per_state.num_elements()


class TestGC:
    def test_gc_store_never_larger(self):
        for name in PER_STATE_SAFE:
            plain = analyse_cesk_kcfa(PROGRAMS[name], 1)
            gc = analyse_cesk_gc(PROGRAMS[name], 1)
            assert gc.store_size() <= plain.store_size()

    def test_gc_preserves_final_values(self):
        for name in PER_STATE_SAFE:
            plain = analyse_cesk_kcfa(PROGRAMS[name], 1)
            gc = analyse_cesk_gc(PROGRAMS[name], 1)
            assert evaluate(PROGRAMS[name]).lam in gc.final_values()
            assert gc.final_values() <= plain.final_values()

    def test_gc_can_reduce_state_count(self):
        # GC prunes dead store structure, collapsing otherwise-distinct configs
        program = eta_chain(3)
        plain = analyse_cesk_kcfa(program, 1)
        gc = analyse_cesk_gc(program, 1)
        assert gc.num_elements() <= plain.num_elements()


class TestCounting:
    def test_straightline_counts_stay_one(self):
        r = analyse_cesk_counting(PROGRAMS["id-simple"], 1)
        store = r.global_store()
        counting = r.store_like
        from repro.core.addresses import Binding

        var_counts = {
            a: counting.count(store, a)
            for a in counting.addresses(store)
            if isinstance(a, Binding) and isinstance(a.var, str)
        }
        assert var_counts
        assert all(c is AbsNat.ONE for c in var_counts.values())

    def test_loop_counts_reach_many(self):
        r = analyse_cesk_counting(PROGRAMS["omega"], 0)
        store = r.global_store()
        counting = r.store_like
        counts = [counting.count(store, a) for a in counting.addresses(store)]
        assert AbsNat.MANY in counts

    def test_counting_preserves_flows(self):
        plain = analyse_cesk_kcfa(PROGRAMS["mj09"], 1).flows_to()
        counted = analyse_cesk_counting(PROGRAMS["mj09"], 1).flows_to()
        assert plain == counted


class TestSoundnessSmoke:
    def test_concrete_trace_controls_covered(self):
        for name in PER_STATE_SAFE:
            program = PROGRAMS[name]
            iface = ConcreteCESKInterface()
            state = inject(program)
            concrete_exprs = set()
            for _ in range(10_000):
                if is_final(state):
                    break
                if state.is_eval():
                    concrete_exprs.add(state.ctrl)
                state = mnext_cesk(iface, state)
            abstract_exprs = {
                s.ctrl for s in analyse_cesk_kcfa(program, 1).states() if s.is_eval()
            }
            assert concrete_exprs <= abstract_exprs

    def test_scaling_family_analyzable(self):
        r = analyse_cesk_zerocfa(apply_tower(6))
        assert r.final_values()
