"""E8 supplement -- Featherweight Java analysis costs and cast safety.

Rows for the FJ side of the framework: dispatch-chain scaling, dynamic
dispatch precision (animals), and the cast-safety client built on the
class-flow results.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, timed
from repro.fj.analysis import analyse_fj_kcfa, analyse_fj_shared, analyse_fj_zerocfa
from repro.fj.class_table import ClassTable
from repro.fj.concrete import evaluate_fj
from repro.corpus.fj_programs import PROGRAMS, dispatch_chain

NAMES = ["pair", "id-twice", "animals", "visitor", "safe-cast"]


def test_fj_corpus_sweep(benchmark):
    def run():
        return {name: analyse_fj_kcfa(PROGRAMS[name], 1) for name in NAMES}

    results = run_once(benchmark, run)
    rows = []
    for name, result in results.items():
        concrete = evaluate_fj(PROGRAMS[name]).cls
        finals = sorted(result.final_classes())
        assert concrete in finals
        rows.append((name, result.num_states(), result.store_size(), ",".join(finals)))
    print()
    print(fmt_table(["program", "states", "store", "final classes (1CFA)"], rows))


def test_fj_dispatch_precision(benchmark):
    program = PROGRAMS["animals"]

    def run():
        return analyse_fj_zerocfa(program), analyse_fj_kcfa(program, 1)

    r0, r1 = run_once(benchmark, run)
    print()
    print(
        fmt_table(
            ["policy", "final classes"],
            [
                ("0CFA", ",".join(sorted(r0.final_classes()))),
                ("1CFA", ",".join(sorted(r1.final_classes()))),
            ],
        )
    )
    assert r0.final_classes() == frozenset(["Bark", "Meow"])
    assert r1.final_classes() == frozenset(["Bark"])


def test_fj_chain_scaling(benchmark):
    def run():
        out = {}
        for n in (2, 4, 6):
            program = dispatch_chain(n)
            result, seconds = timed(lambda p=program: analyse_fj_shared(p, 1))
            out[n] = (result.num_states(), seconds)
        return out

    table = run_once(benchmark, run)
    rows = [(n, states, f"{secs:.3f}s") for n, (states, secs) in sorted(table.items())]
    print()
    print(fmt_table(["chain n", "states", "time"], rows))
    assert table[6][0] > table[2][0]


def test_fj_cast_safety_client(benchmark):
    def run():
        safe_table = ClassTable.of(PROGRAMS["safe-cast"])
        safe = analyse_fj_kcfa(PROGRAMS["safe-cast"], 1).possible_cast_failures(safe_table)
        bad_table = ClassTable.of(PROGRAMS["bad-cast"])
        bad = analyse_fj_kcfa(PROGRAMS["bad-cast"], 1).possible_cast_failures(bad_table)
        return safe, bad

    safe, bad = run_once(benchmark, run)
    assert not safe  # proved safe
    assert ("A", "B") in bad  # possible failure found
