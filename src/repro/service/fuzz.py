"""``run_fuzz``: differential soundness testing over generated programs.

The executable soundness statement of the whole pipeline (the property
``tests/test_random_soundness.py`` samples with hypothesis) is::

    concrete.lam in analysis(lowered).final_values()

-- the abstract interpretation's final values must *cover* the concrete
CESK machine's answer for the same term.  The fuzz harness scales that
statement from dozens of hypothesis samples to a seeded corpus of
hundreds of surface-language programs (:mod:`repro.corpus.generate`)
across a matrix of analysis presets, and is what the nightly CI lane
runs (``.github/workflows/nightly.yml``).

For every generated program the harness lowers once, runs the concrete
machine once (a divergence budget turns runaways into *skips*, never
failures -- generated loops terminate by construction, so the budget is
slack), then checks coverage under every preset.  Each abstract run has
a deterministic evaluation budget (:data:`ANALYSIS_EVAL_BUDGET`);
exceeding it -- or the interpreter recursion limit -- *aborts* that
preset for that program, counted in the report and never a pass (see
PERFORMANCE.md, "The imp frontend at corpus scale").  A violation is
shrunk (:func:`repro.imp.shrink.shrink`) to a 1-minimal program that
still violates the *same* preset, and both the original and the shrunk
reproducer land in the report.

The report is **deterministic by design**: same seed, same count, same
presets -- byte-identical JSON (:func:`repro.analysis.report.render_json`
with no timestamps or timings), so CI can diff two runs and the corpus
digest pins the generator stream.  Presets whose abstract domains
diverge on the lowered encodings (monovariant 0CFA on chained lookup
tables -- see PERFORMANCE.md) are excluded from :data:`FUZZ_PRESETS`
rather than special-cased per program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.report import render_json
from repro.cesk.concrete import CESKTimeout, evaluate
from repro.config import assemble, preset_config
from repro.core.fixpoint import FixpointDiverged
from repro.corpus.generate import GenConfig, corpus_digest, generate_corpus
from repro.imp.lower import lower_program
from repro.imp.shrink import shrink
from repro.imp.syntax import Program, pp

#: The default preset matrix: every context-sensitive engine family
#: (interpreted, fused, deeper contexts, counting).  Monovariant 0cfa is
#: deliberately absent: it diverges on chained arithmetic tables (every
#: table call site shares one set of binder addresses, so compositions
#: feed joined results back through the same tower).
FUZZ_PRESETS = ("1cfa", "1cfa-fused", "2cfa", "kcfa-counting-fast")


@dataclass
class FuzzOutcome:
    """One program's differential result across the preset matrix."""

    index: int
    source: str
    skipped: bool = False
    violations: list = field(default_factory=list)  # [(preset, shrunk source)]


#: Per-preset evaluation budget.  Generated programs need at most a few
#: thousand configuration evaluations (measured ceiling ~2.3k at k=2);
#: the rare pathological shapes -- chained var-var products compounding
#: through call results -- run one or two orders of magnitude past that
#: before converging (or never do).  The budget is an *evaluation count*,
#: not wall clock, so abort decisions are machine-independent and the
#: report stays byte-identical for a seed.
ANALYSIS_EVAL_BUDGET = 10_000


def _covers(lowered, concrete_lam, preset: str, max_evals: int) -> bool:
    config = preset_config(preset, language="lam")
    analysis = assemble(config)
    result = analysis.run(lowered, worklist=not config.shared, max_steps=max_evals)
    return concrete_lam in result.final_values()


def check_program(
    program: Program,
    presets: Sequence[str] = FUZZ_PRESETS,
    max_steps: int = 200_000,
    max_evals: int = ANALYSIS_EVAL_BUDGET,
) -> dict:
    """The soundness check for one program: ``preset -> covered?``.

    Returns ``{}`` when the concrete run exhausts ``max_steps`` (the
    program is skipped -- soundness of a divergent run is vacuous here).
    A preset maps to ``None`` when its exploration exceeds ``max_evals``
    configuration evaluations or blows the interpreter recursion limit
    (deeply chained var-var arithmetic can do either at k=2): the preset
    made no claim for this program, which the report counts as an
    *abort*, never a pass.
    """
    lowered = lower_program(program)
    try:
        concrete = evaluate(lowered, max_steps=max_steps)
    except CESKTimeout:
        return {}
    verdict = {}
    for preset in presets:
        try:
            verdict[preset] = _covers(lowered, concrete.lam, preset, max_evals)
        except (FixpointDiverged, RecursionError):
            verdict[preset] = None
    return verdict


def _still_violates(preset: str, max_steps: int):
    """The shrink predicate: the candidate still breaks ``preset``."""

    def predicate(candidate: Program) -> bool:
        verdict = check_program(candidate, presets=(preset,), max_steps=max_steps)
        return verdict.get(preset) is False

    return predicate


def run_fuzz(
    seed: int,
    count: int,
    presets: Sequence[str] = FUZZ_PRESETS,
    max_steps: int = 200_000,
    gen_config: GenConfig | None = None,
    shrink_checks: int = 400,
    max_evals: int = ANALYSIS_EVAL_BUDGET,
) -> dict:
    """Fuzz ``count`` seeded programs against ``presets``; return the report.

    The report document is deterministic JSON material: generator
    digest, per-preset check counts, and -- for violations -- the
    original and shrunk reproducer sources.  No wall-clock data.
    """
    programs = generate_corpus(seed, count, gen_config)
    outcomes: list[FuzzOutcome] = []
    checked = {preset: 0 for preset in presets}
    aborted = {preset: 0 for preset in presets}
    for index, program in enumerate(programs):
        outcome = FuzzOutcome(index=index, source=pp(program))
        verdict = check_program(
            program, presets=presets, max_steps=max_steps, max_evals=max_evals
        )
        if not verdict:
            outcome.skipped = True
        for preset, covered in verdict.items():
            if covered is None:
                aborted[preset] += 1
                continue
            checked[preset] += 1
            if not covered:
                reduced = shrink(
                    program,
                    _still_violates(preset, max_steps),
                    max_checks=shrink_checks,
                )
                outcome.violations.append((preset, pp(reduced)))
        outcomes.append(outcome)

    violations = [
        {
            "index": outcome.index,
            "preset": preset,
            "program": outcome.source,
            "shrunk": shrunk,
        }
        for outcome in outcomes
        for preset, shrunk in outcome.violations
    ]
    return {
        "schema": "fuzz-report/1",
        "seed": seed,
        "count": count,
        "presets": list(presets),
        "corpus_digest": corpus_digest(programs),
        "max_steps": max_steps,
        "max_evals": max_evals,
        "skipped": sum(1 for outcome in outcomes if outcome.skipped),
        "checked": checked,
        "aborted": aborted,
        "violations": violations,
    }


def render_fuzz_report(report: dict) -> str:
    """The report as deterministic JSON (sorted keys, trailing newline)."""
    return render_json(report)
