"""The abstract CESK analysis family -- same monads, same components as CPS.

This module is deliberately a near-clone of :mod:`repro.cps.analysis`:
the *only* genuinely new code is the interface implementation's case
analysis and the touchability relation.  Polyvariance
(:class:`~repro.core.addresses.Addressable`), stores
(:class:`~repro.core.store.StoreLike`), counting, garbage collection and
both fixed-point domains are imported from :mod:`repro.core` verbatim --
the paper's reuse claim, which experiment E8 checks by identity of the
component objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.config import AnalysisConfig, assemble, build_config
from repro.core.addresses import Addressable, Binding, KCFA, ZeroCFA
from repro.core.collecting import PerStateStoreCollecting, SharedStoreCollecting
from repro.core.driver import (
    run_analysis,
    run_analysis_worklist,
    run_engine_analysis,
)
from repro.core.gc import MonadicStoreCollector
from repro.core.monads import StorePassing
from repro.core.store import CountingStore, StoreLike, unwrap_store
from repro.cesk.machine import (
    ArgF,
    Clo,
    FunF,
    HALT_ADDRESS,
    HaltF,
    KontTag,
    LetF,
    PState,
    free_vars_cache,
    inject,
)
from repro.cesk.semantics import CESKInterface, is_final, mnext_cesk
from repro.lam.syntax import Expr
from repro.util.pcollections import PMap


class AbstractCESKInterface(CESKInterface):
    """The CESK interface over ``StorePassing``, ``Addressable`` and ``StoreLike``."""

    def __init__(self, addressing: Addressable, store_like: StoreLike):
        super().__init__(StorePassing())
        self.addressing = addressing
        self.store_like = store_like
        # the halt continuation is pre-bound at the distinguished address
        self._initial_store = store_like.bind(
            store_like.empty(), HALT_ADDRESS, frozenset([HaltF()])
        )

    def initial_store(self) -> Any:
        return self._initial_store

    def fetch_values(self, env: PMap, var: str) -> Any:
        if var not in env:
            return self.monad.mzero()
        addr = env[var]
        return self.monad.gets_nd_store(lambda store: self.store_like.fetch(store, addr))

    def fetch_konts(self, ka: Hashable) -> Any:
        return self.monad.gets_nd_store(lambda store: self.store_like.fetch(store, ka))

    def bind_addr(self, addr: Hashable, value: Any) -> Any:
        return self.monad.modify_store(
            lambda store: self.store_like.bind(store, addr, frozenset([value]))
        )

    def alloc(self, var: str) -> Any:
        return self.monad.gets_guts(lambda ctx: self.addressing.valloc(var, ctx))

    def alloc_kont(self, site: Expr) -> Any:
        return self.monad.gets_guts(
            lambda ctx: self.addressing.valloc(KontTag(site), ctx)
        )

    def tick(self, proc: Clo, site_state: Any) -> Any:
        return self.monad.modify_guts(
            lambda ctx: self.addressing.advance(proc, site_state, ctx)
        )


class CESKTouching:
    """Touchability for the CESK machine (paper 6.4, extended to frames).

    A state touches the addresses of the free variables of its control
    (or of the returned value's lambda) *and* its continuation address;
    closures touch their environments' addresses; frames touch their
    saved environments (restricted to what their pending expressions
    need), the values they hold, and their parent continuation address.
    """

    def touched_by_state(self, pstate: PState) -> frozenset:
        roots: set = {pstate.ka}
        if isinstance(pstate.ctrl, Expr):
            env = pstate.env
            roots |= {env[v] for v in free_vars_cache(pstate.ctrl) if v in env}
        elif isinstance(pstate.ctrl, Clo):
            roots |= set(pstate.ctrl.env.values())
        return frozenset(roots)

    def touched_by_value(self, value: Any) -> frozenset:
        if isinstance(value, Clo):
            return frozenset(value.env.values())
        if isinstance(value, HaltF):
            return frozenset()
        if isinstance(value, LetF):
            env = value.env
            live = free_vars_cache(value.body) - frozenset([value.var])
            return frozenset(env[v] for v in live if v in env) | {value.parent}
        if isinstance(value, FunF):
            env = value.env
            live: set = set()
            for arg in value.args:
                live |= free_vars_cache(arg)
            return frozenset(env[v] for v in live if v in env) | {value.parent}
        if isinstance(value, ArgF):
            env = value.env
            live = set()
            for arg in value.remaining:
                live |= free_vars_cache(arg)
            touched = {env[v] for v in live if v in env} | {value.parent}
            touched |= set(value.fun_val.env.values())
            for done_value in value.done:
                touched |= set(done_value.env.values())
            return frozenset(touched)
        return frozenset()


@dataclass
class CESKAnalysis:
    """An assembled CESK analysis (interface + collecting domain)."""

    interface: AbstractCESKInterface
    collecting: Any
    shared: bool
    label: str = ""
    engine: str | None = None
    transition: str = "generic"
    parallelism: str = "none"
    shards: int = 1
    schedule: str = "fifo"
    last_stats: dict = field(default_factory=dict)

    def step(self) -> Callable[[PState], Any]:
        if self.transition == "fused":
            from repro.cesk.fused import build_cesk_fused

            return build_cesk_fused(self.interface)
        return lambda pstate: mnext_cesk(self.interface, pstate)

    def run(
        self,
        expr: Expr,
        worklist: bool = True,
        max_steps: int = 1_000_000,
        warm_start: Any = None,
        capture: Any = None,
        trace: list | None = None,
    ):
        initial = inject(expr)
        if self.engine is not None:
            fp = run_engine_analysis(
                self,
                initial,
                max_steps=max_steps,
                warm_start=warm_start,
                capture=capture,
                trace=trace,
            )
        elif warm_start is not None or capture is not None:
            raise ValueError("warm starts / capture need an engine-backed analysis")
        elif trace is not None:
            raise ValueError("schedule tracing needs an engine-backed analysis")
        elif worklist and not self.shared:
            fp = run_analysis_worklist(
                self.collecting, self.step(), initial, max_states=max_steps
            )
        else:
            fp = run_analysis(self.collecting, self.step(), initial, max_steps=max_steps)
        return self.wrap_result(fp)

    def wrap_result(self, fp: Any) -> "CESKAnalysisResult":
        """View a fixed point (freshly computed or cache-loaded) uniformly."""
        return CESKAnalysisResult(
            fp=fp,
            shared=self.shared,
            store_like=unwrap_store(self.interface.store_like),
            label=self.label,
        )


class _SeededPerState(PerStateStoreCollecting):
    """Per-state collecting whose injected store holds the halt frame."""

    def __init__(self, interface: AbstractCESKInterface, initial_guts, collector=None):
        super().__init__(interface.monad, interface.store_like, initial_guts, collector)
        self._seed_store = interface.initial_store()

    def inject(self, state: Any) -> frozenset:
        return frozenset([((state, self.initial_guts), self._seed_store)])


class _SeededShared(SharedStoreCollecting):
    """Shared-store collecting whose injected store holds the halt frame."""

    def __init__(self, interface: AbstractCESKInterface, initial_guts, collector=None):
        super().__init__(interface.monad, interface.store_like, initial_guts, collector)
        self._seed_store = interface.initial_store()

    def inject(self, state: Any) -> tuple:
        return (frozenset([(state, self.inner.initial_guts)]), self._seed_store)


@dataclass
class CESKAnalysisResult:
    """Uniform view of a CESK analysis fixed point (mirrors the CPS one)."""

    fp: Any
    shared: bool
    store_like: StoreLike
    label: str = ""

    def configs(self) -> frozenset:
        if self.shared:
            return self.fp[0]
        return frozenset(pair for pair, _store in self.fp)

    def states(self) -> frozenset:
        return frozenset(pstate for pstate, _guts in self.configs())

    def num_states(self) -> int:
        return len(self.states())

    def num_configs(self) -> int:
        return len(self.configs())

    def num_elements(self) -> int:
        if self.shared:
            return len(self.fp[0])
        return len(self.fp)

    def global_store(self):
        lattice = self.store_like.lattice()
        if self.shared:
            return self.fp[1]
        return lattice.join_all(store for _pair, store in self.fp)

    def store_size(self) -> int:
        return len(list(self.store_like.addresses(self.global_store())))

    def flows_to(self) -> dict:
        """``var -> frozenset[Lam]`` over *value* addresses (frames skipped)."""
        store = self.global_store()
        flows: dict = {}
        for addr in self.store_like.addresses(store):
            var = addr.var if isinstance(addr, Binding) else addr
            if isinstance(var, KontTag) or var == HALT_ADDRESS or not isinstance(var, str):
                continue
            lams = frozenset(
                v.lam for v in self.store_like.fetch(store, addr) if isinstance(v, Clo)
            )
            if lams:
                flows[var] = flows.get(var, frozenset()) | lams
        return flows

    def final_states(self) -> frozenset:
        return frozenset(s for s in self.states() if is_final(s))

    def final_values(self) -> frozenset:
        """The lambdas of all values returned to the halt continuation."""
        return frozenset(s.ctrl.lam for s in self.final_states())


def assemble_cesk(
    config: AnalysisConfig, addressing: Addressable, store: StoreLike
) -> CESKAnalysis:
    """Build a :class:`CESKAnalysis` from validated, prepared components.

    Called by :func:`repro.config.assemble`; mirrors
    :func:`repro.cps.analysis.assemble_cps` with the CESK interface and
    the halt-frame-seeded collecting domains.
    """
    interface = AbstractCESKInterface(addressing, store)
    collector = (
        MonadicStoreCollector(interface.monad, store, CESKTouching())
        if config.gc
        else None
    )
    if config.shared:
        collecting: Any = _SeededShared(interface, addressing.tau0(), collector)
    else:
        collecting = _SeededPerState(interface, addressing.tau0(), collector)
    return CESKAnalysis(
        interface=interface,
        collecting=collecting,
        shared=config.shared,
        label=config.label,
        engine=config.engine,
        transition=config.transition,
        parallelism=config.parallelism,
        shards=config.shards,
        schedule=config.schedule,
    )


def analyse_cesk(
    addressing: Addressable | None = None,
    store_like: StoreLike | None = None,
    shared: bool | None = None,
    gc: bool | None = None,
    label: str = "",
    engine: str | None = None,
    store_impl: str | None = None,
    transition: str | None = None,
    preset: str | None = None,
) -> CESKAnalysis:
    """Assemble a CESK analysis from the shared degrees of freedom.

    ``preset`` starts from :data:`repro.config.PRESETS` (e.g.
    ``analyse_cesk(preset="1cfa-gc")``); other keywords override it.
    All paths route through :func:`repro.config.assemble`.
    """
    config = build_config(
        "lam",
        preset=preset,
        addressing=addressing,
        store_like=store_like,
        shared=shared,
        gc=gc,
        engine=engine,
        store_impl=store_impl,
        transition=transition,
        label=label,
    )
    return assemble(config, addressing=addressing, store_like=store_like)


def analyse_cesk_kcfa(expr: Expr, k: int = 1, gc: bool = False) -> CESKAnalysisResult:
    """k-CFA for direct-style programs (per-state stores)."""
    return analyse_cesk(KCFA(k), gc=gc, label=f"cesk-{k}cfa").run(expr)


def analyse_cesk_zerocfa(expr: Expr) -> CESKAnalysisResult:
    """Monovariant analysis for direct-style programs."""
    return analyse_cesk(ZeroCFA(), label="cesk-0cfa").run(expr)


def analyse_cesk_shared(expr: Expr, k: int = 1, gc: bool = False) -> CESKAnalysisResult:
    """k-CFA with the single-threaded-store widening."""
    return analyse_cesk(KCFA(k), shared=True, gc=gc, label=f"cesk-{k}cfa-shared").run(expr)


def analyse_cesk_gc(expr: Expr, k: int = 1) -> CESKAnalysisResult:
    """k-CFA with abstract garbage collection."""
    return analyse_cesk(KCFA(k), gc=True, label=f"cesk-{k}cfa-gc").run(expr)


def analyse_cesk_counting(expr: Expr, k: int = 1, shared: bool = False) -> CESKAnalysisResult:
    """k-CFA with a counting store (abstract counting for CESK)."""
    return analyse_cesk(
        KCFA(k), store_like=CountingStore(), shared=shared, label=f"cesk-{k}cfa-count"
    ).run(expr, worklist=not shared)


def analyse_cesk_engine(
    expr: Expr,
    engine: str,
    k: int = 1,
    stats: dict | None = None,
    store_impl: str = "persistent",
    transition: str | None = None,
) -> CESKAnalysisResult:
    """Global-store k-CFA for direct-style programs under a named engine."""
    analysis = analyse_cesk(
        KCFA(k),
        engine=engine,
        label=f"cesk-{k}cfa-{engine}-{store_impl}",
        store_impl=store_impl,
        transition=transition,
    )
    result = analysis.run(expr)
    if stats is not None:
        stats.update(analysis.last_stats)
    return result
