"""The monadic small-step semantics of the CESK machine.

``CESKInterface`` plays the role Figure 2's ``CPSInterface`` plays for
CPS: a small monadic surface through which *all* store, time and
nondeterminism effects flow.  ``mnext_cesk`` is written once against it;
concrete interpretation and the whole abstract-analysis family come from
swapping the implementation -- with the *same* meta-level components
(``Addressable``, ``StoreLike``, collectors) as the CPS and
Featherweight Java machines, which is the reuse claim of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

from repro.core.monads import Monad, MonadPlus, map_m, sequence_
from repro.cesk.machine import (
    ArgF,
    Clo,
    Frame,
    FunF,
    HaltF,
    LetF,
    PState,
    SiteContext,
    free_vars_cache,
)
from repro.lam.syntax import App, Expr, Lam, Let, Var
from repro.util.pcollections import PMap


class CESKStuck(Exception):
    """A deterministic CESK run reached a stuck state."""


class CESKInterface(ABC):
    """The semantic interface of the CESK machine, over a monad instance."""

    def __init__(self, monad: Monad):
        self.monad = monad

    @abstractmethod
    def fetch_values(self, env: PMap, var: str) -> Any:
        """Look a variable up through the store (nondeterministic)."""

    @abstractmethod
    def fetch_konts(self, ka: Hashable) -> Any:
        """Look the frames up at a continuation address (nondeterministic)."""

    @abstractmethod
    def bind_addr(self, addr: Hashable, value: Any) -> Any:
        """Write one binding (value or frame) through the monad."""

    @abstractmethod
    def alloc(self, var: str) -> Any:
        """Allocate a value address for ``var``."""

    @abstractmethod
    def alloc_kont(self, site: Expr) -> Any:
        """Allocate a continuation address for the frame pushed at ``site``."""

    @abstractmethod
    def tick(self, proc: Clo, site_state: Any) -> Any:
        """Advance the monad's time on a function application."""

    def stuck(self, pstate: PState, reason: str) -> Any:
        if isinstance(self.monad, MonadPlus):
            return self.monad.mzero()
        raise CESKStuck(f"{reason} at {pstate!r}")


def close(lam: Lam, env: PMap) -> Clo:
    """Close a lambda over the free-variable restriction of ``env``."""
    return Clo(lam, env.restrict(lambda v: v in free_vars_cache(lam)))


def mnext_cesk(interface: CESKInterface, pstate: PState) -> Any:
    """One monadic CESK step (eval / continue dispatch)."""
    monad = interface.monad
    ctrl, env, ka = pstate.ctrl, pstate.env, pstate.ka

    # -- eval mode ----------------------------------------------------------
    if isinstance(ctrl, Var):
        return monad.bind(
            interface.fetch_values(env, ctrl.name),
            lambda v: monad.unit(PState(v, env, ka)),
        )
    if isinstance(ctrl, Lam):
        return monad.unit(PState(close(ctrl, env), env, ka))
    if isinstance(ctrl, Let):
        frame = LetF(ctrl.var, ctrl.body, env, ka)
        return monad.bind(
            interface.alloc_kont(ctrl),
            lambda ka2: monad.then(
                interface.bind_addr(ka2, frame),
                monad.unit(PState(ctrl.rhs, env, ka2)),
            ),
        )
    if isinstance(ctrl, App):
        frame = FunF(ctrl, ctrl.args, env, ka)
        return monad.bind(
            interface.alloc_kont(ctrl),
            lambda ka2: monad.then(
                interface.bind_addr(ka2, frame),
                monad.unit(PState(ctrl.fun, env, ka2)),
            ),
        )

    # -- return mode ----------------------------------------------------------
    if isinstance(ctrl, Clo):
        return monad.bind(
            interface.fetch_konts(ka),
            lambda frame: _continue(interface, pstate, ctrl, frame),
        )
    return interface.stuck(pstate, f"unrecognized control {ctrl!r}")


def _continue(interface: CESKInterface, pstate: PState, value: Clo, frame: Frame) -> Any:
    monad = interface.monad
    if isinstance(frame, HaltF):
        return monad.unit(pstate)  # final states self-loop
    if isinstance(frame, LetF):
        return monad.bind(
            interface.alloc(frame.var),
            lambda addr: monad.then(
                interface.bind_addr(addr, value),
                monad.unit(
                    PState(frame.body, frame.env.set(frame.var, addr), frame.parent)
                ),
            ),
        )
    if isinstance(frame, FunF):
        if not isinstance(value, Clo):
            return interface.stuck(pstate, f"operator is not a closure: {value!r}")
        if not frame.args:
            return _apply(interface, pstate, frame.site, value, (), frame.parent)
        next_frame = ArgF(
            frame.site, value, frame.args[1:], (), frame.env, frame.parent
        )
        return monad.bind(
            interface.alloc_kont(frame.args[0]),
            lambda ka2: monad.then(
                interface.bind_addr(ka2, next_frame),
                monad.unit(PState(frame.args[0], frame.env, ka2)),
            ),
        )
    if isinstance(frame, ArgF):
        done = frame.done + (value,)
        if not frame.remaining:
            return _apply(interface, pstate, frame.site, frame.fun_val, done, frame.parent)
        next_frame = ArgF(
            frame.site, frame.fun_val, frame.remaining[1:], done, frame.env, frame.parent
        )
        return monad.bind(
            interface.alloc_kont(frame.remaining[0]),
            lambda ka2: monad.then(
                interface.bind_addr(ka2, next_frame),
                monad.unit(PState(frame.remaining[0], frame.env, ka2)),
            ),
        )
    return interface.stuck(pstate, f"unrecognized frame {frame!r}")


def _apply(
    interface: CESKInterface,
    pstate: PState,
    site: App,
    proc: Clo,
    arg_values: tuple,
    parent_ka: Hashable,
) -> Any:
    monad = interface.monad
    params, body = proc.lam.params, proc.lam.body
    if len(params) != len(arg_values):
        return interface.stuck(
            pstate, f"arity mismatch: {len(params)} params, {len(arg_values)} args"
        )

    def with_time(_ignored: Any) -> Any:
        return monad.bind(
            map_m(monad, interface.alloc, params),
            lambda addrs: monad.then(
                sequence_(
                    monad,
                    [interface.bind_addr(a, v) for a, v in zip(addrs, arg_values)],
                ),
                monad.unit(
                    PState(body, proc.env.update(zip(params, addrs)), parent_ka)
                ),
            ),
        )

    return monad.bind(interface.tick(proc, SiteContext(site)), with_time)


def is_final(pstate: PState) -> bool:
    """A final state returns a value to the halt continuation."""
    from repro.cesk.machine import HALT_ADDRESS

    return pstate.is_return() and pstate.ka == HALT_ADDRESS
