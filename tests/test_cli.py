"""The command-line front end."""

import pytest

from repro.cli import build_parser, detect_language, main


@pytest.fixture
def cps_file(tmp_path):
    path = tmp_path / "prog.cps"
    path.write_text(
        "((lambda (x k) (k x)) (lambda (z j) (j z)) (lambda (r) (exit)))"
    )
    return str(path)


@pytest.fixture
def lam_file(tmp_path):
    path = tmp_path / "prog.lam"
    path.write_text(
        "(let* ((id (lambda (x) x)) (a (id (lambda (z) z)))"
        " (b (id (lambda (y) y)))) b)"
    )
    return str(path)


@pytest.fixture
def fj_file(tmp_path):
    path = tmp_path / "prog.fj"
    path.write_text(
        """
        class A extends Object { }
        class B extends Object { }
        class Holder extends Object {
          Object get(Object x) { return x; }
        }
        (A) new Holder().get(new B())
        """
    )
    return str(path)


class TestLanguageDetection:
    def test_from_extension(self):
        assert detect_language("x.cps", None) == "cps"
        assert detect_language("x.lam", None) == "lam"
        assert detect_language("x.fj", None) == "fj"

    def test_explicit_wins(self):
        assert detect_language("x.txt", "cps") == "cps"

    def test_unknown_extension_fails(self):
        with pytest.raises(SystemExit):
            detect_language("x.txt", None)


class TestRun:
    def test_run_cps(self, cps_file, capsys):
        assert main(["run", cps_file]) == 0
        assert "final state" in capsys.readouterr().out

    def test_run_lam(self, lam_file, capsys):
        assert main(["run", lam_file]) == 0
        assert "(lambda (y) y)" in capsys.readouterr().out

    def test_run_fj_reports_value(self, tmp_path, capsys):
        path = tmp_path / "ok.fj"
        path.write_text("class A extends Object { } new A()")
        assert main(["run", str(path)]) == 0
        assert "new A" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_cps_default(self, cps_file, capsys):
        assert main(["analyze", cps_file]) == 0
        out = capsys.readouterr().out
        assert "variable" in out and "states:" in out

    def test_analyze_cps_all_flags(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--k", "0", "--shared", "--counting"]) == 0
        assert "mean flow" in capsys.readouterr().out

    def test_analyze_cps_gc(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--gc"]) == 0
        assert "states:" in capsys.readouterr().out

    def test_analyze_lam(self, lam_file, capsys):
        assert main(["analyze", lam_file, "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "b" in out

    def test_analyze_fj_with_cast_check(self, fj_file, capsys):
        assert main(["analyze", fj_file, "--check-casts"]) == 0
        out = capsys.readouterr().out
        assert "casts that may fail" in out
        assert "(A) applied to a B" in out

    def test_analyze_fj_safe_casts(self, tmp_path, capsys):
        path = tmp_path / "safe.fj"
        path.write_text(
            """
            class A extends Object { }
            class Holder extends Object {
              Object get(Object x) { return x; }
            }
            (A) new Holder().get(new A())
            """
        )
        assert main(["analyze", str(path), "--check-casts"]) == 0
        assert "all casts proved safe" in capsys.readouterr().out


class TestEngineFlag:
    @pytest.mark.parametrize("engine", ["kleene", "worklist", "depgraph"])
    def test_engine_on_every_language(self, engine, cps_file, lam_file, fj_file, capsys):
        for path in (cps_file, lam_file, fj_file):
            assert main(["analyze", path, "--engine", engine]) == 0
            assert "states:" in capsys.readouterr().out

    def test_depgraph_reports_engine_stats(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--engine", "depgraph"]) == 0
        out = capsys.readouterr().out
        assert "engine: depgraph" in out and "evaluations:" in out

    def test_engines_print_identical_flow_tables(self, lam_file, capsys):
        tables = {}
        for engine in ("kleene", "worklist", "depgraph"):
            assert main(["analyze", lam_file, "--engine", engine]) == 0
            out = capsys.readouterr().out
            tables[engine] = out[: out.index("states:")]
        assert tables["kleene"] == tables["worklist"] == tables["depgraph"]

    def test_gc_with_global_store_engine_supported(self, cps_file, capsys):
        """GC composes with the worklist engines and agrees with kleene+gc."""
        tables = {}
        for engine in ("kleene", "depgraph"):
            assert main(["analyze", cps_file, "--engine", engine, "--gc"]) == 0
            out = capsys.readouterr().out
            tables[engine] = out[: out.index("states:")]
        assert tables["kleene"] == tables["depgraph"]

    def test_counting_with_global_store_engine_supported(self, cps_file, capsys):
        """Counting composes with the worklist engines, same flow table."""
        tables = {}
        for engine in ("kleene", "worklist"):
            assert main(["analyze", cps_file, "--engine", engine, "--counting"]) == 0
            out = capsys.readouterr().out
            tables[engine] = out[: out.index("states:")]
        assert tables["kleene"] == tables["worklist"]

    def test_counting_with_kleene_engine_allowed(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--engine", "kleene", "--counting"]) == 0
        assert "states:" in capsys.readouterr().out

    def test_unknown_engine_rejected_by_parser(self, cps_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", cps_file, "--engine", "magic"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze", "x.cps"])
        assert args.k is None  # "not passed": presets keep their own k
        assert args.engine is None
        assert args.preset is None and not args.list_presets
        assert not args.shared and not args.gc and not args.counting


class TestPresets:
    def test_list_presets(self, capsys):
        assert main(["analyze", "--list-presets"]) == 0
        out = capsys.readouterr().out
        for name in ("concrete", "0cfa", "1cfa-gc", "kcfa-counting-fast"):
            assert name in out

    def test_preset_runs_each_language(self, cps_file, lam_file, fj_file, capsys):
        for path in (cps_file, lam_file, fj_file):
            assert main(["analyze", path, "--preset", "1cfa-gc"]) == 0
            out = capsys.readouterr().out
            assert "preset: 1cfa-gc" in out
            assert "engine: depgraph (versioned)" in out

    def test_preset_agrees_with_fine_grained_flags(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--preset", "1cfa"]) == 0
        via_preset = capsys.readouterr().out
        assert (
            main(
                ["analyze", cps_file, "--k", "1", "--engine", "depgraph",
                 "--store-impl", "versioned"]
            )
            == 0
        )
        via_flags = capsys.readouterr().out
        cut = via_preset.index("states:")
        assert via_preset[:cut] == via_flags[: via_flags.index("states:")]

    def test_preset_field_override(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--preset", "1cfa", "--engine", "kleene",
                     "--store-impl", "persistent"]) == 0
        assert "engine: kleene (persistent)" in capsys.readouterr().out

    def test_unknown_preset_rejected(self, cps_file):
        with pytest.raises(SystemExit, match="unknown preset"):
            main(["analyze", cps_file, "--preset", "9cfa-quantum"])

    def test_invalid_preset_override_rejected(self, cps_file):
        # versioned store without a worklist engine: caught by validation
        with pytest.raises(SystemExit, match="kleene"):
            main(["analyze", cps_file, "--preset", "1cfa", "--engine", "kleene"])

    def test_program_required_without_list(self):
        with pytest.raises(SystemExit, match="program"):
            main(["analyze"])


class TestTransitionFlag:
    def test_fused_on_every_language(self, cps_file, lam_file, fj_file, capsys):
        for path in (cps_file, lam_file, fj_file):
            assert main(
                ["analyze", path, "--engine", "depgraph", "--transition", "fused"]
            ) == 0
            assert "states:" in capsys.readouterr().out

    def test_fused_prints_identical_flow_table(self, lam_file, capsys):
        tables = {}
        for transition in ("generic", "fused"):
            assert main(
                ["analyze", lam_file, "--engine", "depgraph",
                 "--transition", transition]
            ) == 0
            out = capsys.readouterr().out
            tables[transition] = out[: out.index("states:")]
        assert tables["generic"] == tables["fused"]

    def test_fused_reported_in_engine_stats_line(self, cps_file, capsys):
        assert main(
            ["analyze", cps_file, "--engine", "depgraph", "--transition", "fused"]
        ) == 0
        assert "fused" in capsys.readouterr().out

    def test_fused_preset_runs(self, cps_file, capsys):
        assert main(["analyze", cps_file, "--preset", "1cfa-fused"]) == 0
        assert "states:" in capsys.readouterr().out

    def test_transition_overrides_preset(self, cps_file, capsys):
        # a generic preset paired with --transition fused runs fused
        assert main(
            ["analyze", cps_file, "--preset", "1cfa", "--transition", "fused"]
        ) == 0
        assert "fused" in capsys.readouterr().out

    def test_unknown_transition_rejected_by_parser(self, cps_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", cps_file, "--transition", "jit"]
            )

    def test_transition_default_is_not_passed(self):
        args = build_parser().parse_args(["analyze", "x.cps"])
        assert args.transition is None


class TestBatchCommand:
    def test_batch_cold_then_cached(self, cps_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "fixcache")
        report_path = tmp_path / "report.json"
        argv = [
            "batch", cps_file,
            "--preset", "1cfa", "--preset", "0cfa",
            "--cache-dir", cache_dir,
            "--report", str(report_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "hit" not in cold.replace("hits", "")
        assert report_path.exists()

        assert main(argv) == 0
        cached = capsys.readouterr().out
        assert "hit" in cached

        import json

        document = json.loads(report_path.read_text())
        assert document["schema"] == "batch-report/1"
        assert len(document["jobs"]) == 2
        assert all(row["cache"] == "hit" for row in document["jobs"])
        assert document["cache"]["hits"] == 2

    def test_batch_corpus_sweep(self, tmp_path, capsys):
        assert main(["batch", "--corpus", "cps", "--preset", "0cfa"]) == 0
        out = capsys.readouterr().out
        assert "cps:mj09/0cfa" in out

    def test_batch_no_cache(self, cps_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "fixcache")
        argv = ["batch", cps_file, "--cache-dir", cache_dir, "--no-cache"]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hit" not in out.replace("hits", "")

    def test_batch_requires_programs(self):
        with pytest.raises(SystemExit, match="batch needs"):
            main(["batch"])


@pytest.fixture
def imp_file(tmp_path):
    path = tmp_path / "prog.imp"
    path.write_text(
        "let i = 0;\nwhile (i < 3) { i = i + 1; }\nreturn i;\n"
    )
    return str(path)


class TestImpFrontend:
    def test_detects_imp_extension(self):
        assert detect_language("x.imp", None) == "imp"

    def test_run_imp(self, imp_file, capsys):
        assert main(["run", imp_file]) == 0
        # the loop counts to 3: a Scott numeral with three successor layers
        assert capsys.readouterr().out.startswith("value: (lambda")

    def test_analyze_imp(self, imp_file, capsys):
        assert main(["analyze", imp_file, "--preset", "1cfa"]) == 0
        out = capsys.readouterr().out
        assert "states" in out

    def test_batch_mixes_imp_files_and_corpus(self, imp_file, tmp_path, capsys):
        argv = [
            "batch", imp_file,
            "--corpus", "imp",
            "--preset", "1cfa-fused",
            "--cache-dir", str(tmp_path / "fixcache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "imp:arith/1cfa-fused" in out


class TestFuzzCommand:
    def test_fuzz_smoke_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz.json"
        argv = [
            "fuzz", "--seed", "42", "--count", "3",
            "--preset", "1cfa-fused",
            "--report", str(report_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "no soundness violations" in out
        first = report_path.read_text()

        assert main(argv) == 0
        assert report_path.read_text() == first  # byte-identical rerun

        import json

        document = json.loads(first)
        assert document["schema"] == "fuzz-report/1"
        assert document["seed"] == 42
        assert document["violations"] == []
