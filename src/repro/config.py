"""``repro.config``: declarative analysis assembly (the paper's thesis, reified).

The paper's point is that an abstract interpreter is *assembled* from
interchangeable pieces -- a monad stack, an address allocator, a store,
optional GC/counting refinements, and a fixed-point strategy.  Until
this module, each assembly lived in imperative keyword soup spread over
three ``analyse*`` families, and the compatibility rules between the
pieces were scattered checks.  Here the whole design space is one
declarative record:

* :class:`AnalysisConfig` -- a frozen dataclass naming every degree of
  freedom (language, addressing/k, widening, engine, store
  implementation, GC, counting, transition staging), with
  :meth:`AnalysisConfig.validated`
  as the single home of the compatibility rules (it subsumes the old
  ``check_global_store_compat`` and ``check_store_impl_scope``);
* :data:`PRESETS` -- a registry of named, validated configurations
  (``concrete``, ``0cfa``, ``1cfa-gc``, ``kcfa-counting-fast``, ...),
  the CLI's ``--preset``/``--list-presets`` vocabulary;
* :func:`assemble` -- the single entry point turning a config (plus a
  program, for Featherweight Java's class table) into a runnable
  analysis object.  All three ``analyse*`` families, the CLI and the
  benchmark harness route through it.

The style follows CPAchecker's composite-CPA configuration files: small
declarative modules naming a stack of components, validated before
anything is built.

Compatibility rules enforced by :meth:`AnalysisConfig.validated`:

==========================  =============================================
rule                        reason
==========================  =============================================
``versioned`` needs a       the store *implementation* only exists inside
worklist engine             the global-store engines' loop
``kleene`` rejects          kleene re-applies the functional to immutable
``versioned``               whole-domain snapshots; a mutable store has
                            identity, not history
``concrete`` addressing     the reference semantics is per-state by
rejects engines/widening    definition (6.1): widening it would change
                            what every abstraction is compared against
==========================  =============================================

Abstract GC and counting compose with *every* engine since the engines
learned to sweep reachability and saturate counts (see
``repro/core/fixpoint.py``); the old kleene-only restriction is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace as _dc_replace
from typing import Any, Mapping

from repro.core.addresses import (
    Addressable,
    BoundedNat,
    ConcreteAddressing,
    KCFA,
    LContext,
    ZeroCFA,
)
from repro.core.driver import prepare_engine_store
from repro.core.fixpoint import ENGINES, STORE_IMPLS
from repro.core.schedule import SCHEDULES
from repro.core.store import ACounter, BasicStore, CountingStore, StoreLike

#: The languages an :class:`AnalysisConfig` can target.
LANGUAGES = ("cps", "lam", "fj")

#: Named address-allocation policies (:mod:`repro.core.addresses`).
#: ``custom`` stands for a caller-supplied :class:`Addressable` object.
ADDRESSINGS = ("kcfa", "zerocfa", "concrete", "lcontext", "boundednat", "custom")

#: Domain widenings: ``none`` keeps per-state stores (precise, possibly
#: exponential, 6.5); ``store`` is Shivers' single-threaded store.
WIDENINGS = ("none", "store")

#: How the transition function is executed: ``generic`` runs the monadic
#: normal form through the ``StorePassing`` stack (the paper's 5.3.1,
#: the source of truth); ``fused`` runs the staged first-order step
#: compiled from it (:mod:`repro.core.fused` -- identical fixed points,
#: no per-bind monad dispatch on the hot path).
TRANSITIONS = ("generic", "fused")

#: How the fixed-point worklist is evaluated: ``none`` is the sequential
#: loop; ``sharded`` partitions each round's pending configurations into
#: ``shards`` disjoint slices evaluated concurrently against private
#: write overlays and barrier-merged through the versioned store's
#: grow-only ``bind`` (:mod:`repro.parallel` -- identical fixed points,
#: chaotic iteration of a monotone functional is order-insensitive).
PARALLELISMS = ("none", "sharded")


@dataclass(frozen=True)
class AnalysisConfig:
    """One point in the paper's analysis design space, as plain data.

    ``language`` may be left ``None`` in language-agnostic presets; it is
    filled in by the ``analyse*`` family or the CLI that resolves the
    preset.  ``k`` parameterizes whichever addressing scheme is named
    (context depth for ``kcfa``/``lcontext``, the bound for
    ``boundednat``); it is ignored by ``zerocfa`` and ``concrete``.
    """

    language: str | None = None
    addressing: str = "kcfa"
    k: int = 1
    widening: str = "none"
    engine: str | None = None
    store_impl: str = "persistent"
    gc: bool = False
    counting: bool = False
    transition: str = "generic"
    parallelism: str = "none"
    shards: int = 1
    schedule: str = "fifo"
    label: str = ""

    @property
    def shared(self) -> bool:
        """Whether the fixed-point domain is the store-widened one (6.5)."""
        return self.widening == "store"

    def replace(self, **overrides: Any) -> "AnalysisConfig":
        """A copy with the given fields replaced (dataclasses.replace)."""
        return _dc_replace(self, **overrides)

    def validated(self) -> "AnalysisConfig":
        """Normalize and check the configuration; raise ``ValueError`` if bad.

        This is the single home of every compatibility rule the analyses
        used to enforce piecemeal (the module docstring tabulates them).
        Normalization: selecting an engine implies the store widening,
        since the engines are strategies over the widened domain.
        """
        config = self
        if config.engine is not None and config.widening != "store":
            config = config.replace(widening="store")
        if config.language is not None and config.language not in LANGUAGES:
            raise ValueError(
                f"unknown language {config.language!r}; choose one of {LANGUAGES}"
            )
        if config.addressing not in ADDRESSINGS:
            raise ValueError(
                f"unknown addressing {config.addressing!r}; choose one of {ADDRESSINGS}"
            )
        if config.widening not in WIDENINGS:
            raise ValueError(
                f"unknown widening {config.widening!r}; choose one of {WIDENINGS}"
            )
        if config.k < 0:
            raise ValueError("k must be non-negative")
        if config.engine is not None and config.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {config.engine!r}; choose one of {ENGINES}"
            )
        if config.store_impl not in STORE_IMPLS:
            raise ValueError(
                f"unknown store impl {config.store_impl!r}; choose one of {STORE_IMPLS}"
            )
        if config.transition not in TRANSITIONS:
            raise ValueError(
                f"unknown transition {config.transition!r}; "
                f"choose one of {TRANSITIONS}"
            )
        if config.store_impl != "persistent" and config.engine is None:
            raise ValueError(
                "store_impl selects a global-store engine representation; "
                "pass engine='worklist' or engine='depgraph' with it"
            )
        if config.engine == "kleene" and config.store_impl == "versioned":
            raise ValueError(
                "the kleene engine iterates immutable whole-domain snapshots; "
                "the versioned (mutable) store pairs with the worklist engines"
            )
        if config.addressing == "concrete" and (
            config.engine is not None or config.widening != "none"
        ):
            raise ValueError(
                "concrete addressing is the per-state reference semantics; "
                "it takes neither an engine nor the store widening"
            )
        if config.parallelism not in PARALLELISMS:
            raise ValueError(
                f"unknown parallelism {config.parallelism!r}; "
                f"choose one of {PARALLELISMS}"
            )
        if config.shards < 1:
            raise ValueError("shards must be at least 1")
        if config.parallelism == "none" and config.shards != 1:
            raise ValueError(
                "shards only parameterizes the sharded worklist; "
                "pass parallelism='sharded' with shards > 1"
            )
        if config.parallelism == "sharded":
            if config.engine != "depgraph" or config.store_impl != "versioned":
                raise ValueError(
                    "the sharded worklist merges private write overlays "
                    "through the versioned store's changelog and retriggers "
                    "through the dependency map; it needs engine='depgraph' "
                    "with store_impl='versioned'"
                )
            if config.gc or config.counting:
                raise ValueError(
                    "the sharded worklist does not compose with abstract GC "
                    "or counting: the per-evaluation sweep and the "
                    "count-saturation pass are sequential engine effects"
                )
        if config.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {config.schedule!r}; "
                f"choose one of {SCHEDULES}"
            )
        if config.schedule != "fifo" and config.engine not in (
            "worklist",
            "depgraph",
        ):
            raise ValueError(
                "schedule orders the worklist drain; schedule='priority' "
                "needs engine='worklist' or engine='depgraph' (kleene and "
                "per-state runs have no worklist to order)"
            )
        return config

    def cache_key(self) -> str:
        """A stable, human-readable identity string for content addressing.

        Every semantics-bearing field appears as ``name=value`` in sorted
        field order; ``label`` is excluded -- it is presentation only, and
        a preset must share cache entries with the identical hand-built
        configuration.  ``parallelism``/``shards``/``schedule`` are
        excluded for the same reason: the sharded worklist and the
        priority drain order compute the bit-identical fixed point
        (pinned corpus-wide by ``tests/test_parallel.py`` and
        ``tests/test_schedule.py``), so those runs must share cache
        entries with the sequential fifo configuration they equal.  The fixpoint cache
        (:mod:`repro.service.cache`) keys entries by this string joined
        with the program's structural digest, so the key must change
        exactly when the fixed point may.
        """
        fields = {
            "language": self.language,
            "addressing": self.addressing,
            "k": self.k,
            "widening": self.widening,
            "engine": self.engine,
            "store_impl": self.store_impl,
            "gc": self.gc,
            "counting": self.counting,
            "transition": self.transition,
        }
        return "|".join(f"{name}={fields[name]}" for name in sorted(fields))

    def describe(self) -> str:
        """A compact one-line rendering (preset listings, labels)."""
        parts = [self.addressing if self.addressing != "kcfa" else f"{self.k}cfa"]
        parts.append("per-state" if self.widening == "none" else "shared-store")
        if self.engine:
            parts.append(f"{self.engine}/{self.store_impl}")
        if self.gc:
            parts.append("gc")
        if self.counting:
            parts.append("counting")
        if self.transition != "generic":
            parts.append(self.transition)
        if self.parallelism != "none":
            parts.append(f"{self.parallelism}({self.shards})")
        if self.schedule != "fifo":
            parts.append(self.schedule)
        return " ".join(parts)


@dataclass(frozen=True)
class Preset:
    """A named, documented point in the design space."""

    name: str
    config: AnalysisConfig
    description: str


def _preset(name: str, description: str, **fields: Any) -> Preset:
    return Preset(
        name=name,
        config=AnalysisConfig(label=name, **fields).validated(),
        description=description,
    )


#: The named-configuration registry (CLI ``--preset`` / ``--list-presets``).
#: ``*-fast`` and the plain ``0cfa``/``1cfa``/``2cfa`` presets run on the
#: dependency-tracked engine over the versioned store -- the fastest
#: configuration -- and are corpus-equal to their Kleene counterparts
#: (tests/test_config.py).
PRESETS: dict[str, Preset] = {
    preset.name: preset
    for preset in (
        _preset(
            "concrete",
            "reference concrete collecting semantics (unique addresses)",
            addressing="concrete",
        ),
        _preset(
            "0cfa",
            "monovariant global-store analysis, depgraph engine + versioned store",
            addressing="zerocfa",
            engine="depgraph",
            store_impl="versioned",
        ),
        _preset(
            "1cfa",
            "1-CFA over the global store, depgraph engine + versioned store",
            k=1,
            engine="depgraph",
            store_impl="versioned",
        ),
        _preset(
            "2cfa",
            "2-CFA over the global store, depgraph engine + versioned store",
            k=2,
            engine="depgraph",
            store_impl="versioned",
        ),
        _preset(
            "1cfa-fused",
            "1-CFA on the staged (monad-free) transition -- the fastest path",
            k=1,
            engine="depgraph",
            store_impl="versioned",
            transition="fused",
        ),
        _preset(
            "1cfa-sharded",
            "1-CFA with the round-sharded parallel worklist (4 shards)",
            k=1,
            engine="depgraph",
            store_impl="versioned",
            transition="fused",
            parallelism="sharded",
            shards=4,
        ),
        _preset(
            "1cfa-priority",
            "1-CFA on the rank-ordered priority worklist (fewest evaluations)",
            k=1,
            engine="depgraph",
            store_impl="versioned",
            transition="fused",
            schedule="priority",
        ),
        _preset(
            "1cfa-sharded-priority",
            "1-CFA sharded worklist with rank-ordered shard slices (4 shards)",
            k=1,
            engine="depgraph",
            store_impl="versioned",
            transition="fused",
            parallelism="sharded",
            shards=4,
            schedule="priority",
        ),
        _preset(
            "1cfa-gc",
            "1-CFA with abstract GC at worklist speed (depgraph + versioned)",
            k=1,
            gc=True,
            engine="depgraph",
            store_impl="versioned",
        ),
        _preset(
            "1cfa-gc-fused",
            "GC'd 1-CFA on the staged transition (overlay + engine-side sweep)",
            k=1,
            gc=True,
            engine="depgraph",
            store_impl="versioned",
            transition="fused",
        ),
        _preset(
            "1cfa-gc-kleene",
            "1-CFA with abstract GC on whole-domain Kleene rounds (baseline)",
            k=1,
            gc=True,
            engine="kleene",
        ),
        _preset(
            "kcfa-counting-fast",
            "1-CFA with an abstract counting store at worklist speed",
            k=1,
            counting=True,
            engine="depgraph",
            store_impl="versioned",
        ),
        _preset(
            "1cfa-counting-kleene",
            "1-CFA with an abstract counting store on Kleene rounds (baseline)",
            k=1,
            counting=True,
            engine="kleene",
        ),
        _preset(
            "1cfa-per-state",
            "1-CFA with per-state stores (precise, potentially exponential)",
            k=1,
        ),
        _preset(
            "1cfa-gc-per-state",
            "1-CFA with per-state stores and abstract GC (sharpest flows)",
            k=1,
            gc=True,
        ),
        _preset(
            "1cfa-counting-per-state",
            "1-CFA with per-state counting stores (sharp must-alias counts)",
            k=1,
            counting=True,
        ),
    )
}


def preset_config(name: str, language: str | None = None) -> AnalysisConfig:
    """Resolve a preset name to its config, optionally fixing the language."""
    try:
        preset = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {name!r}; choose one of: {known}") from None
    config = preset.config
    if language is not None:
        config = config.replace(language=language)
    return config


def request_config(
    language: str,
    preset: str | None = None,
    overrides: Mapping[str, Any] | None = None,
    label: str = "",
) -> AnalysisConfig:
    """Resolve a service request's scalar parameters into a validated config.

    The wire-facing twin of :func:`build_config`: everything arrives as
    plain JSON scalars (a language, an optional preset name, an optional
    ``{field: value}`` override mapping), never as live ``Addressable``
    or store objects, so the same call serves the analysis server's
    request router, the ``repro client`` front end, and batch-job
    normalization (:func:`repro.service.jobs.normalize_job`).  Unknown
    override fields raise ``ValueError`` with the allowed names -- a
    request must fail loudly, not silently ignore a typo'd field.
    """
    config = preset_config(preset or "1cfa", language)
    if overrides:
        allowed = {
            f.name for f in dataclass_fields(AnalysisConfig) if f.name != "language"
        }
        unknown = sorted(set(overrides) - allowed)
        if unknown:
            raise ValueError(
                f"unknown config override(s) {unknown}; "
                f"choose from: {', '.join(sorted(allowed))}"
            )
        config = config.replace(**dict(overrides))
    if label:
        config = config.replace(label=label)
    return config.validated()


def list_presets() -> list[tuple[str, str, str]]:
    """``(name, configuration summary, description)`` rows for display."""
    return [
        (name, preset.config.describe(), preset.description)
        for name, preset in PRESETS.items()
    ]


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def make_addressing(config: AnalysisConfig) -> Addressable:
    """Build the :class:`Addressable` a config names (6.1)."""
    if config.addressing == "kcfa":
        return KCFA(config.k)
    if config.addressing == "zerocfa":
        return ZeroCFA()
    if config.addressing == "concrete":
        return ConcreteAddressing()
    if config.addressing == "lcontext":
        return LContext(config.k)
    if config.addressing == "boundednat":
        return BoundedNat(config.k)
    raise ValueError(
        "addressing 'custom' needs an explicit Addressable passed to assemble()"
    )


def classify_addressing(addressing: Addressable) -> tuple[str, int]:
    """Map an :class:`Addressable` object back to a config ``(name, k)``."""
    if isinstance(addressing, KCFA):
        return "kcfa", addressing.k
    if isinstance(addressing, ZeroCFA):
        return "zerocfa", 0
    if isinstance(addressing, ConcreteAddressing):
        return "concrete", 0
    if isinstance(addressing, LContext):
        return "lcontext", addressing.depth
    if isinstance(addressing, BoundedNat):
        return "boundednat", addressing.n
    return "custom", 0


def build_config(
    language: str,
    preset: str | None = None,
    addressing: Addressable | None = None,
    store_like: StoreLike | None = None,
    shared: bool | None = None,
    gc: bool | None = None,
    engine: str | None = None,
    store_impl: str | None = None,
    transition: str | None = None,
    parallelism: str | None = None,
    shards: int | None = None,
    schedule: str | None = None,
    label: str = "",
) -> AnalysisConfig:
    """The keyword-argument surface of the ``analyse*`` families, as a config.

    ``None`` means "not passed" for every override.  With ``preset`` the
    named configuration is the starting point and only passed keywords
    override it: ``analyse(preset="1cfa-gc")`` is exactly the preset,
    ``analyse(preset="1cfa-gc", engine="worklist")`` swaps the engine,
    and ``analyse(preset="1cfa", engine="kleene",
    store_impl="persistent")`` pairs a versioned preset back with the
    kleene engine.  Objects passed for ``addressing``/``store_like`` are
    classified into the record; :func:`assemble` will use the objects
    themselves.  This is the single home of the preset-override
    semantics -- the CLI routes through it too.
    """
    if preset is not None:
        config = preset_config(preset, language)
        if addressing is not None:
            name, k = classify_addressing(addressing)
            config = config.replace(addressing=name, k=k)
        if store_like is not None:
            config = config.replace(counting=isinstance(store_like, ACounter))
        if shared is not None:
            config = config.replace(widening="store" if shared else "none")
        if gc is not None:
            config = config.replace(gc=gc)
        if engine is not None:
            config = config.replace(engine=engine)
        if store_impl is not None:
            config = config.replace(store_impl=store_impl)
        if transition is not None:
            config = config.replace(transition=transition)
        if parallelism is not None:
            config = config.replace(parallelism=parallelism)
        if shards is not None:
            config = config.replace(shards=shards)
        if schedule is not None:
            config = config.replace(schedule=schedule)
        if label:
            config = config.replace(label=label)
        return config.validated()
    if addressing is None:
        raise ValueError("pass an Addressable (or a preset name) to assemble from")
    name, k = classify_addressing(addressing)
    return AnalysisConfig(
        language=language,
        addressing=name,
        k=k,
        widening="store" if (shared or engine is not None) else "none",
        engine=engine,
        store_impl=store_impl or "persistent",
        gc=bool(gc),
        counting=isinstance(store_like, ACounter),
        transition=transition or "generic",
        parallelism=parallelism or "none",
        shards=1 if shards is None else shards,
        schedule=schedule or "fifo",
        label=label,
    ).validated()


def prepare_store(
    config: AnalysisConfig, store_like: StoreLike | None = None
) -> StoreLike:
    """The config's store, readied for its engine (wrapping included)."""
    store = store_like or (CountingStore() if config.counting else BasicStore())
    if config.engine is not None:
        store = prepare_engine_store(
            config.engine, store, config.gc, config.store_impl
        )
    return store


def assemble(
    config: AnalysisConfig,
    program: Any = None,
    addressing: Addressable | None = None,
    store_like: StoreLike | None = None,
):
    """``assemble(config) -> Analysis``: the single assembly entry point.

    Validates the config, builds (or accepts) the addressing and store
    components, prepares the store for the configured engine, and hands
    the pieces to the language assembler.  ``program`` is required for
    Featherweight Java (the interface carries the class table) and
    ignored otherwise.  The returned object is the language's analysis
    type (``CPSAnalysis``/``CESKAnalysis``/``FJAnalysis``) -- run it
    with ``.run(program)``.
    """
    config = config.validated()
    if config.language is None:
        raise ValueError("the config names no language; set language= first")
    addressing = addressing if addressing is not None else make_addressing(config)
    store = prepare_store(config, store_like)
    # language modules import repro.config at module level; importing them
    # lazily here keeps the dependency acyclic
    if config.language == "cps":
        from repro.cps.analysis import assemble_cps

        return assemble_cps(config, addressing, store)
    if config.language == "lam":
        from repro.cesk.analysis import assemble_cesk

        return assemble_cesk(config, addressing, store)
    from repro.fj.analysis import assemble_fj_from_config

    if program is None:
        raise ValueError("assembling an FJ analysis needs the program (class table)")
    return assemble_fj_from_config(config, addressing, store, program)


def analyse_preset(preset: str, language: str, program: Any = None):
    """Convenience: resolve a preset for a language and assemble it."""
    return assemble(preset_config(preset, language), program=program)
