"""The concrete CESK machine for direct-style lambda calculus."""

import pytest

from repro.cesk.concrete import (
    CESKTimeout,
    ConcreteCESKInterface,
    evaluate,
    evaluate_trace,
    evaluate_with_heap,
)
from repro.cesk.machine import Clo, HALT_ADDRESS, HaltF, inject
from repro.cesk.semantics import CESKStuck, is_final, mnext_cesk
from repro.lam.parser import parse_expr
from repro.corpus.lam_programs import PROGRAMS, apply_tower, church_add_program


class TestEvaluate:
    def test_identity(self):
        v = evaluate(parse_expr("(let ((id (lambda (x) x))) (id (lambda (y) y)))"))
        assert isinstance(v, Clo)
        assert v.lam.params == ("y",)

    def test_mj09_returns_second_lambda(self):
        v = evaluate(PROGRAMS["mj09"])
        assert v.lam.params == ("y",)

    def test_eta(self):
        v = evaluate(PROGRAMS["eta"])
        assert v.lam.params == ("w",)

    def test_church_two_two(self):
        v = evaluate(PROGRAMS["church-two-two"])
        assert v.lam.params == ("q",)

    def test_multi_arg_application(self):
        v = evaluate(parse_expr("((lambda (a b) b) (lambda (p) p) (lambda (q) q))"))
        assert v.lam.params == ("q",)

    def test_nullary_application(self):
        v = evaluate(parse_expr("((lambda () (lambda (z) z)))"))
        assert v.lam.params == ("z",)

    def test_omega_times_out(self):
        with pytest.raises(CESKTimeout):
            evaluate(PROGRAMS["omega"], max_steps=200)

    def test_z_loop_times_out(self):
        with pytest.raises(CESKTimeout):
            evaluate(PROGRAMS["z-loop"], max_steps=500)

    def test_unbound_variable_sticks(self):
        with pytest.raises(CESKStuck):
            evaluate(parse_expr("(f (lambda (x) x))"))

    def test_arity_mismatch_sticks(self):
        with pytest.raises(CESKStuck):
            evaluate(parse_expr("((lambda (a b) a) (lambda (p) p))"))

    def test_applying_non_closure_impossible(self):
        # all values are closures in pure lambda; applying a lambda works
        v = evaluate(parse_expr("((lambda (x) x) (lambda (y) y))"))
        assert v.lam.params == ("y",)

    @pytest.mark.parametrize("m,n", [(0, 0), (1, 2), (2, 3)])
    def test_church_addition_runs(self, m, n):
        v = evaluate(church_add_program(m, n))
        assert isinstance(v, Clo)


class TestTrace:
    def test_trace_starts_at_injection(self):
        e = PROGRAMS["id-simple"]
        trace = evaluate_trace(e)
        assert trace[0] == inject(e)
        assert is_final(trace[-1])

    def test_trace_length_grows_with_tower(self):
        short = len(evaluate_trace(apply_tower(1)))
        long = len(evaluate_trace(apply_tower(5)))
        assert long > short

    def test_eval_and_return_modes_alternate_sensibly(self):
        trace = evaluate_trace(PROGRAMS["id-simple"])
        assert any(s.is_eval() for s in trace)
        assert any(s.is_return() for s in trace)


class TestInterface:
    def test_halt_frame_prebound(self):
        iface = ConcreteCESKInterface()
        assert iface.fetch_konts(HALT_ADDRESS) == HaltF()

    def test_fresh_addresses(self):
        iface = ConcreteCESKInterface()
        assert iface.alloc("x") != iface.alloc("x")

    def test_final_state_self_loops(self):
        e = PROGRAMS["id-simple"]
        trace = evaluate_trace(e)
        final = trace[-1]
        iface = ConcreteCESKInterface()
        # a return state at the halt address maps to itself
        assert mnext_cesk(iface, final) == final

    def test_heap_retrievable(self):
        value, heap = evaluate_with_heap(PROGRAMS["id-simple"])
        assert isinstance(value, Clo)
        assert HALT_ADDRESS in heap


class TestClosureCapture:
    def test_closures_capture_free_vars_only(self):
        # the returned closure's env should not retain unrelated bindings
        v = evaluate(
            parse_expr(
                "(let* ((junk (lambda (j) j)) (keep (lambda (w) w)))"
                " (lambda (q) (keep q)))"
            )
        )
        assert set(v.env.keys()) == {"keep"}
