"""Fixed-point computation, decoupled from the semantics (paper 5.2).

The paper's third degree of freedom: the analysis lattice and the way a
least fixed point is computed are independent of both the semantic
interface and the monad.  This module provides

* :func:`kleene_iterate` -- the direct transliteration of the paper's
  ``kleeneIt``, ascending from bottom;
* :func:`kleene_iterate_widened` -- the same loop with a widening
  operator spliced between iterates, demonstrating that widening
  strategies are definable independently of the semantics;
* :class:`Collecting` -- the paper's ``Collecting m a fp`` class:
  ``inject`` seeds the domain from a single machine state and
  ``apply_step`` interprets one monadic transition over the whole domain;
* :func:`explore_fp` -- the paper's ``exploreFP``, tying the two together
  as ``lfp (\\s. inject c `join` applyStep step s)``;
* :func:`reachable` / :func:`worklist_explore` -- a frontier-driven
  evaluation strategy that computes the *same* fixed point as Kleene
  iteration for the set-of-configurations domains, but touches each
  configuration once (experiment E9 checks they agree).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.core.lattice import Lattice


class FixpointDiverged(Exception):
    """Raised when iteration exceeds the configured step budget."""


def kleene_iterate(
    lattice: Lattice,
    f: Callable[[Any], Any],
    max_steps: int = 1_000_000,
) -> Any:
    """The paper's ``kleeneIt``: iterate ``f`` from bottom until post-fixed.

    ``loop c = let c' = f c in if c' <= c then c else loop c'``

    Correct for monotone ``f`` over a lattice of finite height; the
    ``max_steps`` budget turns accidental divergence (e.g. analyses with
    unbounded time, footnote 5 of the paper) into a clean error.
    """
    current = lattice.bottom()
    for _ in range(max_steps):
        nxt = f(current)
        if lattice.leq(nxt, current):
            return current
        current = nxt
    raise FixpointDiverged(f"no fixed point within {max_steps} Kleene iterations")


def kleene_iterate_widened(
    lattice: Lattice,
    f: Callable[[Any], Any],
    widen: Callable[[Any, Any], Any],
    max_steps: int = 1_000_000,
) -> Any:
    """Kleene iteration accelerated by a widening operator.

    ``widen(previous, next)`` must return an upper bound of both of its
    arguments; soundness of the result then follows from the usual
    widened-iteration argument.  With ``widen = lattice.join`` this
    coincides with :func:`kleene_iterate`.
    """
    current = lattice.bottom()
    for _ in range(max_steps):
        nxt = f(current)
        if lattice.leq(nxt, current):
            return current
        current = widen(current, nxt)
    raise FixpointDiverged(f"no fixed point within {max_steps} widened iterations")


class Collecting:
    """The paper's ``Collecting m a fp`` type class.

    The functional dependencies ``fp -> a`` and ``fp -> m`` become plain
    object state: a ``Collecting`` instance *knows* its monad and its
    state domain, fixing how a monadic step function is interpreted over
    the fixed-point domain ``fp``.

    Subclasses implement:

    ``inject(a)``
        wrap a single machine state into the bottom-most ``fp`` element,
        instrumenting it with initial guts / store as required;

    ``apply_step(step, fp)``
        interpret one transition ``step : a -> m a`` over every
        configuration in ``fp``, joining the outcomes.
    """

    def inject(self, state: Any) -> Any:
        raise NotImplementedError

    def apply_step(self, step: Callable[[Any], Any], fp: Any) -> Any:
        raise NotImplementedError

    def lattice(self) -> Lattice:
        """The fixed-point domain as a lattice."""
        raise NotImplementedError


def explore_fp(
    collecting: Collecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_steps: int = 1_000_000,
) -> Any:
    """The paper's ``exploreFP``: the collecting semantics as a least fixed point.

    ``exploreFP step c = kleeneIt (\\s -> inject c `join` applyStep step s)``
    """
    lattice = collecting.lattice()
    seed = collecting.inject(initial_state)

    def functional(s: Any) -> Any:
        return lattice.join(seed, collecting.apply_step(step, s))

    return kleene_iterate(lattice, functional, max_steps=max_steps)


# ---------------------------------------------------------------------------
# Frontier-driven exploration (same fixed point, fewer step evaluations)
# ---------------------------------------------------------------------------


def reachable(
    initial: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Hashable]],
    max_states: int = 1_000_000,
) -> frozenset:
    """Transitive closure of ``successors`` from ``initial`` by worklist.

    For a powerset fixed-point domain whose functional is
    ``F(X) = X0 | { s' | s in X, s -> s' }`` this computes exactly
    ``lfp F``, but evaluates the transition once per configuration rather
    than once per configuration per Kleene round.
    """
    seen: set = set(initial)
    frontier: list = list(seen)
    while frontier:
        if len(seen) > max_states:
            raise FixpointDiverged(f"state space exceeded {max_states} configurations")
        state = frontier.pop()
        for nxt in successors(state):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def worklist_explore(
    collecting: "Collecting",
    step: Callable[[Any], Any],
    initial_state: Any,
    successors_of: Callable[[Callable, Hashable], Iterable[Hashable]],
    max_states: int = 1_000_000,
) -> frozenset:
    """Worklist evaluation of a set-of-configurations collecting semantics.

    ``successors_of(step, config)`` must enumerate the configurations a
    single configuration steps to (i.e. one application of the monadic
    ``step`` run in that configuration's guts and store).  The result is
    the same fixed point :func:`explore_fp` computes for the powerset
    domain (verified by experiment E9 / the fixpoint test suite).
    """
    seeds = collecting.inject(initial_state)
    return reachable(seeds, lambda config: successors_of(step, config), max_states)
