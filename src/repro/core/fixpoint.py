"""Fixed-point computation, decoupled from the semantics (paper 5.2).

The paper's third degree of freedom: the analysis lattice and the way a
least fixed point is computed are independent of both the semantic
interface and the monad.  This module provides

* :func:`kleene_iterate` -- the direct transliteration of the paper's
  ``kleeneIt``, ascending from bottom;
* :func:`kleene_iterate_widened` -- the same loop with a widening
  operator spliced between iterates, demonstrating that widening
  strategies are definable independently of the semantics;
* :class:`Collecting` -- the paper's ``Collecting m a fp`` class:
  ``inject`` seeds the domain from a single machine state and
  ``apply_step`` interprets one monadic transition over the whole domain;
* :func:`explore_fp` -- the paper's ``exploreFP``, tying the two together
  as ``lfp (\\s. inject c `join` applyStep step s)``;
* :func:`reachable` / :func:`worklist_explore` -- a frontier-driven
  evaluation strategy that computes the *same* fixed point as Kleene
  iteration for the set-of-configurations domains, but touches each
  configuration once (experiment E9 checks they agree);
* :func:`global_store_explore` -- the global-store worklist engine: the
  store-widened domain ``P(PSigma x guts) x Store`` evaluated by a
  worklist instead of whole-domain Kleene rounds, optionally with
  per-configuration dependency tracking so that a store change only
  re-evaluates the configurations that actually read a changed address.
  Against a :class:`~repro.core.store.VersionedStore` (or
  :class:`~repro.core.store.VersionedCountingStore`) the same engine
  runs its O(delta) loop: one mutable store, growth read off a
  changelog, no persistent-map joins on the hot path.

The three interchangeable strategies over the widened domain are named
by :data:`ENGINES`: ``kleene`` (whole-domain rounds), ``worklist``
(frontier-driven, dependency-blind re-evaluation) and ``depgraph``
(frontier-driven, dependency-tracked re-evaluation).  All three compute
the same least fixed point -- chaotic iteration of a monotone functional
is order-insensitive -- which the engine-equivalence test suite checks
across all three languages.

Every engine is *transition-agnostic*: the ``step`` it receives may be
the generic monadic step (run through ``monad.run`` by the collecting
domain) or a staged :class:`~repro.core.fused.FusedTransition` (called
directly).  The dispatch lives in the collecting domain's
``run_config``/``run_config_pairs`` -- the only places a step is ever
executed -- so the loops below, including the O(delta)
:func:`_versioned_explore` path and the GC overlay/sweep machinery, run
either transition unchanged; the read/write-log bracketing they rely on
is identical because a fused step routes every store operation through
the same (possibly recording) ``store_like``.

Two precision refinements that used to be Kleene-only run on the
worklist engines as well:

* **abstract GC** (6.4): on the persistent path each branch's result
  store arrives already swept (the collector is woven into the monadic
  step), so joining result stores into the global store is exactly the
  grow-only image of the Kleene+GC iteration -- which is monotone on
  every corpus program, hence the same least fixed point.  On the
  versioned path writes cannot land in the shared mutable store
  directly (dead bindings would leak into every configuration's view),
  so each evaluation runs against a
  :class:`~repro.core.store.GCOverlay`; the engine then sweeps
  reachability from every successor state and merges only the live
  writes.  The sweep happens *inside* the read-log bracket: its fetches
  -- including fetches of addresses first bound during this very
  evaluation -- are dependency roots, so a GC'd-then-rebound address
  retriggers exactly the configurations whose reachable set it can
  enlarge.
* **abstract counting** (6.3): at the Kleene fixed point every
  step-written address has count MANY (the confirming round re-binds it
  once more), so the engine tracks the written-address set through the
  recording store's write log and saturates those counts once, after
  convergence -- the identical fixed point without the re-evaluations.

## The versioning invariant (what the O(delta) loop relies on)

A :class:`~repro.core.store.MutableStore` bumps ``versions[addr]`` and
appends ``addr`` to its ``changelog`` exactly when the value set at
``addr`` changes; value sets only grow (binds are joins).  Therefore
``mark()``/``changed_since(mark)`` bracket an evaluation's store growth
precisely, and "nothing changed" is an integer comparison.  The
``kleene`` engine is incompatible with this representation -- it
re-applies the functional to immutable whole-domain snapshots and needs
earlier iterates to remain observable, while a mutable store has
identity, not history -- which is why ``kleene`` + ``versioned`` is
rejected at assembly time (see
:func:`repro.core.driver.prepare_engine_store` and
:meth:`repro.config.AnalysisConfig.validated`).

## The read/write-log bracketing protocol

The dependency-tracked paths wrap the store in a
:class:`~repro.core.store.RecordingStore` and bracket each evaluation
with ``begin_log``/``end_log``.  Everything that must influence
re-triggering has to happen inside the bracket: the monadic step, the
woven-in GC sweep (persistent path) and the engine-side GC sweep
(versioned path).  ``end_log`` runs in a ``finally`` so a raising step
cannot leave the log open (``begin_log`` refuses re-entry), and the
returned ``(reads, writes)`` are consumed immediately: reads feed the
dependency map, writes feed growth detection and the counting
saturation set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

from repro.core.gc import reachable_addresses
from repro.core.schedule import SCHEDULES, make_worklist
from repro.core.lattice import Lattice
from repro.core.store import (
    ACounter,
    GCOverlay,
    MutableStore,
    RecordingStore,
    StoreSnapshot,
    VersionedCountingStore,
    VersionedStore,
    unwrap_store,
)

#: The interchangeable fixed-point strategies over the global-store domain.
ENGINES = ("kleene", "worklist", "depgraph")

#: The store representations the worklist engines can run against:
#: ``persistent`` threads immutable PMap stores and compares growth
#: through the store lattice; ``versioned`` threads one mutable
#: :class:`~repro.core.store.MutableStore` and reads growth off its
#: changelog in O(delta).
STORE_IMPLS = ("persistent", "versioned")


def check_engine_support(
    store_like: Any, gc: bool = False, counting: bool = False
) -> None:
    """Mechanical requirements of the raw global-store engine.

    Policy-level compatibility (which engine/store/GC/counting
    combinations an *analysis* may be assembled from) lives in
    :meth:`repro.config.AnalysisConfig.validated`; this check only
    guards direct engine use against setups the loop cannot execute:
    counting needs the write log, because it decides which counts to
    saturate on convergence.  (GC does not: the persistent path weaves
    the collector into the step, and the versioned path's engine-side
    sweep only needs the recorder when dependency tracking is on --
    which the ``track_deps`` guard already enforces.)
    """
    recorder = store_like if isinstance(store_like, RecordingStore) else None
    if counting and recorder is None:
        raise TypeError(
            "counting on the global-store engines needs a RecordingStore-"
            "wrapped store: the write log decides which counts to saturate"
        )


class FixpointDiverged(Exception):
    """Raised when iteration exceeds the configured step budget."""


# ---------------------------------------------------------------------------
# Warm starts: replayable evaluations and the seed they resume from
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvalRecord:
    """One configuration's *last* evaluation, as replayable data.

    ``reads`` and ``writes`` are the address sets of the
    :class:`~repro.core.store.RecordingStore` bracket and ``successors``
    the ``(pstate, guts)`` pairs the evaluation stepped to.  At a
    depgraph fixed point the record is exact with respect to the final
    store: had any read address grown after the last evaluation, the
    dependency map would have re-enqueued the configuration, contradicting
    convergence.  A single evaluation is a pure function of the
    configuration and the store restricted to its reads, so the record
    can stand in for re-running the step whenever those cells still hold
    the recorded values -- the memoization behind ``warm_start=``.
    ``writes`` keeps the replay honest on the *store* side: the warm
    engine restricts its final store to addresses some surviving
    configuration wrote (or the injection seeded), so cells only a
    no-longer-reachable donor configuration wrote do not leak into the
    result.
    """

    reads: frozenset
    writes: frozenset
    successors: tuple


@dataclass(frozen=True)
class WarmStart:
    """A previous fixed point, packaged to seed an incremental re-run.

    ``store`` is the prior global store -- a frozen PMap image or a
    :class:`~repro.core.store.StoreSnapshot` -- and ``records`` maps each
    previously-seen configuration to its :class:`EvalRecord`.  The warm
    engine path seeds its global store from ``store`` and, when it pops a
    configuration whose record's reads are all still *clean* (no address
    grew past the seeded value), replays the recorded successors instead
    of evaluating the step; the recorded writes are already contained in
    the seeded store, so replay needs no store work at all.  Dirty or
    unknown configurations are evaluated for real.

    Equality contract (pinned corpus-wide in ``tests/test_service.py``):
    the warm result is *identical* to a cold run of the same program
    provided the seeded store lies at or below the cold run's fixed-point
    store -- true by construction for an unedited program and for edits
    that extend a program without removing old behavior at shared
    addresses (e.g. wrapping a new entry around an interned subprogram).
    An edit that deletes behavior can leave stale cells in the seed; the
    warm result is then still a sound over-approximation, and callers who
    need exactness fall back to a cold run
    (see :mod:`repro.service.incremental`).
    """

    store: Any
    records: Mapping

    @property
    def size(self) -> int:
        """How many configurations the seed can replay (for stats/reports)."""
        return len(self.records)


@dataclass
class FixpointCapture:
    """A sink ``global_store_explore`` fills so a run can seed later ones.

    ``records`` receives every configuration's latest :class:`EvalRecord`
    (overwritten on re-evaluation, so convergence leaves the exact
    last-evaluation records a :class:`WarmStart` needs); replayed
    configurations during a warm run re-deposit their cached record, so a
    warm run's capture is complete and chains of edits stay warm.
    """

    records: dict = field(default_factory=dict)

    def warm_start(self, store: Any) -> WarmStart:
        """Package this capture with a fixed-point ``store`` as a seed."""
        return WarmStart(store=store, records=dict(self.records))


def kleene_iterate(
    lattice: Lattice,
    f: Callable[[Any], Any],
    max_steps: int = 1_000_000,
) -> Any:
    """The paper's ``kleeneIt``: iterate ``f`` from bottom until post-fixed.

    ``loop c = let c' = f c in if c' <= c then c else loop c'``

    Correct for monotone ``f`` over a lattice of finite height; the
    ``max_steps`` budget turns accidental divergence (e.g. analyses with
    unbounded time, footnote 5 of the paper) into a clean error.
    """
    current = lattice.bottom()
    for _ in range(max_steps):
        nxt = f(current)
        if lattice.leq(nxt, current):
            return current
        current = nxt
    raise FixpointDiverged(f"no fixed point within {max_steps} Kleene iterations")


def kleene_iterate_widened(
    lattice: Lattice,
    f: Callable[[Any], Any],
    widen: Callable[[Any, Any], Any],
    max_steps: int = 1_000_000,
) -> Any:
    """Kleene iteration accelerated by a widening operator.

    ``widen(previous, next)`` must return an upper bound of both of its
    arguments; soundness of the result then follows from the usual
    widened-iteration argument.  With ``widen = lattice.join`` this
    coincides with :func:`kleene_iterate`.
    """
    current = lattice.bottom()
    for _ in range(max_steps):
        nxt = f(current)
        if lattice.leq(nxt, current):
            return current
        current = widen(current, nxt)
    raise FixpointDiverged(f"no fixed point within {max_steps} widened iterations")


class Collecting:
    """The paper's ``Collecting m a fp`` type class.

    The functional dependencies ``fp -> a`` and ``fp -> m`` become plain
    object state: a ``Collecting`` instance *knows* its monad and its
    state domain, fixing how a monadic step function is interpreted over
    the fixed-point domain ``fp``.

    Subclasses implement:

    ``inject(a)``
        wrap a single machine state into the bottom-most ``fp`` element,
        instrumenting it with initial guts / store as required;

    ``apply_step(step, fp)``
        interpret one transition ``step : a -> m a`` over every
        configuration in ``fp``, joining the outcomes.
    """

    def inject(self, state: Any) -> Any:
        raise NotImplementedError

    def apply_step(self, step: Callable[[Any], Any], fp: Any) -> Any:
        raise NotImplementedError

    def lattice(self) -> Lattice:
        """The fixed-point domain as a lattice."""
        raise NotImplementedError


def explore_fp(
    collecting: Collecting,
    step: Callable[[Any], Any],
    initial_state: Any,
    max_steps: int = 1_000_000,
) -> Any:
    """The paper's ``exploreFP``: the collecting semantics as a least fixed point.

    ``exploreFP step c = kleeneIt (\\s -> inject c `join` applyStep step s)``
    """
    lattice = collecting.lattice()
    seed = collecting.inject(initial_state)

    def functional(s: Any) -> Any:
        return lattice.join(seed, collecting.apply_step(step, s))

    return kleene_iterate(lattice, functional, max_steps=max_steps)


# ---------------------------------------------------------------------------
# Frontier-driven exploration (same fixed point, fewer step evaluations)
# ---------------------------------------------------------------------------


def reachable(
    initial: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Hashable]],
    max_states: int = 1_000_000,
) -> frozenset:
    """Transitive closure of ``successors`` from ``initial`` by worklist.

    For a powerset fixed-point domain whose functional is
    ``F(X) = X0 | { s' | s in X, s -> s' }`` this computes exactly
    ``lfp F``, but evaluates the transition once per configuration rather
    than once per configuration per Kleene round.
    """
    seen: set = set(initial)
    frontier: list = list(seen)
    while frontier:
        if len(seen) > max_states:
            raise FixpointDiverged(f"state space exceeded {max_states} configurations")
        state = frontier.pop()
        for nxt in successors(state):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def worklist_explore(
    collecting: "Collecting",
    step: Callable[[Any], Any],
    initial_state: Any,
    successors_of: Callable[[Callable, Hashable], Iterable[Hashable]],
    max_states: int = 1_000_000,
) -> frozenset:
    """Worklist evaluation of a set-of-configurations collecting semantics.

    ``successors_of(step, config)`` must enumerate the configurations a
    single configuration steps to (i.e. one application of the monadic
    ``step`` run in that configuration's guts and store).  The result is
    the same fixed point :func:`explore_fp` computes for the powerset
    domain (verified by experiment E9 / the fixpoint test suite).
    """
    seeds = collecting.inject(initial_state)
    return reachable(seeds, lambda config: successors_of(step, config), max_states)


# ---------------------------------------------------------------------------
# The global-store worklist engine (dependency-tracked re-evaluation)
# ---------------------------------------------------------------------------


def global_store_explore(
    collecting: Any,
    step: Callable[[Any], Any],
    initial_state: Any,
    track_deps: bool = True,
    max_evals: int = 1_000_000,
    stats: dict | None = None,
    warm_start: WarmStart | None = None,
    capture: FixpointCapture | None = None,
    parallelism: str = "none",
    shards: int = 1,
    schedule: str = "fifo",
    trace: list | None = None,
) -> tuple:
    """Worklist evaluation of the store-widened domain ``P(configs) x Store``.

    ``collecting`` must be a shared-store domain (a
    :class:`~repro.core.collecting.SharedStoreCollecting` or subclass):
    its ``inject`` seeds the configuration set and the global store, and
    its ``inner`` per-state domain runs one configuration against a
    given store.  The engine then maintains

    * one *global store*, the join of every store any evaluation produced
      (the standard AAM global-store widening);
    * a *seen* set of configurations and a worklist of configurations
      still to (re-)evaluate;
    * with ``track_deps``, a dependency map ``addr -> readers`` recording
      which configurations fetched which addresses during their last
      evaluation (via a :class:`~repro.core.store.RecordingStore`).

    When an evaluation grows the global store, Kleene iteration would
    re-step *every* configuration next round.  The blind worklist
    (``track_deps=False``) re-enqueues every seen configuration, but only
    when the store actually grew; the dependency-tracked engine
    re-enqueues only the configurations that read an address whose value
    set grew.  All three strategies compute the same least fixed point:
    the functional is monotone, and chaotic iteration re-evaluating every
    equation whose inputs changed converges to the least solution
    regardless of order.

    Returns the fixed point in the shared-domain shape
    ``(frozenset(configs), store)``.  ``stats``, when supplied, is filled
    with evaluation counts for benchmarking.

    Two store representations back the loop (:data:`STORE_IMPLS`): with a
    persistent store the engine joins result stores through the store
    lattice and compares growth address-by-address; when the collecting
    domain's store is a :class:`~repro.core.store.VersionedStore` (or
    :class:`~repro.core.store.VersionedCountingStore`) the engine
    switches to :func:`_versioned_explore`, which mutates one shared
    store in place and reads growth off its changelog in O(delta).
    Either way the returned store is an immutable PMap and the fixed
    point is identical (checked across the corpus by the store-impl
    equivalence tests).

    Abstract GC and counting compose with both representations: on this
    (persistent) path GC arrives pre-woven into the step (each branch's
    result store is already swept, so the joins below only ever admit
    live bindings), and counting stores have their step-written counts
    saturated after convergence (see the module docstring for why that
    reproduces the Kleene counting fixed point exactly).

    ``warm_start`` seeds the run from a previous fixed point (see
    :class:`WarmStart`: the seeded store is joined in, and configurations
    whose recorded reads are still clean replay their recorded successors
    instead of re-stepping).  ``capture``, when supplied, is filled with
    every configuration's last :class:`EvalRecord` so *this* run can seed
    later ones.  Both require the dependency-tracked configuration
    (``track_deps`` + recording store) and neither composes with abstract
    GC or counting: the GC sweep and the count-saturation pass are
    side-effects an :class:`EvalRecord` replay would silently skip.

    ``schedule`` picks the worklist drain order
    (:data:`~repro.core.schedule.SCHEDULES`): ``fifo`` is the historical
    order, ``priority`` drains in ascending dependency rank so store
    growth flows forward before stale shallow readers re-run.  Any order
    computes the same least fixed point (chaotic iteration); the
    schedule only changes *how many* evaluations it takes, reported
    through the ``evaluations``, ``dedup_hits`` and ``max_rank`` stats.
    Warm-start replay drains through the same worklist, so clean records
    replay in rank order under ``priority``.  ``trace``, when supplied,
    receives one ``(rank, config)`` entry per real (non-replayed)
    evaluation in evaluation order -- the raw feed behind
    ``tools/profile_analysis.py --schedule-trace``.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; expected one of {SCHEDULES}")
    inner = collecting.inner
    store_like = inner.store_like
    base_store = unwrap_store(store_like)
    counting = isinstance(base_store, ACounter)
    gc_on = getattr(inner, "collector", None) is not None
    check_engine_support(store_like, gc=gc_on, counting=counting)
    recorder = store_like if isinstance(store_like, RecordingStore) else None
    if track_deps and recorder is None:
        raise TypeError(
            "dependency tracking needs the collecting domain's store to be a RecordingStore"
        )
    if warm_start is not None or capture is not None:
        what = "warm starts" if warm_start is not None else "evaluation capture"
        if not track_deps or recorder is None:
            raise TypeError(
                f"{what} need the dependency-tracked engine: replayed "
                "configurations are re-triggered through the dependency map "
                "when a seeded cell later grows"
            )
        if gc_on or counting:
            raise TypeError(
                f"{what} do not compose with abstract GC or counting: the "
                "per-evaluation sweep and the count saturation are effects "
                "an evaluation record cannot replay"
            )
    if parallelism == "sharded":
        if not isinstance(base_store, VersionedStore) or counting:
            raise TypeError(
                "the sharded worklist merges private write overlays through "
                "the versioned store's changelog; it needs a VersionedStore "
                "(no counting)"
            )
        if not track_deps or recorder is None:
            raise TypeError(
                "the sharded worklist retriggers cross-shard readers through "
                "the dependency map; it needs the dependency-tracked engine"
            )
        if gc_on:
            raise TypeError(
                "the sharded worklist does not compose with abstract GC: the "
                "per-evaluation reachability sweep is a sequential engine effect"
            )
        if warm_start is not None or capture is not None:
            raise TypeError(
                "the sharded worklist does not compose with warm starts or "
                "evaluation capture: overlay write sets omit no-growth binds, "
                "so replayed records would under-approximate live writes"
            )
        if trace is not None:
            raise TypeError(
                "schedule tracing is sequential-only: the sharded worklist "
                "evaluates slices on worker threads, so a global evaluation "
                "order is not well-defined"
            )
        from repro.parallel.worklist import sharded_explore

        return sharded_explore(
            collecting,
            step,
            initial_state,
            base_store,
            shards=shards,
            max_evals=max_evals,
            stats=stats,
            schedule=schedule,
        )
    if isinstance(base_store, (VersionedStore, VersionedCountingStore)):
        return _versioned_explore(
            collecting,
            step,
            initial_state,
            base_store,
            recorder,
            track_deps=track_deps,
            max_evals=max_evals,
            stats=stats,
            warm_start=warm_start,
            capture=capture,
            schedule=schedule,
            trace=trace,
        )
    store_lattice = store_like.lattice()
    value_lattice = store_like.value_lattice
    use_log = recorder is not None

    seed_configs, seed_store = collecting.inject(initial_state)
    global_store = seed_store
    warm_records = None
    live_writes: set = set()
    if warm_start is not None:
        warm_store = warm_start.store
        if isinstance(warm_store, StoreSnapshot):
            warm_store = warm_store.data
        global_store = store_lattice.join(global_store, warm_store)
        warm_records = warm_start.records
        live_writes = set(seed_store.keys())
    seen: set = set(seed_configs)
    worklist = make_worklist(schedule, seen)
    deps: dict = {}
    written_all: set = set()
    dirty: set = set()
    evals = 0
    retriggers = 0
    reused = 0

    while worklist:
        config = worklist.pop()

        if warm_records is not None:
            record = warm_records.get(config)
            if record is not None and dirty.isdisjoint(record.reads):
                # replay: the record's reads still hold their seeded
                # values, so the evaluation would reproduce exactly the
                # recorded successors, and its writes are already part of
                # the seeded store -- discovery without stepping.  The
                # reads still enter the dependency map: if a cell grows
                # later, the replayed configuration is re-enqueued and
                # (now dirty) evaluated for real.
                reused += 1
                live_writes |= record.writes
                for addr in record.reads:
                    deps.setdefault(addr, set()).add(config)
                for pair in record.successors:
                    if pair not in seen:
                        seen.add(pair)
                        worklist.discovered(pair, config)
                if capture is not None:
                    capture.records[config] = record
                continue

        evals += 1
        if evals > max_evals:
            raise FixpointDiverged(
                f"no fixed point within {max_evals} configuration evaluations"
            )
        if trace is not None:
            trace.append((worklist.ranks.get(config, 0), config))

        if use_log:
            recorder.begin_log()
            try:
                results = inner.run_config(step, (config, global_store))
            finally:
                # always close the bracket: a step that raises must not
                # leave the recorder logging (begin_log refuses reentry)
                reads, writes = recorder.end_log()
            if track_deps:
                for addr in reads:
                    deps.setdefault(addr, set()).add(config)
            if counting:
                written_all |= writes
            if warm_records is not None:
                live_writes |= writes
        else:
            results = inner.run_config(step, (config, global_store))

        new_store = global_store
        for _pair, result_store in results:
            new_store = store_lattice.join(new_store, result_store)
        for pair, _result_store in results:
            if pair not in seen:
                seen.add(pair)
                worklist.discovered(pair, config)
        if capture is not None:
            capture.records[config] = EvalRecord(
                reads=reads,
                writes=writes,
                successors=tuple(dict.fromkeys(pair for pair, _ in results)),
            )

        if new_store is global_store:
            continue
        if track_deps:
            # re-enqueue only the readers of addresses whose value set grew;
            # the comparison goes through ``fetch`` because that is all a
            # re-evaluation can observe (counting stores: count-only drift
            # is invisible to fetch, so it never retriggers)
            for addr in writes:
                old_d = store_like.fetch(global_store, addr)
                new_d = store_like.fetch(new_store, addr)
                if value_lattice.leq(new_d, old_d):
                    continue
                if warm_records is not None:
                    dirty.add(addr)
                for reader in deps.get(addr, ()):
                    if worklist.retrigger(reader):
                        retriggers += 1
        elif not store_lattice.leq(new_store, global_store):
            # dependency-blind: any growth re-enqueues every configuration
            for reader in seen:
                if worklist.retrigger(reader):
                    retriggers += 1
        global_store = new_store

    if counting:
        global_store = base_store.saturate(global_store, written_all)
    if warm_records is not None:
        # drop seeded cells no surviving configuration wrote: a donor
        # configuration that is unreachable in this program must not
        # leak its bindings into the result (cold-equality contract)
        global_store = global_store.restrict(live_writes.__contains__)
    if stats is not None:
        stats.update(
            evaluations=evals,
            retriggers=retriggers,
            configurations=len(seen),
            tracked_addresses=len(deps),
            reused=reused,
            dedup_hits=worklist.dedup_hits,
            max_rank=worklist.max_rank,
            schedule=schedule,
        )
    return (frozenset(seen), global_store)


def _successor_live_addresses(
    sweep_like: Any, overlay: Any, pairs: Iterable, touching: Any
) -> set:
    """Addresses reachable from any successor state, swept over ``overlay``.

    This is the engine-side image of the paper's ``Gamma`` (6.4): one
    reachability closure per successor, unioned.  The sweep goes through
    ``sweep_like`` -- the :class:`~repro.core.store.RecordingStore` when
    dependency tracking is on -- so every address it fetches lands in
    the open read log.  That includes addresses *bound after the log
    opened* (this evaluation's own writes, visible through the overlay):
    missing those reads would leave the dependency map without the GC
    roots, and a configuration whose reachable set grows through such an
    address would never be retriggered.
    """
    # reachability distributes over root unions, so one closure over the
    # union of every successor's roots equals the per-successor sweeps
    # at a fraction of the cost (each address is visited once, not once
    # per successor that reaches it)
    roots: set = set()
    for pstate, _guts in pairs:
        roots |= touching.touched_by_state(pstate)
    return set(
        reachable_addresses(sweep_like, overlay, roots, touching.touched_by_value)
    )


def _versioned_explore(
    collecting: Any,
    step: Callable[[Any], Any],
    initial_state: Any,
    base_store: Any,
    recorder: Any,
    track_deps: bool,
    max_evals: int,
    stats: dict | None,
    warm_start: WarmStart | None = None,
    capture: FixpointCapture | None = None,
    schedule: str = "fifo",
    trace: list | None = None,
) -> tuple:
    """The O(delta) hot loop behind :func:`global_store_explore`.

    Same fixed point, different bookkeeping: the engine owns one
    :class:`~repro.core.store.MutableStore` which every evaluation
    mutates in place (join-only, so sharing it across monadic branches
    *is* the global-store widening), and growth is read off the store's
    changelog instead of joining and re-comparing persistent maps:

    * "did this evaluation change anything" is ``mark()`` before versus
      after -- an integer comparison;
    * "which readers to retrigger" walks only ``changed_since(mark)``,
      the addresses whose value sets actually grew.

    With abstract GC the shared store cannot take writes directly; each
    evaluation instead runs against a
    :class:`~repro.core.store.GCOverlay` and the engine merges only the
    writes reachable from some successor state (the sweep happens inside
    the read-log bracket -- see :func:`_successor_live_addresses`).  The
    merge's version bumps are exactly what retriggers the readers of a
    GC'd-then-rebound address.  With a counting store, step-written
    counts are saturated after convergence (module docstring).

    The result is frozen back to a PMap, so callers see the exact shape
    (and value) the persistent path produces.
    """
    inner = collecting.inner
    collector = getattr(inner, "collector", None)
    gc_on = collector is not None
    counting = isinstance(base_store, ACounter)
    if gc_on:
        touching = collector.touching
        sweep_like = recorder if recorder is not None else base_store
    use_log = recorder is not None

    seed_configs, seed_store = collecting.inject(initial_state)
    warm_records = None
    if warm_start is not None:
        # resume the mutable store from the seeded snapshot: restore()
        # leaves the changelog empty, so changed_since() below reports
        # exactly the growth past the seed -- which is also the dirty
        # set that invalidates evaluation records
        mstore = MutableStore.restore(StoreSnapshot.of_mapping(warm_start.store))
        for addr in seed_store.keys():
            base_store.bind(mstore, addr, seed_store.get(addr))
        warm_records = warm_start.records
        live_writes: set = set(seed_store.keys())
    else:
        mstore = base_store.thaw(seed_store)
        live_writes = set()
    seen: set = set(seed_configs)
    worklist = make_worklist(schedule, seen)
    deps: dict = {}
    written_all: set = set()
    dirty: set = set(mstore.changed_since(0)) if warm_start is not None else set()
    evals = 0
    retriggers = 0
    reused = 0

    while worklist:
        config = worklist.pop()

        if warm_records is not None:
            record = warm_records.get(config)
            if record is not None and dirty.isdisjoint(record.reads):
                # replay (see the persistent path above): clean reads mean
                # the evaluation would reproduce the recorded successors,
                # and its writes are already in the seeded store
                reused += 1
                live_writes |= record.writes
                for addr in record.reads:
                    deps.setdefault(addr, set()).add(config)
                for pair in record.successors:
                    if pair not in seen:
                        seen.add(pair)
                        worklist.discovered(pair, config)
                if capture is not None:
                    capture.records[config] = record
                continue

        evals += 1
        if evals > max_evals:
            raise FixpointDiverged(
                f"no fixed point within {max_evals} configuration evaluations"
            )
        if trace is not None:
            trace.append((worklist.ranks.get(config, 0), config))

        mark = mstore.mark()
        run_store = GCOverlay(mstore) if gc_on else mstore
        if use_log:
            recorder.begin_log()
            try:
                pairs = inner.run_config_pairs(
                    step, (config, run_store), instrument=False
                )
                if gc_on:
                    # the sweep must stay inside the bracket: its reads
                    # (even of addresses bound after the log opened) are
                    # the GC roots of the dependency map
                    live = _successor_live_addresses(
                        sweep_like, run_store, pairs, touching
                    )
            finally:
                # always close the bracket: a step that raises must not
                # leave the recorder logging (begin_log refuses reentry)
                reads, writes = recorder.end_log()
            if track_deps:
                for addr in reads:
                    deps.setdefault(addr, set()).add(config)
            if counting:
                written_all |= writes
            if warm_records is not None:
                live_writes |= writes
        else:
            pairs = inner.run_config_pairs(step, (config, run_store), instrument=False)
            if gc_on:
                live = _successor_live_addresses(sweep_like, run_store, pairs, touching)

        if gc_on:
            # merge the live writes; dead bindings never reach the store
            for addr, entry in run_store.written().items():
                if addr in live:
                    base_store.merge_entry(mstore, addr, entry)

        for pair in pairs:
            if pair not in seen:
                seen.add(pair)
                worklist.discovered(pair, config)
        if capture is not None:
            capture.records[config] = EvalRecord(
                reads=reads, writes=writes, successors=tuple(dict.fromkeys(pairs))
            )

        grown = mstore.changed_since(mark)
        if not grown:
            continue
        if warm_records is not None:
            dirty.update(grown)
        if track_deps:
            for addr in set(grown):
                for reader in deps.get(addr, ()):
                    if worklist.retrigger(reader):
                        retriggers += 1
        else:
            for reader in seen:
                if worklist.retrigger(reader):
                    retriggers += 1

    if counting:
        base_store.saturate(mstore, written_all)
    frozen = base_store.freeze(mstore)
    if warm_records is not None:
        # drop seeded cells no surviving configuration wrote (see the
        # persistent path: the cold-equality contract of warm starts)
        frozen = frozen.restrict(live_writes.__contains__)
    if stats is not None:
        stats.update(
            evaluations=evals,
            retriggers=retriggers,
            configurations=len(seen),
            tracked_addresses=len(deps),
            reused=reused,
            dedup_hits=worklist.dedup_hits,
            max_rank=worklist.max_rank,
            schedule=schedule,
        )
    return (frozenset(seen), frozen)
