"""Surface syntax of ``imp``: a small imperative language over the pipeline.

``imp`` is the repository's "real-program" frontend: statements
(``let``/assignment, ``if``/``else``, ``while``, ``return``), first-class
functions (``fn`` literals and declarations), integer and boolean
literals, and the usual arithmetic/comparison/logical operators.  The
whole language lowers (:mod:`repro.imp.lower`) into the direct-style
lambda calculus of :mod:`repro.lam`, so every engine, preset, store
implementation and the service layer run on ``imp`` programs unchanged.

The AST is deliberately *not* hash-consed: surface programs are
short-lived inputs to the lowering pass (and the fuzz shrinker rewrites
them freely); only the lowered :class:`repro.lam.syntax.Expr` enters the
intern pool.  Nodes are frozen dataclasses with structural equality, and
:func:`pp` renders canonical source that re-parses to an equal tree
(``parse_program(pp(p)) == p`` -- pinned in ``tests/test_imp.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class Stmt:
    """A statement."""

    __slots__ = ()


class Expr:
    """An expression."""

    __slots__ = ()


@dataclass(frozen=True)
class Program:
    """A whole program: a statement block whose value is its ``return``."""

    body: tuple[Stmt, ...]

    def __repr__(self) -> str:
        return pp(self)


# -- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class EInt(Expr):
    """An integer literal (lowered to a Church numeral)."""

    value: int


@dataclass(frozen=True)
class EBool(Expr):
    """``true`` or ``false`` (lowered to a Church boolean)."""

    value: bool


@dataclass(frozen=True)
class EVar(Expr):
    """A variable reference."""

    name: str


@dataclass(frozen=True)
class EFn(Expr):
    """``fn (x, y) { ... }``: a first-class function literal."""

    params: tuple[str, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class ECall(Expr):
    """``f(a, b)``: call-by-value application."""

    fun: Expr
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class EUnary(Expr):
    """``!e``: logical negation."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class EBinOp(Expr):
    """A binary operator: ``+ - * == <= < and or``."""

    op: str
    lhs: Expr
    rhs: Expr


# -- statements -------------------------------------------------------------


@dataclass(frozen=True)
class SLet(Stmt):
    """``let x = e;``: declare and bind a new variable."""

    name: str
    rhs: Expr


@dataclass(frozen=True)
class SAssign(Stmt):
    """``x = e;``: rebind an already-declared variable."""

    name: str
    rhs: Expr


@dataclass(frozen=True)
class SIf(Stmt):
    """``if (c) { ... } else { ... }`` (the else block may be empty)."""

    cond: Expr
    then: tuple[Stmt, ...]
    els: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class SWhile(Stmt):
    """``while (c) { ... }``."""

    cond: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class SReturn(Stmt):
    """``return e;``: the value of the enclosing function (or program)."""

    value: Expr


@dataclass(frozen=True)
class SExpr(Stmt):
    """``e;``: evaluate for effect (calls), discard the value."""

    value: Expr


# -- traversal helpers ------------------------------------------------------


def stmt_exprs(stmt: Stmt) -> Iterator[Expr]:
    """The expressions a statement holds directly (not recursive)."""
    if isinstance(stmt, (SLet, SAssign)):
        yield stmt.rhs
    elif isinstance(stmt, SIf):
        yield stmt.cond
    elif isinstance(stmt, SWhile):
        yield stmt.cond
    elif isinstance(stmt, (SReturn, SExpr)):
        yield stmt.value


def stmt_blocks(stmt: Stmt) -> Iterator[tuple[Stmt, ...]]:
    """The statement blocks nested directly inside a statement."""
    if isinstance(stmt, SIf):
        yield stmt.then
        yield stmt.els
    elif isinstance(stmt, SWhile):
        yield stmt.body


def program_size(program: Program) -> int:
    """Total number of statements and expression nodes (shrinker metric)."""

    def expr_size(expr: Expr) -> int:
        if isinstance(expr, EFn):
            return 1 + sum(size_of(s) for s in expr.body)
        if isinstance(expr, ECall):
            return 1 + expr_size(expr.fun) + sum(expr_size(a) for a in expr.args)
        if isinstance(expr, EUnary):
            return 1 + expr_size(expr.operand)
        if isinstance(expr, EBinOp):
            return 1 + expr_size(expr.lhs) + expr_size(expr.rhs)
        return 1

    def size_of(stmt: Stmt) -> int:
        total = 1 + sum(expr_size(e) for e in stmt_exprs(stmt))
        for block in stmt_blocks(stmt):
            total += sum(size_of(s) for s in block)
        return total

    return sum(size_of(s) for s in program.body)


# -- pretty printer ---------------------------------------------------------

#: Binding strength per operator, loosest first (mirrors the parser).
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 4,
    "<=": 4,
    "<": 4,
    "+": 5,
    "-": 5,
    "*": 6,
}


def pp_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, EInt):
        return str(expr.value)
    if isinstance(expr, EBool):
        return "true" if expr.value else "false"
    if isinstance(expr, EVar):
        return expr.name
    if isinstance(expr, EFn):
        body = " ".join(pp_stmt(s) for s in expr.body)
        sep = " " if body else ""
        return f"fn ({', '.join(expr.params)}) {{{sep}{body}{sep}}}"
    if isinstance(expr, ECall):
        fun = pp_expr(expr.fun, 7)
        return f"{fun}({', '.join(pp_expr(a) for a in expr.args)})"
    if isinstance(expr, EUnary):
        text = f"!{pp_expr(expr.operand, 3)}"
        return f"({text})" if parent_prec > 3 else text
    if isinstance(expr, EBinOp):
        prec = _PRECEDENCE[expr.op]
        text = (
            f"{pp_expr(expr.lhs, prec)} {expr.op} {pp_expr(expr.rhs, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"not an imp expression: {expr!r}")


def _pp_block(body: tuple[Stmt, ...]) -> str:
    inner = " ".join(pp_stmt(s) for s in body)
    return f"{{ {inner} }}" if inner else "{ }"


def pp_stmt(stmt: Stmt) -> str:
    """Render one statement as canonical single-line source."""
    if isinstance(stmt, SLet):
        return f"let {stmt.name} = {pp_expr(stmt.rhs)};"
    if isinstance(stmt, SAssign):
        return f"{stmt.name} = {pp_expr(stmt.rhs)};"
    if isinstance(stmt, SIf):
        text = f"if ({pp_expr(stmt.cond)}) {_pp_block(stmt.then)}"
        if stmt.els:
            text += f" else {_pp_block(stmt.els)}"
        return text
    if isinstance(stmt, SWhile):
        return f"while ({pp_expr(stmt.cond)}) {_pp_block(stmt.body)}"
    if isinstance(stmt, SReturn):
        return f"return {pp_expr(stmt.value)};"
    if isinstance(stmt, SExpr):
        return f"{pp_expr(stmt.value)};"
    raise TypeError(f"not an imp statement: {stmt!r}")


def pp(program: Program) -> str:
    """Canonical source text: one statement per line, trailing newline."""
    return "".join(pp_stmt(s) + "\n" for s in program.body)
