"""The resident analysis server: equality, concurrency, faults, counters.

The acceptance contract this file pins, end to end over a real socket:

* **Tier-blind content** -- for every preset x language matrix cell, the
  ``analyse`` response's analysis content (states, store, flows,
  precision, content address) is byte-identical to a cold in-process
  ``assemble(config).run(program)`` of the same cell, whichever tier
  (cold run, disk cache, hot LRU, warm start) served it.
* **Soak** -- overlapping mixed ``analyse``/``reanalyse`` traffic from
  several client threads produces only correct responses: no stale
  reads from the hot tier, no cross-request bleed, counters that add up.
* **Eviction is never staleness** -- with a one-entry hot tier, an
  evicted cell falls through to the disk tier (or a cold run) and still
  serves identical content.
* **Faults are visible, counted fallbacks** -- a dying worker job, a
  corrupt on-disk cache payload, an exhausted admission queue, and a
  timed-out request each produce a typed error response or a correct
  degraded answer, never a hang or a silently wrong result.
* **One counter source** -- the server's ``stats`` and its batch
  reports read the same ``FixpointCache`` counters, and those counters
  accumulate across server lifetimes via the index document (the
  process-local-stats regression).
"""

import json
import threading
import time

import pytest
import serve_helpers
from serve_helpers import CELLS, cell_params, content_bytes

from repro.serve import ServeClient, ServeError, ServerHandle
from repro.service.cache import FixpointCache


@pytest.fixture(scope="module")
def cold_rows():
    """The cold in-process reference content for every matrix cell."""
    return {cell: serve_helpers.cold_row(*cell) for cell in CELLS}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One resident server over a fresh cache, shared by the sweep tests."""
    with ServerHandle(
        cache_dir=str(tmp_path_factory.mktemp("servecache")), workers=3
    ) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


class TestMatrixEquality:
    """Server responses == cold assemble(), across the whole matrix."""

    def test_cold_sweep_matches_cold_assemble(self, client, cold_rows):
        seen_keys: set[str] = set()
        for cell in CELLS:
            row = client.call("analyse", cell_params(*cell))
            # presets that differ only in evaluation strategy (e.g. 1cfa
            # vs 1cfa-sharded) share a content address: the first cell
            # per key computes cold, the rest legitimately hit
            if row["key"] not in seen_keys:
                assert row["cache"] == "miss", cell
                seen_keys.add(row["key"])
            assert content_bytes(row) == content_bytes(cold_rows[cell]), cell

    def test_hot_sweep_identical_and_all_hot(self, client, cold_rows):
        """The second identical sweep is served entirely from memory --
        and is byte-identical anyway."""
        for cell in CELLS:
            row = client.call("analyse", cell_params(*cell))
            assert row["cache"] == "hit" and row["tier"] == "hot", cell
            assert row["evaluations"] == 0, cell
            assert content_bytes(row) == content_bytes(cold_rows[cell]), cell

    def test_reanalyse_sweep_identical(self, client, cold_rows):
        """reanalyse differs from analyse only in enabling the warm tier;
        on digest hits they are indistinguishable."""
        for cell in CELLS:
            row = client.call("reanalyse", cell_params(*cell))
            assert row["cache"] == "hit", cell
            assert content_bytes(row) == content_bytes(cold_rows[cell]), cell

    def test_batch_method_matches_cold(self, client, cold_rows):
        report = client.call(
            "batch",
            {
                "jobs": [cell_params(*cell) for cell in CELLS],
                "include_flows": True,  # flows ride at the report level
            },
        )
        assert report["schema"] == "batch-report/1"
        assert len(report["jobs"]) == len(CELLS)
        for row, cell in zip(report["jobs"], CELLS):
            assert content_bytes(row) == content_bytes(cold_rows[cell]), cell


class TestSoak:
    """Overlapping mixed traffic from threads: correct, complete, counted."""

    THREADS = 4
    ROUNDS = 2

    def test_concurrent_mixed_sweep(self, tmp_path, cold_rows):
        """Each thread sweeps the matrix (rotated, so threads collide on
        different cells at different times) with alternating
        analyse/reanalyse; every response must carry the cold content.
        The server starts cold, so early requests race each other into
        the cache -- the writer-lock / idempotent-put path under test."""
        failures: list[str] = []
        totals: list[int] = []

        def sweep(index: int, port: int) -> None:
            served = 0
            try:
                with ServeClient(port=port) as mine:
                    for round_no in range(self.ROUNDS):
                        cells = CELLS[index:] + CELLS[:index]
                        for offset, cell in enumerate(cells):
                            method = (
                                "reanalyse"
                                if (index + round_no + offset) % 2
                                else "analyse"
                            )
                            row = mine.call(method, cell_params(*cell))
                            if content_bytes(row) != content_bytes(cold_rows[cell]):
                                failures.append(f"{method} {cell} diverged")
                            served += 1
            except Exception as error:  # surface in the main thread
                failures.append(f"thread {index}: {type(error).__name__}: {error}")
            totals.append(served)

        with ServerHandle(cache_dir=str(tmp_path / "cache"), workers=3) as handle:
            threads = [
                threading.Thread(target=sweep, args=(index, handle.port))
                for index in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            assert not failures, failures[:5]
            expected = self.THREADS * self.ROUNDS * len(CELLS)
            assert sum(totals) == expected
            with ServeClient(port=handle.port) as client:
                stats = client.call("stats")
            assert (
                stats["requests"].get("analyse", 0)
                + stats["requests"].get("reanalyse", 0)
                == expected
            )
            # every analysis request was answered by exactly one tier
            assert sum(stats["tiers"].values()) == expected
            assert stats["errors"] == {}


class TestHotTierEviction:
    """An evicted hot entry falls through, never serves stale content."""

    def test_evicted_cell_reloads_identically(self, tmp_path, cold_rows):
        cell_a, cell_b = ("1cfa", "cps"), ("0cfa", "lam")
        with ServerHandle(
            cache_dir=str(tmp_path / "cache"), workers=1, hot_entries=1
        ) as handle:
            with ServeClient(port=handle.port) as client:
                first = client.call("analyse", cell_params(*cell_a))
                assert first["tier"] == "cold"
                other = client.call("analyse", cell_params(*cell_b))
                assert other["tier"] == "cold"  # and it evicted cell_a
                again = client.call("analyse", cell_params(*cell_a))
                # hot tier lost it; the disk tier serves the same bytes
                assert again["tier"] == "disk" and again["cache"] == "hit"
                assert content_bytes(again) == content_bytes(cold_rows[cell_a])
                third = client.call("analyse", cell_params(*cell_a))
                assert third["tier"] == "hot"  # the disk hit re-promoted it
                assert content_bytes(third) == content_bytes(cold_rows[cell_a])
                stats = client.call("stats")
                assert stats["hot"]["evictions"] >= 2
                assert stats["hot"]["max_entries"] == 1

    def test_memory_only_server_recomputes_after_eviction(self, cold_rows):
        """No disk tier at all: eviction falls through to a cold run."""
        cell_a, cell_b = ("0cfa", "cps"), ("0cfa", "lam")
        with ServerHandle(workers=1, hot_entries=1) as handle:
            with ServeClient(port=handle.port) as client:
                assert client.call("analyse", cell_params(*cell_a))["tier"] == "cold"
                assert client.call("analyse", cell_params(*cell_b))["tier"] == "cold"
                again = client.call("analyse", cell_params(*cell_a))
                assert again["tier"] == "cold"  # recomputed, not stale
                assert content_bytes(again) == content_bytes(cold_rows[cell_a])


class TestCounterSource:
    """stats and batch reports read one counter source; it persists."""

    def test_batch_report_and_stats_share_cache_counters(self, tmp_path):
        jobs = [cell_params("1cfa", "cps"), cell_params("0cfa", "lam")]
        with ServerHandle(cache_dir=str(tmp_path / "cache"), workers=1) as handle:
            with ServeClient(port=handle.port) as client:
                report = client.call("batch", {"jobs": jobs})
                stats = client.call("stats")
        # the report's cache block and the stats method counted the same
        # two misses/stores on the same FixpointCache instance
        assert report["cache"]["misses"] == 2
        assert report["cache"]["stores"] == 2
        assert stats["cache"]["misses"] == report["cache"]["misses"]
        assert stats["cache"]["stores"] == report["cache"]["stores"]
        assert stats["cache"]["lifetime"] == report["cache"]["lifetime"]

    def test_lifetime_counters_survive_server_restart(self, tmp_path):
        """The process-local-stats regression: a second server (or CLI)
        over the same cache directory starts from the persisted lifetime
        counters instead of zero."""
        cache_dir = str(tmp_path / "cache")
        params = cell_params("1cfa", "cps")
        with ServerHandle(cache_dir=cache_dir, workers=1) as handle:
            with ServeClient(port=handle.port) as client:
                assert client.call("analyse", params)["cache"] == "miss"
                assert client.call("analyse", params)["cache"] == "hit"
                # hot tier answered the repeat: no disk hit yet
                first_life = client.call("stats")["cache"]["lifetime"]
                client.call("shutdown")
        assert first_life["misses"] == 1 and first_life["stores"] == 1

        with ServerHandle(cache_dir=cache_dir, workers=1) as handle:
            with ServeClient(port=handle.port) as client:
                row = client.call("analyse", params)
                # fresh process: hot tier empty, disk tier warm
                assert row["cache"] == "hit" and row["tier"] == "disk"
                stats = client.call("stats")
                # session counters reset with the process...
                assert stats["cache"]["hits"] == 1 and stats["cache"]["stores"] == 0
                # ...lifetime counters kept accumulating across it
                assert stats["cache"]["lifetime"]["stores"] == 1
                assert stats["cache"]["lifetime"]["misses"] == 1
                assert stats["cache"]["lifetime"]["hits"] == first_life["hits"] + 1
                client.call("shutdown")

    def test_flushed_stats_visible_to_fresh_cache_instance(self, tmp_path):
        """Below the server: the FixpointCache itself persists lifetime
        counters on flush, so hit-only sessions leave a trace."""
        root = tmp_path / "cache"
        params = cell_params("0cfa", "cps")
        with ServerHandle(cache_dir=str(root), workers=1) as handle:
            with ServeClient(port=handle.port) as client:
                client.call("analyse", params)
                client.call("shutdown")
        reader = FixpointCache(root=root)
        assert reader.stats()["hits"] == 0  # this instance did nothing yet
        assert reader.stats()["lifetime"]["stores"] == 1


class TestFaultInjection:
    """Each fault: a typed, counted, visible outcome -- never a hang."""

    def test_worker_death_is_typed_error_and_server_survives(
        self, tmp_path, cold_rows
    ):
        cell = ("1cfa", "cps")
        with ServerHandle(cache_dir=str(tmp_path / "cache"), workers=1) as handle:
            with ServeClient(port=handle.port) as client:
                with pytest.MonkeyPatch.context() as patch:

                    def die(*args, **kwargs):
                        raise RuntimeError("worker died mid-request")

                    patch.setattr("repro.serve.server.dispatch", die)
                    with pytest.raises(ServeError) as caught:
                        client.call("analyse", cell_params(*cell))
                    assert caught.value.name == "analysis-error"
                    assert caught.value.code == -32000
                    assert "worker died mid-request" in str(caught.value)
                # the patch is gone; the same server answers correctly
                row = client.call("analyse", cell_params(*cell))
                assert content_bytes(row) == content_bytes(cold_rows[cell])
                stats = client.call("stats")
                assert stats["errors"]["analysis-error"] == 1

    def test_corrupt_disk_payload_falls_back_to_cold(self, tmp_path, cold_rows):
        """A corrupted object file behind a valid index entry: the disk
        tier reports a miss (counted), the cell recomputes cold, and the
        response content is still exactly right."""
        cell = ("1cfa", "cps")
        other = ("0cfa", "lam")
        cache_dir = tmp_path / "cache"
        with ServerHandle(
            cache_dir=str(cache_dir), workers=1, hot_entries=1
        ) as handle:
            with ServeClient(port=handle.port) as client:
                first = client.call("analyse", cell_params(*cell))
                assert first["tier"] == "cold"
                client.call("analyse", cell_params(*other))  # evict from hot
                # corrupt the stored payload behind the server's back
                payload = cache_dir / "objects" / f"{first['key']}.pkl"
                assert payload.exists()
                payload.write_bytes(b"not a pickle")
                row = client.call("analyse", cell_params(*cell))
                assert row["tier"] == "cold" and row["cache"] == "miss"
                assert content_bytes(row) == content_bytes(cold_rows[cell])
                stats = client.call("stats")
                # the fallback is visible: a counted disk miss, no error
                assert stats["cache"]["misses"] >= 3
                assert stats["errors"] == {}

    def test_queue_exhaustion_is_immediate_typed_error(self, tmp_path):
        release = threading.Event()
        entered = threading.Event()
        from repro.service import jobs as jobs_module

        real_dispatch = jobs_module.dispatch
        blocked_once = []

        def slow_dispatch(*args, **kwargs):
            if not blocked_once:
                blocked_once.append(True)
                entered.set()
                assert release.wait(timeout=60), "test never released the worker"
            return real_dispatch(*args, **kwargs)

        with ServerHandle(
            cache_dir=str(tmp_path / "cache"), workers=1, queue_limit=1
        ) as handle:
            with pytest.MonkeyPatch.context() as patch:
                patch.setattr("repro.serve.server.dispatch", slow_dispatch)
                slow_result: list = []

                def occupy():
                    with ServeClient(port=handle.port) as mine:
                        slow_result.append(mine.call("analyse", cell_params("1cfa", "cps")))

                occupier = threading.Thread(target=occupy)
                occupier.start()
                assert entered.wait(timeout=60), "first request never admitted"
                with ServeClient(port=handle.port) as client:
                    with pytest.raises(ServeError) as caught:
                        client.call("analyse", cell_params("0cfa", "lam"))
                    assert caught.value.name == "queue-full"
                    assert caught.value.code == -32002
                    release.set()
                    occupier.join(timeout=60)
                    assert slow_result and slow_result[0]["states"] > 0
                    stats = client.call("stats")
                    assert stats["errors"]["queue-full"] == 1

    def test_timeout_orphan_releases_and_counts_nothing(self, tmp_path, cold_rows):
        """A timed-out request: typed error now, slot released when the
        orphaned job actually ends, tier counters untouched by it."""
        release = threading.Event()
        from repro.service import jobs as jobs_module

        real_dispatch = jobs_module.dispatch
        blocked_once = []

        def slow_dispatch(*args, **kwargs):
            if not blocked_once:
                blocked_once.append(True)
                assert release.wait(timeout=60), "test never released the worker"
            return real_dispatch(*args, **kwargs)

        cell = ("1cfa", "cps")
        with ServerHandle(cache_dir=str(tmp_path / "cache"), workers=1) as handle:
            with pytest.MonkeyPatch.context() as patch:
                patch.setattr("repro.serve.server.dispatch", slow_dispatch)
                with ServeClient(port=handle.port) as client:
                    params = dict(cell_params(*cell), timeout=0.05)
                    with pytest.raises(ServeError) as caught:
                        client.call("analyse", params)
                    assert caught.value.name == "timeout"
                    assert caught.value.code == -32001
                    release.set()
                    # wait for the orphaned job to finish and free its slot
                    deadline = time.monotonic() + 60
                    while handle.server._inflight and time.monotonic() < deadline:
                        time.sleep(0.01)
                    assert handle.server._inflight == 0
                    stats = client.call("stats")
                    assert stats["errors"]["timeout"] == 1
                    # the orphan never reached the tier counters
                    assert stats["tiers"] == {}
                    # and the server still answers the same cell correctly
                    row = client.call("analyse", cell_params(*cell))
                    assert content_bytes(row) == content_bytes(cold_rows[cell])


class TestProtocolDiscipline:
    """Cross-cutting wire behavior not pinned byte-for-byte in goldens."""

    def test_malformed_line_gets_error_response_not_disconnect(self, server):
        with serve_helpers.RawConnection(server.port) as raw:
            response = raw.exchange("this is not json")
            assert response["error"]["name"] == "parse-error"
            assert response["id"] is None
            # the connection survived; a real request still works
            pong = raw.exchange(json.dumps({"id": 7, "method": "ping"}))
            assert pong == {"id": 7, "result": {"pong": True}}

    def test_responses_correlate_by_id(self, server):
        with serve_helpers.RawConnection(server.port) as raw:
            for request_id in ("alpha", 42):
                response = raw.exchange(
                    json.dumps({"id": request_id, "method": "ping"})
                )
                assert response["id"] == request_id

    def test_unknown_params_rejected(self, client):
        with pytest.raises(ServeError) as caught:
            client.call("analyse", dict(cell_params("1cfa", "cps"), wat=1))
        assert caught.value.name == "invalid-params"

    def test_bad_override_rejected(self, client):
        with pytest.raises(ServeError) as caught:
            client.call(
                "analyse",
                {
                    "language": "cps",
                    "corpus": "mj09",
                    "overrides": {"quantum": True},
                },
            )
        assert caught.value.name == "invalid-params"
        assert "quantum" in str(caught.value)

    def test_imp_source_lowers_to_lam(self, client):
        row = client.call(
            "analyse",
            {
                "language": "imp",
                "source": "let x = 1; let y = x; return y;",
                "preset": "1cfa",
            },
        )
        assert row["language"] == "lam"
        assert row["states"] > 0


def _parse_prometheus(text: str) -> dict:
    """Prometheus exposition text -> {(name, frozen labels): value}."""
    parsed = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        metric, value = line.rsplit(" ", 1)
        if "{" in metric:
            name, body = metric[:-1].split("{", 1)
            labels = frozenset(
                tuple(pair.split("=", 1)) for pair in body.split('",') if pair
            )
            labels = frozenset((k, v.strip('"')) for k, v in labels)
        else:
            name, labels = metric, frozenset()
        parsed[(name, labels)] = float(value)
    return parsed


class TestObservability:
    """The metrics method reconciles with stats; tracing rides requests."""

    def test_metrics_reconciles_with_stats(self, tmp_path):
        with ServerHandle(cache_dir=str(tmp_path / "cache"), workers=2) as handle:
            with ServeClient(port=handle.port) as client:
                client.call("ping", {})
                client.call("analyse", cell_params("1cfa", "cps"))
                client.call("analyse", cell_params("1cfa", "cps"))
                with pytest.raises(ServeError):
                    client.call("analyse", {"language": "cps", "corpus": "mj09",
                                            "preset": "no-such-preset"})
                stats = client.call("stats", {})
                prom = _parse_prometheus(
                    client.call("metrics", {})["prometheus"]
                )
        # the metrics request itself was counted at receipt, after the
        # stats snapshot -- every other counter must match exactly
        for method, count in stats["requests"].items():
            expected = count + (1 if method == "metrics" else 0)
            key = ("serve_requests_total", frozenset({("method", method)}))
            assert prom[key] == expected, method
        assert prom[("serve_requests_total",
                     frozenset({("method", "metrics")}))] == 1
        for tier, count in stats["tiers"].items():
            key = ("serve_tier_total", frozenset({("tier", tier)}))
            assert prom[key] == count, tier
        for name, count in stats["errors"].items():
            key = ("serve_errors_total", frozenset({("error", name)}))
            assert prom[key] == count, name
        assert prom[("serve_work_evaluations_total", frozenset())] == (
            stats["work"]["evaluations"]
        )
        # latency summaries exist for every method that completed
        for method, cell in stats["latency"].items():
            key = ("serve_latency_seconds_count", frozenset({("method", method)}))
            assert prom[key] == cell["count"], method

    def test_request_trace_field_returns_events(self, tmp_path):
        with ServerHandle(cache_dir=str(tmp_path / "cache"), workers=2) as handle:
            with ServeClient(port=handle.port) as client:
                plain = client.call("analyse", cell_params("1cfa", "lam"))
                traced = client.call(
                    "analyse", dict(cell_params("1cfa", "lam"), trace=True)
                )
        assert "trace" not in plain
        names = [event["name"] for event in traced["trace"]]
        assert "serve.analyse" in names
        # the traced response's analysis content is still byte-identical
        traced.pop("trace")
        assert content_bytes(traced) == content_bytes(plain)

    def test_server_trace_path_written_on_shutdown(self, tmp_path):
        trace_path = tmp_path / "serve-trace.json"
        with ServerHandle(
            cache_dir=str(tmp_path / "cache"),
            workers=2,
            trace_path=str(trace_path),
        ) as handle:
            with ServeClient(port=handle.port) as client:
                client.call("analyse", cell_params("1cfa", "cps"))
        document = json.loads(trace_path.read_text())
        names = [event["name"] for event in document["traceEvents"]]
        assert "serve.analyse" in names
        assert "fixpoint" in names  # engine spans landed in the same trace
