"""The monadic small-step semantics of CPS: the paper's Figure 2.

This module is the *language definition level* of the framework: the
semantic interface :class:`CPSInterface` and the transition function
:func:`mnext`, written once in monadic normal form.  Everything else --
concrete interpretation, collecting semantics, k-CFA, widening, GC,
counting -- comes from swapping the interface implementation and the
monad, with this file left untouched (that invariance is the paper's
Figure 2 caption: "not going to change in the remainder of our story",
and our tests pin it down).

The interface, transliterated::

    class Monad m => CPSInterface m a where
      fun   :: Env a -> AExp -> m (Val a)
      arg   :: Env a -> AExp -> m (Val a)
      (|->) :: a -> Val a -> m ()
      alloc :: Var -> m a
      tick  :: Val a -> PSigma a -> m ()

``fun`` evaluates the operator (the sole source of nondeterminism),
``arg`` evaluates operands, ``|->`` (here :meth:`CPSInterface.bind_addr`)
writes a binding through the monad, ``alloc`` mints an address for a
variable, and ``tick`` advances whatever notion of time the monad keeps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Any, Hashable

from repro.core.monads import Monad, MonadPlus, map_m, run_do, sequence_
from repro.cps.syntax import AExp, Call, CExp, Exit, Lam, Var
from repro.util.pcollections import PMap, pmap


@hash_consed
@dataclass(frozen=True)
class Clo:
    """The only denotable value in CPS: a closure ``(lam, rho)``."""

    lam: Lam
    env: PMap

    def __repr__(self) -> str:
        return f"Clo({self.lam!r})"


@hash_consed
@dataclass(frozen=True)
class PState:
    """A partial state ``PSigma a = (CExp, Env a)``: control + environment.

    Time and store live inside the monad (paper 3.2-3.3), so machine
    states carry only what the transition inspects directly.
    ``context_key`` exposes the control point to the semantics-independent
    :class:`~repro.core.addresses.Addressable` allocators.
    """

    ctrl: CExp
    env: PMap

    def context_key(self) -> Hashable:
        return self.ctrl

    def is_final(self) -> bool:
        return isinstance(self.ctrl, Exit)

    def __repr__(self) -> str:
        return f"<{self.ctrl!r} | {dict(self.env.items_sorted())!r}>"


def inject(program: CExp) -> PState:
    """The injector ``I(call) = (call, [])`` of section 2."""
    return PState(program, pmap())


class CPSStuck(Exception):
    """A deterministic interpretation reached a stuck (non-Exit) state."""


class CPSInterface(ABC):
    """The semantic interface of CPS (Figure 2), over a monad instance.

    An implementation fixes the address type ``a`` (implicitly, by what
    ``alloc`` returns) and the monad ``m`` (the :attr:`monad` object).
    """

    def __init__(self, monad: Monad):
        self.monad = monad

    @abstractmethod
    def fun(self, env: PMap, aexp: AExp) -> Any:
        """Evaluate the operator position to a closure, in the monad."""

    @abstractmethod
    def arg(self, env: PMap, aexp: AExp) -> Any:
        """Evaluate an operand position to a value, in the monad."""

    @abstractmethod
    def bind_addr(self, addr: Hashable, value: Clo) -> Any:
        """``addr |-> value``: write one binding through the monad."""

    @abstractmethod
    def alloc(self, var: Var) -> Any:
        """Allocate an address for ``var`` (context comes from the monad)."""

    @abstractmethod
    def tick(self, proc: Clo, pstate: PState) -> Any:
        """Advance the monad's internal time for a call of ``proc``."""

    # -- hooks with sensible defaults ---------------------------------------

    def stuck(self, pstate: PState, reason: str) -> Any:
        """Interpretation of a stuck transition (arity mismatch, bad operator).

        Nondeterministic monads prune the branch; deterministic ones
        raise, because a concrete run that sticks is a real error.
        """
        if isinstance(self.monad, MonadPlus):
            return self.monad.mzero()
        raise CPSStuck(f"{reason} at {pstate!r}")


def mnext(interface: CPSInterface, pstate: PState) -> Any:
    """The transition function of Figure 2, in monadic normal form.

    ::

        mnext ps@(Call f aes, rho) = do
          proc@(Clo (vs :=> call', rho')) <- fun rho f
          tick proc ps
          as <- mapM alloc vs
          ds <- mapM (arg rho) aes
          let rho'' = rho' // [v ==> a | v <- vs | a <- as]
          sequence [a |-> d | a <- as | d <- ds]
          return (call', rho'')
        mnext s = return s
    """
    monad = interface.monad
    ctrl = pstate.ctrl
    if not isinstance(ctrl, Call):
        return monad.unit(pstate)
    f, aes = ctrl.fun, ctrl.args

    def with_proc(proc: Clo) -> Any:
        if not isinstance(proc, Clo):
            return interface.stuck(pstate, f"operator is not a closure: {proc!r}")
        vs, call_body, rho_prime = proc.lam.params, proc.lam.body, proc.env
        if len(vs) != len(aes):
            return interface.stuck(
                pstate, f"arity mismatch: {len(vs)} params, {len(aes)} args"
            )

        def with_time(_ignored: Any) -> Any:
            return monad.bind(
                map_m(monad, interface.alloc, vs),
                lambda addrs: monad.bind(
                    map_m(monad, lambda ae: interface.arg(pstate.env, ae), aes),
                    lambda ds: monad.then(
                        sequence_(
                            monad,
                            [interface.bind_addr(a, d) for a, d in zip(addrs, ds)],
                        ),
                        monad.unit(
                            PState(call_body, rho_prime.update(zip(vs, addrs)))
                        ),
                    ),
                ),
            )

        return monad.bind(interface.tick(proc, pstate), with_time)

    return monad.bind(interface.fun(pstate.env, f), with_proc)


def mnext_do(interface: CPSInterface, pstate: PState) -> Any:
    """:func:`mnext` written with generator do-notation (replay semantics).

    Semantically identical to :func:`mnext`; kept as both documentation
    (it reads like the paper's do-block) and as a regression test for the
    :func:`~repro.core.monads.run_do` machinery under nondeterminism.
    """
    monad = interface.monad
    ctrl = pstate.ctrl
    if not isinstance(ctrl, Call):
        return monad.unit(pstate)
    f, aes = ctrl.fun, ctrl.args

    def block():
        proc = yield interface.fun(pstate.env, f)
        if not isinstance(proc, Clo):
            yield interface.stuck(pstate, f"operator is not a closure: {proc!r}")
        vs, call_body, rho_prime = proc.lam.params, proc.lam.body, proc.env
        if len(vs) != len(aes):
            yield interface.stuck(pstate, "arity mismatch")
        yield interface.tick(proc, pstate)
        addrs = yield map_m(monad, interface.alloc, vs)
        ds = yield map_m(monad, lambda ae: interface.arg(pstate.env, ae), aes)
        yield sequence_(monad, [interface.bind_addr(a, d) for a, d in zip(addrs, ds)])
        return PState(call_body, rho_prime.update(zip(vs, addrs)))

    return run_do(monad, block)


def atomic_eval_closure(env: PMap, aexp: AExp) -> Clo | None:
    """The pure part of the atomic evaluator: lambdas close over the environment.

    Variable references need the store and therefore the monad; they
    return ``None`` here and are handled by each interface.
    """
    if isinstance(aexp, Lam):
        return Clo(aexp, env.restrict(lambda v: v in free_vars_cache(aexp)))
    return None


_FREE_VARS_CACHE: dict = {}


def free_vars_cache(term) -> frozenset:
    """Memoized free-variable sets (terms are immutable, so caching is safe).

    Closures capture only the *free* variables of their lambda -- a
    standard flow-analysis hygiene step that makes environments minimal,
    sharpens abstract GC, and keeps states small.
    """
    try:
        return _FREE_VARS_CACHE[term]
    except KeyError:
        from repro.cps.syntax import free_vars

        result = free_vars(term)
        _FREE_VARS_CACHE[term] = result
        return result
