"""repro: *Monadic Abstract Interpreters* (Sergey et al., PLDI 2013) in Python.

A monadically-parameterized abstract-machine framework in which the
*monad* -- together with semantics-independent components for addressing
(:mod:`repro.core.addresses`), stores (:mod:`repro.core.store`), abstract
counting, abstract garbage collection (:mod:`repro.core.gc`) and
fixed-point computation (:mod:`repro.core.fixpoint`) -- determines the
classical properties of a static analysis: context-sensitivity,
polyvariance, heap cloning vs. store widening, reachability pruning and
cardinality bounding.

Three language definitions instantiate the framework with the *same*
meta-level components:

* :mod:`repro.cps`  -- continuation-passing-style lambda calculus (the
  paper's running development, sections 2-8);
* :mod:`repro.cesk` -- direct-style lambda calculus via a CESK machine;
* :mod:`repro.fj`   -- Featherweight Java.
"""

__version__ = "1.0.0"
