"""``StoreLike`` instances: basic and counting stores (paper 6.2-6.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import AbsNat
from repro.core.store import BasicStore, CountingStore

values = st.frozensets(st.integers(0, 5), min_size=1, max_size=3)
addrs = st.sampled_from(["a", "b", "c"])
#: a random script of (addr, value-set) bind operations
bind_scripts = st.lists(st.tuples(addrs, values), max_size=8)


class TestBasicStore:
    def setup_method(self):
        self.s = BasicStore()

    def test_empty_fetch_is_bottom(self):
        assert self.s.fetch(self.s.empty(), "a") == frozenset()

    def test_bind_then_fetch(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        assert self.s.fetch(store, "a") == frozenset([1])

    def test_bind_joins(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "a", frozenset([2]))
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_replace_overwrites(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1, 2]))
        store = self.s.replace(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([9])

    def test_bind_one_wraps_singleton(self):
        store = self.s.bind_one(self.s.empty(), "a", 7)
        assert self.s.fetch(store, "a") == frozenset([7])

    def test_filter_store(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "b", frozenset([2]))
        filtered = self.s.filter_store(store, lambda addr: addr == "a")
        assert set(self.s.addresses(filtered)) == {"a"}

    def test_update_defaults_to_weak(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.update(store, "a", frozenset([2]))
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_store_lattice_join(self):
        lat = self.s.lattice()
        s1 = self.s.bind(self.s.empty(), "a", frozenset([1]))
        s2 = self.s.bind(self.s.empty(), "a", frozenset([2]))
        joined = lat.join(s1, s2)
        assert self.s.fetch(joined, "a") == frozenset([1, 2])

    @given(bind_scripts)
    def test_fetch_returns_join_of_all_binds(self, script):
        store = self.s.empty()
        expected: dict = {}
        for addr, d in script:
            store = self.s.bind(store, addr, d)
            expected[addr] = expected.get(addr, frozenset()) | d
        for addr, d in expected.items():
            assert self.s.fetch(store, addr) == d

    @given(bind_scripts, addrs, values)
    def test_bind_monotone(self, script, addr, d):
        store = self.s.empty()
        for a, v in script:
            store = self.s.bind(store, a, v)
        bigger = self.s.bind(store, addr, d)
        assert self.s.lattice().leq(store, bigger)


class TestCountingStore:
    def setup_method(self):
        self.s = CountingStore()

    def test_unbound_counts_zero(self):
        assert self.s.count(self.s.empty(), "a") is AbsNat.ZERO

    def test_single_bind_counts_one(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        assert self.s.count(store, "a") is AbsNat.ONE
        assert self.s.fetch(store, "a") == frozenset([1])

    def test_double_bind_counts_many(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "a", frozenset([2]))
        assert self.s.count(store, "a") is AbsNat.MANY
        assert self.s.fetch(store, "a") == frozenset([1, 2])

    def test_replace_preserves_count(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.replace(store, "a", frozenset([9]))
        assert self.s.count(store, "a") is AbsNat.ONE
        assert self.s.fetch(store, "a") == frozenset([9])

    def test_update_is_strong_when_count_is_one(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.update(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([9])  # strong update

    def test_update_is_weak_when_count_is_many(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "a", frozenset([2]))
        store = self.s.update(store, "a", frozenset([9]))
        assert self.s.fetch(store, "a") == frozenset([1, 2, 9])  # weak update

    def test_singleton_addresses(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "b", frozenset([2]))
        store = self.s.bind(store, "b", frozenset([3]))
        assert self.s.singleton_addresses(store) == frozenset(["a"])

    def test_filter_store(self):
        store = self.s.bind(self.s.empty(), "a", frozenset([1]))
        store = self.s.bind(store, "b", frozenset([2]))
        filtered = self.s.filter_store(store, lambda addr: addr == "b")
        assert set(self.s.addresses(filtered)) == {"b"}
        assert self.s.count(filtered, "a") is AbsNat.ZERO

    def test_store_lattice_joins_counts(self):
        lat = self.s.lattice()
        s1 = self.s.bind(self.s.empty(), "a", frozenset([1]))
        s2 = self.s.bind(self.s.empty(), "a", frozenset([2]))
        joined = lat.join(s1, s2)
        # joining two independent single allocations cannot prove singleness
        # beyond ONE join ONE = ONE (the lattice join, not abstract addition)
        assert self.s.fetch(joined, "a") == frozenset([1, 2])
        assert self.s.count(joined, "a") is AbsNat.ONE

    @given(bind_scripts)
    def test_count_matches_number_of_binds(self, script):
        store = self.s.empty()
        per_addr: dict = {}
        for addr, d in script:
            store = self.s.bind(store, addr, d)
            per_addr[addr] = per_addr.get(addr, 0) + 1
        for addr, n in per_addr.items():
            expected = AbsNat.ONE if n == 1 else AbsNat.MANY
            assert self.s.count(store, addr) is expected

    @given(bind_scripts)
    def test_value_sets_agree_with_basic_store(self, script):
        basic = BasicStore()
        counting = CountingStore()
        bs, cs = basic.empty(), counting.empty()
        for addr, d in script:
            bs = basic.bind(bs, addr, d)
            cs = counting.bind(cs, addr, d)
        for addr, _ in script:
            assert basic.fetch(bs, addr) == counting.fetch(cs, addr)
