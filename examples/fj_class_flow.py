"""Featherweight Java: type checking, execution and class-flow analysis.

The same monadic components that analyze the lambda calculi drive a
class-flow (CFA) analysis for FJ: which classes reach which variables,
how dynamic dispatch resolves, and which casts can fail.

Run with::

    python examples/fj_class_flow.py
"""

from repro.analysis.report import fmt_table
from repro.fj import evaluate_fj, parse_program, typecheck_program
from repro.fj.analysis import analyse_fj_kcfa, analyse_fj_zerocfa
from repro.fj.class_table import ClassTable

SOURCE = """
class Animal extends Object {
  Object speak() { return new Silence(); }
}
class Silence extends Object { }
class Bark extends Object { }
class Meow extends Object { }
class Dog extends Animal {
  Object speak() { return new Bark(); }
}
class Cat extends Animal {
  Object speak() { return new Meow(); }
}
class Kennel extends Object {
  Object poke(Animal a) { return a.speak(); }
}
class Pair extends Object {
  Object fst;
  Object snd;
}
new Pair(new Kennel().poke(new Dog()), new Kennel().poke(new Cat())).fst
"""


def main() -> None:
    program = parse_program(SOURCE)

    check = typecheck_program(program)
    print(f"typechecked: main expression has type {check.main_type}")
    for warning in check.warnings:
        print(f"  warning: {warning}")
    print()

    value = evaluate_fj(program)
    print(f"concrete run returns an instance of: {value.cls}")
    print()

    mono = analyse_fj_zerocfa(program)
    poly = analyse_fj_kcfa(program, 1)

    rows = []
    keys = sorted(set(mono.class_flows()) | set(poly.class_flows()))
    for key in keys:
        c0 = ",".join(sorted(mono.class_flows().get(key, ())))
        c1 = ",".join(sorted(poly.class_flows().get(key, ())))
        rows.append((key, c0, c1))
    print(fmt_table(["variable/field", "classes (0CFA)", "classes (1CFA)"], rows))
    print()
    print(f"possible results 0CFA: {sorted(mono.final_classes())}")
    print(f"possible results 1CFA: {sorted(poly.final_classes())}")
    print()

    table = ClassTable.of(program)
    failures = poly.possible_cast_failures(table)
    if failures:
        print(f"casts that may fail: {failures}")
    else:
        print("all casts proved safe (there are none here).")
    print()
    print(
        "0CFA merges the two poke() calls, so both speak() bodies appear\n"
        "reachable from either; 1CFA resolves each dispatch exactly."
    )


if __name__ == "__main__":
    main()
