"""The polyvariance zoo: every ``Addressable`` policy on one program (§6.1).

The paper's point in §3.4/§6.1: the *nature of addresses* determines
polyvariance and context-sensitivity, and abstracting over it covers
0CFA, k-CFA, Lakhotia-style l-contexts and bounded-natural contexts
with one interface.  This script sweeps all of them over an id-chain
and reports per-address precision.

Run with::

    python examples/polyvariance_zoo.py
"""

from repro.analysis.report import fmt_table
from repro.core.addresses import BoundedNat, KCFA, LContext, ZeroCFA
from repro.cps.analysis import analyse
from repro.corpus.cps_programs import id_chain

POLICIES = [
    ("0CFA (Addr = Var)", ZeroCFA()),
    ("1CFA (last call site)", KCFA(1)),
    ("2CFA (last two call sites)", KCFA(2)),
    ("l-contexts, l=2 (unique sites)", LContext(2)),
    ("bounded naturals, N=4", BoundedNat(4)),
    ("bounded naturals, N=64", BoundedNat(64)),
]


def main() -> None:
    program = id_chain(5)
    print("workload: one identity function applied to 5 distinct lambdas\n")

    rows = []
    for label, policy in POLICIES:
        result = analyse(policy, shared=True).run(program)
        per_addr = result.flows_per_address()
        widest = max(len(lams) for lams in per_addr.values())
        rows.append((label, result.num_states(), len(per_addr), widest))

    print(
        fmt_table(
            ["policy", "states", "addresses", "max values/address"], rows
        )
    )
    print()
    print(
        "0CFA funnels all five arguments through one address (width 5).\n"
        "Context-bearing policies split that address; N=4 saturates before\n"
        "the run ends and stays imprecise -- the paper's 'sufficiently big\n"
        "N' caveat -- while N=64 is exact."
    )


if __name__ == "__main__":
    main()
