"""The sharded parallel worklist over the versioned store.

One execution mode, selected by ``AnalysisConfig(parallelism="sharded",
shards=N)``: each round of the dependency-tracked worklist partitions
the pending configurations into disjoint slices, evaluates them
concurrently against private :class:`~repro.core.store.ShardOverlay`
write overlays, and barrier-merges the overlays through the versioned
store's grow-only ``bind`` -- the changelog then drives cross-shard
retriggering through the dependency map, exactly as in the sequential
O(delta) engine.  The fixed point is bit-identical to the sequential
engine's: chaotic iteration of a monotone functional is
order-insensitive, and every join in the domain (frozensets of
configurations, per-address value sets) is commutative and associative.
"""

from repro.parallel.worklist import sharded_explore

__all__ = ["sharded_explore"]
