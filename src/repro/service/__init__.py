"""``repro.service``: the batch/caching layer above ``assemble()``.

Every engine below this package answers one ``(program, config)`` query
per process and throws the fixed point away.  The service layer is the
first consumer of the identities the lower layers already maintain --
hash-consed terms give every program a content address, the versioned
store gives every run a change delta -- and turns them into throughput:

* :mod:`repro.service.cache` -- a content-addressed on-disk fixpoint
  cache (structural program digest x ``AnalysisConfig.cache_key()``),
  with rehydration so loaded terms are pool-canonical again;
* :mod:`repro.service.batch` -- ``run_batch``: fan a grid of
  ``(program, config)`` jobs across a spawn-safe ``multiprocessing``
  pool, consulting the cache before dispatch and emitting a
  machine-readable report (the CLI's ``repro batch``);
* :mod:`repro.service.incremental` -- warm-start re-analysis: seed the
  worklist engines with a cached fixed point so re-analysing a lightly
  edited program costs O(edit), not O(program);
* :mod:`repro.service.fuzz` -- ``run_fuzz``: differential soundness
  testing of generated ``imp`` programs (abstract covers concrete)
  across a preset matrix, with shrinking and a deterministic report
  (the CLI's ``repro fuzz`` and the nightly CI lane).
"""

from repro.service.batch import BatchJob, BatchReport, run_batch
from repro.service.cache import FixpointCache, cache_key, program_digest
from repro.service.fuzz import FUZZ_PRESETS, check_program, render_fuzz_report, run_fuzz
from repro.service.incremental import reanalyse, warmable

__all__ = [
    "BatchJob",
    "BatchReport",
    "FUZZ_PRESETS",
    "FixpointCache",
    "cache_key",
    "check_program",
    "program_digest",
    "reanalyse",
    "render_fuzz_report",
    "run_batch",
    "run_fuzz",
    "warmable",
]
