"""Persistent (immutable, hashable) collections.

The abstract machines in this package manipulate environments
(``Var -> Addr``) and stores (``Addr -> P(Val)``) as *values*: two states
are the same state exactly when their components are structurally equal,
and states are collected into powerset lattices (``frozenset``), so every
component must be hashable.

:class:`PMap` is a thin persistent-map layer over ``dict`` with a cached
hash.  Updates copy the underlying dict; for the store sizes produced by
static analysis of realistic programs this is entirely adequate and keeps
the implementation obvious (per the house style: explicit beats clever).

``pset`` is an alias for ``frozenset`` kept for symmetry with the paper's
``P`` (powerset) notation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

pset = frozenset

#: Sentinel distinguishing "key absent" from "key bound to None".
_ABSENT = object()


class PMap(Mapping[K, V]):
    """An immutable, hashable mapping with persistent-update operations.

    All "mutators" (:meth:`set`, :meth:`remove`, :meth:`update`, ...)
    return a new :class:`PMap`; the receiver is never changed.  Hashing
    and equality are structural (order-independent), so two maps built by
    different update sequences compare equal when they hold the same
    entries.

    >>> m = pmap({"x": 1}).set("y", 2)
    >>> m["y"], len(m), "x" in m
    (2, 2, True)
    >>> m.remove("x") == pmap({"y": 2})
    True
    """

    __slots__ = ("_d", "_hash")

    def __init__(self, entries: Mapping[K, V] | Iterable[Tuple[K, V]] = ()):
        self._d: dict[K, V] = dict(entries)
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, key: K) -> V:
        return self._d[key]

    def __iter__(self) -> Iterator[K]:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __contains__(self, key: object) -> bool:
        return key in self._d

    # -- value semantics ---------------------------------------------------

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._d.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PMap):
            return self._d == other._d
        if isinstance(other, Mapping):
            return self._d == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        items = ", ".join(f"{k!r}: {v!r}" for k, v in sorted_items(self._d))
        return "pmap({" + items + "})"

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the entries only, never the cached hash.

        Python randomizes string hashes per process, so a memoized hash
        travelling inside a pickle would be silently stale in the
        unpickling process -- equal maps would land in different dict
        buckets.  Dropping it here makes ``__hash__`` recompute on first
        use, which the cross-process round-trip tests pin down.
        """
        return self._d

    def __setstate__(self, state: dict) -> None:
        self._d = state
        self._hash = None

    # -- persistent updates -------------------------------------------------

    def set(self, key: K, value: V) -> "PMap[K, V]":
        """Return a copy with ``key`` bound to ``value``.

        When ``key`` is already bound to an equal value the receiver is
        returned unchanged -- no copy, and callers keep the object-identity
        did-anything-change test the fixed-point engines rely on.
        """
        existing = self._d.get(key, _ABSENT)
        if existing is value or existing == value:
            return self
        d = dict(self._d)
        d[key] = value
        return PMap(d)

    def remove(self, key: K) -> "PMap[K, V]":
        """Return a copy without ``key``.  Missing keys are tolerated.

        Removing an absent key returns the receiver unchanged (no copy),
        matching the :meth:`set` fast path.
        """
        if key not in self._d:
            return self
        d = dict(self._d)
        del d[key]
        return PMap(d)

    def update(self, entries: Mapping[K, V] | Iterable[Tuple[K, V]]) -> "PMap[K, V]":
        """Return a copy with every pair in ``entries`` bound (the paper's ``//``).

        When every entry is already bound to an equal value the receiver
        is returned unchanged -- no copy, no hash invalidation -- so
        callers keep the object-identity did-anything-change test (the
        same fast path :meth:`set` has).  The copy is deferred until the
        first entry that actually changes something.
        """
        pairs = entries.items() if isinstance(entries, Mapping) else entries
        d: dict[K, V] | None = None
        for key, value in pairs:
            existing = (self._d if d is None else d).get(key, _ABSENT)
            if existing is value or existing == value:
                continue
            if d is None:
                d = dict(self._d)
            d[key] = value
        if d is None:
            return self
        return PMap(d)

    def update_with(
        self, combine: Callable[[V, V], V], entries: Mapping[K, V] | Iterable[Tuple[K, V]]
    ) -> "PMap[K, V]":
        """Return a copy where colliding keys are resolved by ``combine(old, new)``.

        This is the workhorse behind store join: ``store.update_with(join, ...)``.
        """
        d = dict(self._d)
        pairs = entries.items() if isinstance(entries, Mapping) else entries
        for key, value in pairs:
            if key in d:
                d[key] = combine(d[key], value)
            else:
                d[key] = value
        return PMap(d)

    def restrict(self, keep: Callable[[K], bool]) -> "PMap[K, V]":
        """Return the map restricted to keys satisfying ``keep`` (the paper's ``f|X``)."""
        return PMap({k: v for k, v in self._d.items() if keep(k)})

    def map_values(self, f: Callable[[V], Any]) -> "PMap[K, Any]":
        """Return a copy with ``f`` applied to every value."""
        return PMap({k: f(v) for k, v in self._d.items()})

    # -- conveniences -------------------------------------------------------

    def get(self, key: K, default: V | None = None) -> V | None:  # type: ignore[override]
        return self._d.get(key, default)

    def items_sorted(self) -> list[Tuple[K, V]]:
        """Items in a deterministic order (useful for reporting)."""
        return sorted_items(self._d)

    def to_dict(self) -> dict[K, V]:
        """A plain mutable copy of the entries."""
        return dict(self._d)


def pmap(entries: Mapping[K, V] | Iterable[Tuple[K, V]] = ()) -> PMap[K, V]:
    """Build a :class:`PMap`; the conventional constructor used in this code base."""
    return PMap(entries)


EMPTY_PMAP: PMap[Any, Any] = PMap()


def sorted_items(d: Mapping[K, V]) -> list[Tuple[K, V]]:
    """Items sorted by repr of the key: deterministic even for mixed key types."""
    return sorted(d.items(), key=lambda kv: repr(kv[0]))
