"""The ``schedule`` axis: worklist drain orders, dedup, and equivalence.

What this file pins, layer by layer:

* **Worklist units** -- :class:`FifoWorklist` preserves the historical
  insertion order while counting suppressed enqueues;
  :class:`PriorityWorklist` drains in ``(wave, rank, sequence)`` order:
  rank-ascending within a wave, retriggers deferred one wave, ties by
  insertion.  ``deal_slices`` deals round-robin under ``fifo`` and
  rank-contiguous chunks under ``priority``, never losing an item.
* **No starvation / termination** -- on randomly generated monotone
  fake-domain systems, both schedules terminate, evaluate every
  discovered configuration at least once, and land on the reference
  least fixed point; a retrigger-storm system cannot keep deep pending
  work out of the drain forever.
* **Corpus scheduler-equivalence** -- for every engine preset and
  language, the ``priority`` fixed point is bit-identical to the
  ``fifo`` fixed point across the full corpus (chaotic iteration is
  drain-order-insensitive); likewise for the blind worklist engine,
  persistent stores, GC, counting, the sharded engine, and warm starts.
* **Configuration surface** -- unknown schedules and worklist-free
  engines are rejected, ``cache_key`` ignores the schedule axis (same
  fixed point, same content address), warm donors are shared across
  schedules, and the trace hook is sequential-engine-only.
* **The blind-engine win** -- the regression this PR exists for: on
  ``id_chain`` the priority schedule needs a small multiple fewer
  evaluations than FIFO (ratios, not exact counts: FIFO's drain order
  varies with ``PYTHONHASHSEED``), and the dedup counter is live.
"""

import random

import pytest

from repro.config import LANGUAGES, PRESETS, AnalysisConfig, assemble, preset_config
from repro.core.schedule import (
    SCHEDULES,
    FifoWorklist,
    PriorityWorklist,
    deal_slices,
    make_worklist,
)
from repro.corpus import corpus_program, corpus_programs
from repro.corpus.cps_programs import id_chain, id_chain_edited
from repro.service.cache import FixpointCache
from repro.service.incremental import reanalyse, warmable

# ---------------------------------------------------------------------------
# Worklist units
# ---------------------------------------------------------------------------


class TestFifoWorklist:
    def test_pops_in_insertion_order(self):
        worklist = FifoWorklist(["a", "b"])
        worklist.discovered("c", parent="a")
        assert [worklist.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_retrigger_appends_at_the_tail(self):
        worklist = FifoWorklist(["a", "b"])
        assert worklist.pop() == "a"
        assert worklist.retrigger("a") is True
        assert [worklist.pop(), worklist.pop()] == ["b", "a"]

    def test_queued_retrigger_is_suppressed_and_counted(self):
        worklist = FifoWorklist(["a"])
        assert worklist.retrigger("a") is False
        assert worklist.retrigger("a") is False
        assert worklist.dedup_hits == 2
        assert worklist.pop() == "a"
        assert not worklist

    def test_rank_bookkeeping_matches_priority(self):
        worklist = FifoWorklist(["seed"])
        worklist.discovered("child", parent="seed")
        worklist.discovered("grandchild", parent="child")
        assert worklist.ranks == {"seed": 0, "child": 1, "grandchild": 2}
        assert worklist.max_rank == 2


class TestPriorityWorklist:
    def test_drains_rank_ascending_with_insertion_ties(self):
        worklist = PriorityWorklist(["root"])
        worklist.discovered("deep", parent="root")
        worklist.discovered("deeper", parent="deep")
        worklist.discovered("also-deep", parent="root")
        drained = [worklist.pop() for _ in range(4)]
        # rank 0, then the two rank-1 entries in insertion order, then rank 2
        assert drained == ["root", "deep", "also-deep", "deeper"]

    def test_retrigger_defers_to_the_next_wave(self):
        """A retriggered rank-0 reader must NOT preempt pending deeper
        work from the current wave -- the wave term is what keeps FIFO's
        batching (a pure rank heap re-runs the reader first, which
        measured strictly worse than FIFO)."""
        worklist = PriorityWorklist(["root"])
        worklist.discovered("child", parent="root")
        assert worklist.pop() == "root"
        assert worklist.retrigger("root") is True
        assert worklist.pop() == "child"  # wave 0 drains first
        assert worklist.pop() == "root"  # the deferred wave-1 entry
        assert not worklist

    def test_waves_drain_rank_first_after_advancing(self):
        worklist = PriorityWorklist(["a"])
        worklist.discovered("b", parent="a")
        assert [worklist.pop(), worklist.pop()] == ["a", "b"]  # wave 0 drains
        # defer both into wave 1, shallow one last
        assert worklist.retrigger("b") is True
        assert worklist.retrigger("a") is True
        # wave 1 drains rank-ascending regardless of retrigger order
        assert [worklist.pop(), worklist.pop()] == ["a", "b"]

    def test_queued_retrigger_is_suppressed_and_counted(self):
        worklist = PriorityWorklist(["a", "b"])
        assert worklist.retrigger("b") is False
        assert worklist.dedup_hits == 1
        assert [worklist.pop(), worklist.pop()] == ["a", "b"]
        assert len(worklist) == 0

    def test_configs_never_need_to_be_comparable(self):
        """The sequence number breaks every heap tie, so unorderable
        configurations (dicts aren't, frozensets aren't totally) work."""
        a, b = frozenset({1}), frozenset({2})
        worklist = PriorityWorklist([a, b])
        worklist.discovered((a, b), parent=a)
        assert [worklist.pop() for _ in range(3)] == [a, b, (a, b)]


class TestMakeWorklist:
    def test_factory_builds_both_schedules(self):
        assert isinstance(make_worklist("fifo", ["x"]), FifoWorklist)
        assert isinstance(make_worklist("priority", ["x"]), PriorityWorklist)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            make_worklist("lifo")

    def test_schedules_tuple_is_the_registry(self):
        assert SCHEDULES == ("fifo", "priority")


class TestDealSlices:
    def test_fifo_deals_round_robin(self):
        batch = list("abcdef")
        assert deal_slices(batch, 2, "fifo", {}) == [list("ace"), list("bdf")]

    def test_priority_deals_rank_contiguous_chunks(self):
        batch = list("abcd")
        ranks = {"a": 3, "b": 0, "c": 2, "d": 0}
        # sorted by (rank, arrival): b d c a, cut into contiguous halves
        assert deal_slices(batch, 2, "priority", ranks) == [["b", "d"], ["c", "a"]]

    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("shards", (1, 2, 3, 5))
    def test_no_item_lost_and_no_empty_slices(self, schedule, shards):
        rng = random.Random(7)
        batch = [f"c{i}" for i in range(11)]
        ranks = {config: rng.randint(0, 4) for config in batch}
        slices = deal_slices(batch, shards, schedule, ranks)
        assert all(chunk for chunk in slices)
        assert sorted(c for chunk in slices for c in chunk) == sorted(batch)

    def test_small_round_drops_empty_slices(self):
        assert deal_slices(["only"], 4, "fifo", {}) == [["only"]]
        assert deal_slices(["only"], 4, "priority", {}) == [["only"]]


# ---------------------------------------------------------------------------
# No starvation / termination on fake monotone systems
# ---------------------------------------------------------------------------


def _random_system(seed, configs=12, addresses=8):
    """A random monotone equation system over frozenset-valued addresses
    (the ``tests/test_parallel.py`` fake domain): each configuration
    reads a few addresses and writes the union of what it read plus its
    own token, so the least fixed point is unique and every chaotic
    iteration must land on it exactly."""
    rng = random.Random(seed)
    addrs = [f"a{i}" for i in range(addresses)]
    table = {}
    for c in range(configs):
        reads = rng.sample(addrs, rng.randint(1, 3))
        writes = rng.sample(addrs, rng.randint(1, 2))
        successors = rng.sample(range(configs), rng.randint(0, 3))
        table[c] = (tuple(reads), tuple(writes), tuple(successors))
    return table


def _reference_fixpoint(table, seeds):
    """An independent whole-system Kleene iteration (no worklist code)."""
    store = {}
    seen = set(seeds)
    while True:
        changed = False
        for config in sorted(seen):
            reads, writes, successors = table[config]
            gathered = frozenset({("token", config)})
            for addr in reads:
                gathered |= store.get(addr, frozenset())
            for addr in writes:
                joined = store.get(addr, frozenset()) | gathered
                if joined != store.get(addr, frozenset()):
                    store[addr] = joined
                    changed = True
            for successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    changed = True
        if not changed:
            return frozenset(seen), store


def _drain_system(table, seeds, schedule, fuel=20_000):
    """Drain a fake system through a scheduled worklist, exactly the way
    the depgraph engine does: evaluate, join writes, retrigger readers
    of grown cells, discover successors.  ``fuel`` bounds the drain so a
    starving or diverging scheduler fails the test instead of hanging."""
    store = {}
    readers = {}
    seen = set(seeds)
    worklist = make_worklist(schedule, sorted(seen))
    popped = []
    while worklist:
        assert len(popped) < fuel, f"{schedule} drain did not converge"
        config = worklist.pop()
        popped.append(config)
        reads, writes, successors = table[config]
        gathered = frozenset({("token", config)})
        for addr in reads:
            readers.setdefault(addr, set()).add(config)
            gathered |= store.get(addr, frozenset())
        for addr in writes:
            joined = store.get(addr, frozenset()) | gathered
            if joined != store.get(addr, frozenset()):
                store[addr] = joined
                for reader in sorted(readers.get(addr, ())):
                    worklist.retrigger(reader)
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                worklist.discovered(successor, config)
    return frozenset(seen), store, popped, worklist


class TestFakeDomainProperties:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_reaches_the_unique_lfp(self, seed, schedule):
        table = _random_system(seed)
        ref_configs, ref_store = _reference_fixpoint(table, seeds={0, 1})
        configs, store, popped, worklist = _drain_system(table, {0, 1}, schedule)
        assert configs == ref_configs
        assert store == ref_store
        # no starvation: everything discovered was evaluated at least once
        assert set(popped) == set(ref_configs)
        assert len(worklist) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_both_schedules_land_on_the_same_fixpoint(self, seed):
        table = _random_system(seed, configs=16, addresses=10)
        fifo_configs, fifo_store, _, _ = _drain_system(table, {0}, "fifo")
        prio_configs, prio_store, _, prio_worklist = _drain_system(
            table, {0}, "priority"
        )
        assert prio_configs == fifo_configs
        assert prio_store == fifo_store
        assert prio_worklist.max_rank <= len(table)

    def test_retrigger_storm_cannot_starve_pending_work(self):
        """A chain whose head is retriggered by every deeper write: the
        adversarial shape for a rank-ordered queue.  Keys are fixed at
        insertion and the wave counter only advances, so the deep tail
        still drains -- every link evaluates, the drain terminates."""
        n = 40
        table = {
            i: (
                (f"a{i}",),  # link i reads its own cell
                (f"a{max(i - 1, 0)}", "a0"),  # and bumps upstream + the head
                (i + 1,) if i + 1 < n else (),
            )
            for i in range(n)
        }
        ref_configs, ref_store = _reference_fixpoint(table, seeds={0})
        for schedule in SCHEDULES:
            configs, store, popped, _ = _drain_system(table, {0}, schedule)
            assert configs == ref_configs, schedule
            assert store == ref_store, schedule
            assert set(popped) == set(range(n)), schedule


# ---------------------------------------------------------------------------
# Corpus scheduler-equivalence: priority == fifo, preset by preset
# ---------------------------------------------------------------------------

#: Every preset with a worklist to order (the kleene presets have none,
#: and the per-state/concrete presets have no engine at all).
SCHEDULED_PRESETS = sorted(
    name
    for name, preset in PRESETS.items()
    if preset.config.engine in ("worklist", "depgraph")
)

#: Cells whose engine run is prohibitively slow (same exclusion the
#: preset matrix makes): Church arithmetic under k=2.
EXPENSIVE = {("2cfa", "lam"): {"church-two-two"}}

#: fifo reference fixed points, shared across presets that differ only
#: in schedule/label (1cfa-priority's fifo reference == 1cfa-fused's).
_fifo_cache: dict = {}


def _fixpoint(config, program):
    analysis = assemble(config, program=program)
    result = analysis.run(program, worklist=not config.shared)
    return result.fp, dict(analysis.last_stats)


def _fifo_reference(config, lang, name, program):
    key = (
        lang,
        name,
        config.addressing,
        config.k,
        config.engine,
        config.store_impl,
        config.transition,
        config.parallelism,
        config.shards,
        config.gc,
        config.counting,
    )
    if key not in _fifo_cache:
        _fifo_cache[key] = _fixpoint(config.replace(schedule="fifo"), program)
    return _fifo_cache[key]


class TestCorpusEquivalence:
    @pytest.mark.parametrize("lang", LANGUAGES)
    @pytest.mark.parametrize("preset_name", SCHEDULED_PRESETS)
    def test_priority_fixpoint_is_bit_identical_to_fifo(self, preset_name, lang):
        config = preset_config(preset_name, lang)
        skip = EXPENSIVE.get((preset_name, lang), set())
        for name in sorted(corpus_programs(lang)):
            if name in skip:
                continue
            program = corpus_program(lang, name)
            fifo_fp, _ = _fifo_reference(config, lang, name, program)
            priority_fp, stats = _fixpoint(
                config.replace(schedule="priority").validated(), program
            )
            assert priority_fp == fifo_fp, f"{preset_name} on {lang}/{name}"
            assert stats["schedule"] == "priority", f"{preset_name} on {lang}/{name}"
            assert stats["dedup_hits"] >= 0

    @pytest.mark.parametrize("lang", LANGUAGES)
    def test_sharded_priority_preset_matches_sequential(self, lang):
        """The sharded preset pair: rank-dealt slices reach the same
        fixed point as the sequential fused engine, stats included."""
        name = {"cps": "mj09", "lam": "church-two-two", "fj": "visitor"}[lang]
        program = corpus_program(lang, name)
        sequential, _ = _fixpoint(preset_config("1cfa-fused", lang), program)
        sharded, stats = _fixpoint(preset_config("1cfa-sharded-priority", lang), program)
        assert sharded == sequential
        assert stats["shards"] == 4 and stats["schedule"] == "priority"
        assert "dedup_hits" in stats and "max_rank" in stats


class TestManualConfigEquivalence:
    """Axes no preset covers: the blind engine and persistent stores."""

    PROGRAMS = (("cps", "mj09"), ("lam", "church-two-two"), ("fj", "visitor"))

    @pytest.mark.parametrize("lang,name", PROGRAMS)
    @pytest.mark.parametrize("store_impl", ("persistent", "versioned"))
    def test_blind_worklist_engine(self, lang, name, store_impl):
        program = corpus_program(lang, name)
        config = AnalysisConfig(
            k=1, engine="worklist", store_impl=store_impl, language=lang
        ).validated()
        fifo_fp, fifo_stats = _fixpoint(config, program)
        priority_fp, stats = _fixpoint(
            config.replace(schedule="priority").validated(), program
        )
        assert priority_fp == fifo_fp
        # the blind engine retriggers every reader of the whole store,
        # so the membership set must be doing real suppression work
        assert fifo_stats["dedup_hits"] > 0
        assert stats["evaluations"] <= fifo_stats["evaluations"]

    @pytest.mark.parametrize("gc", (False, True))
    @pytest.mark.parametrize("counting", (False, True))
    def test_gc_and_counting_over_persistent_store(self, gc, counting):
        program = corpus_program("lam", "church-two-two")
        config = AnalysisConfig(
            k=1,
            engine="depgraph",
            store_impl="persistent",
            gc=gc,
            counting=counting,
            language="lam",
        ).validated()
        fifo_fp, _ = _fixpoint(config, program)
        priority_fp, _ = _fixpoint(
            config.replace(schedule="priority").validated(), program
        )
        assert priority_fp == fifo_fp


class TestWarmStartEquivalence:
    def test_priority_warm_start_matches_cold_and_fifo(self, tmp_path):
        """An edit replayed through the priority worklist: same fixed
        point as a cold priority run and as any fifo run, at a fraction
        of the evaluations (clean records replay instead of stepping)."""
        config = preset_config("1cfa-priority", "cps").validated()
        cache = FixpointCache(root=tmp_path / "cache")
        first = reanalyse(config, id_chain(40), cache)
        assert first.mode == "cold"
        second = reanalyse(config, id_chain_edited(40), cache)
        assert second.mode == "warm"
        cold = assemble(config).run(id_chain_edited(40))
        assert second.fp == cold.fp
        fifo = assemble(config.replace(schedule="fifo")).run(id_chain_edited(40))
        assert second.fp == fifo.fp
        # the warm run pays for the edit, not the program
        assert second.stats["evaluations"] < first.stats["evaluations"]

    def test_warm_donors_are_shared_across_schedules(self, tmp_path):
        """A fifo run's cache entry warm-starts a priority run of the
        edited program (and the digest of the unedited program is a
        plain cache hit): the cache key ignores the schedule axis."""
        fifo_config = preset_config("1cfa-fused", "cps").validated()
        priority_config = fifo_config.replace(schedule="priority").validated()
        cache = FixpointCache(root=tmp_path / "cache")
        reanalyse(fifo_config, id_chain(40), cache)
        hit = reanalyse(priority_config, id_chain(40), cache)
        assert hit.mode == "cache-hit"
        warm = reanalyse(priority_config, id_chain_edited(40), cache)
        assert warm.mode == "warm"
        assert warm.fp == assemble(fifo_config).run(id_chain_edited(40)).fp


# ---------------------------------------------------------------------------
# Configuration surface
# ---------------------------------------------------------------------------


class TestScheduleConfig:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            AnalysisConfig(engine="depgraph", schedule="lifo").validated()

    def test_priority_needs_a_worklist_engine(self):
        with pytest.raises(ValueError, match="worklist"):
            AnalysisConfig(engine="kleene", schedule="priority").validated()
        with pytest.raises(ValueError, match="worklist"):
            AnalysisConfig(k=1, schedule="priority").validated()  # per-state

    def test_priority_presets_registered_and_valid(self):
        for name in ("1cfa-priority", "1cfa-sharded-priority"):
            config = PRESETS[name].config
            assert config.schedule == "priority"
            assert config.validated() == config

    def test_cache_key_ignores_the_schedule_axis(self):
        assert (
            preset_config("1cfa-priority", "lam").cache_key()
            == preset_config("1cfa-fused", "lam").cache_key()
        )
        assert (
            preset_config("1cfa-sharded-priority", "lam").cache_key()
            == preset_config("1cfa-sharded", "lam").cache_key()
        )

    def test_describe_names_the_schedule(self):
        assert "priority" in preset_config("1cfa-priority").describe()
        assert "priority" not in preset_config("1cfa-fused").describe()

    def test_warmable_under_priority(self):
        assert warmable(preset_config("1cfa-priority", "cps"))

    def test_stats_report_the_schedule(self):
        program = corpus_program("lam", "eta")
        for preset_name, expected in (("1cfa-fused", "fifo"), ("1cfa-priority", "priority")):
            _, stats = _fixpoint(preset_config(preset_name, "lam"), program)
            assert stats["schedule"] == expected


class TestScheduleTrace:
    def test_trace_records_every_evaluation_with_its_rank(self):
        program = corpus_program("lam", "eta")
        for preset_name in ("1cfa-fused", "1cfa-priority"):
            config = preset_config(preset_name, "lam")
            analysis = assemble(config, program=program)
            trace = []
            analysis.run(program, trace=trace)
            stats = analysis.last_stats
            assert len(trace) == stats["evaluations"]
            ranks = [rank for rank, _config in trace]
            assert ranks[0] == 0 and max(ranks) == stats["max_rank"]

    def test_trace_is_sequential_only(self):
        program = corpus_program("lam", "eta")
        sharded = assemble(preset_config("1cfa-sharded", "lam"), program=program)
        with pytest.raises(TypeError, match="sequential"):
            sharded.run(program, trace=[])
        per_state = assemble(preset_config("1cfa-per-state", "lam"), program=program)
        with pytest.raises(ValueError, match="engine"):
            per_state.run(program, trace=[])


# ---------------------------------------------------------------------------
# The blind-engine win (the satellite-2 regression pin)
# ---------------------------------------------------------------------------


class TestBlindChainRegression:
    def test_id_chain_dedup_and_eval_drop(self):
        """``id_chain(30)`` on the dependency-blind engine: FIFO re-runs
        each link once per downstream growth wave (quadratic), priority
        re-runs it twice (linear).  Bounds are ratios with margin --
        FIFO's exact counts move with ``PYTHONHASHSEED``; the measured
        ratio is ~8x and the gate asks for 3x."""
        program = id_chain(30)
        config = AnalysisConfig(
            k=1,
            engine="worklist",
            store_impl="versioned",
            transition="fused",
            language="cps",
        ).validated()
        fifo_fp, fifo_stats = _fixpoint(config, program)
        priority_fp, priority_stats = _fixpoint(
            config.replace(schedule="priority").validated(), program
        )
        assert priority_fp == fifo_fp
        assert priority_stats["evaluations"] * 3 <= fifo_stats["evaluations"]
        assert fifo_stats["dedup_hits"] > 0
        assert priority_stats["max_rank"] >= 30
