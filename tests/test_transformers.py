"""The remaining monad transformers: ReaderT, WriterT, MaybeT.

Laws are checked with the same run-and-compare scheme as the base
monads, over several inner monads to exercise the transformer-ness.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.monads import (
    Identity,
    Just,
    ListMonad,
    MaybeT,
    Monoid,
    NOTHING,
    ReaderT,
    State,
    WriterT,
)

ints = st.integers(-10, 10)

INNERS = [Identity(), ListMonad()]


def run_value(monad, mv):
    if isinstance(monad, ReaderT):
        return _run_inner(monad.inner, monad.run(mv, 7))
    if isinstance(monad, (WriterT, MaybeT)):
        return _run_inner(monad.inner, mv)
    raise TypeError(monad)


def _run_inner(inner, mv):
    if isinstance(inner, State):
        return mv(3)
    return mv


def transformer_stacks():
    out = []
    for inner in INNERS:
        out.append(ReaderT(inner))
        out.append(WriterT(inner))
        out.append(MaybeT(inner))
    out.append(MaybeT(State()))
    return out


@pytest.mark.parametrize(
    "monad", transformer_stacks(), ids=lambda m: f"{type(m).__name__}<{type(m.inner).__name__}>"
)
def test_transformer_monad_laws(monad):
    def f(x):
        return monad.unit(x + 1)

    def g(x):
        return monad.unit(x * 2)

    @given(ints)
    def laws(a):
        assert run_value(monad, monad.bind(monad.unit(a), f)) == run_value(monad, f(a))
        m = f(a)
        assert run_value(monad, monad.bind(m, monad.unit)) == run_value(monad, m)
        lhs = monad.bind(monad.bind(m, f), g)
        rhs = monad.bind(m, lambda x: monad.bind(f(x), g))
        assert run_value(monad, lhs) == run_value(monad, rhs)

    laws()


class TestReaderT:
    def test_ask_reaches_environment(self):
        rt = ReaderT(ListMonad())
        mv = rt.bind(rt.ask(), lambda env: rt.unit(env + 1))
        assert rt.run(mv, 41) == [42]

    def test_local(self):
        rt = ReaderT(Identity())
        assert rt.run(rt.local(lambda e: e * 2, rt.ask()), 21) == 42

    def test_lift_ignores_environment(self):
        rt = ReaderT(ListMonad())
        assert rt.run(rt.lift([1, 2]), "whatever") == [1, 2]

    def test_asks(self):
        rt = ReaderT(Identity())
        assert rt.run(rt.asks(len), "abc") == 3

    def test_nondeterminism_distributes(self):
        rt = ReaderT(ListMonad())
        mv = rt.bind(rt.lift([1, 2]), lambda x: rt.bind(rt.ask(), lambda e: rt.unit(x + e)))
        assert rt.run(mv, 10) == [11, 12]


class TestWriterT:
    def test_logs_accumulate_in_order(self):
        wt = WriterT(Identity())
        mv = wt.bind(wt.tell(("a",)), lambda _1: wt.bind(wt.tell(("b",)), lambda _2: wt.unit(9)))
        assert wt.run(mv) == (9, ("a", "b"))

    def test_over_list_logs_per_branch(self):
        wt = WriterT(ListMonad())
        mv = wt.bind(
            wt.lift([1, 2]),
            lambda x: wt.bind(wt.tell((x,)), lambda _: wt.unit(x * 10)),
        )
        assert wt.run(mv) == [(10, (1,)), (20, (2,))]

    def test_custom_monoid(self):
        wt = WriterT(Identity(), Monoid(mempty=0, mappend=lambda a, b: a + b))
        mv = wt.bind(wt.tell(3), lambda _1: wt.bind(wt.tell(4), lambda _2: wt.unit("x")))
        assert wt.run(mv) == ("x", 7)

    def test_lift_has_empty_log(self):
        wt = WriterT(ListMonad())
        assert wt.run(wt.lift([5])) == [(5, ())]


class TestMaybeT:
    def test_failure_short_circuits(self):
        mt = MaybeT(Identity())
        mv = mt.bind(mt.mzero(), lambda _x: mt.unit(1))
        assert mt.run(mv) is NOTHING

    def test_success_passes_through(self):
        mt = MaybeT(Identity())
        assert mt.run(mt.bind(mt.unit(1), lambda x: mt.unit(x + 1))) == Just(2)

    def test_mplus_recovers(self):
        mt = MaybeT(Identity())
        assert mt.run(mt.mplus(mt.mzero(), mt.unit(7))) == Just(7)
        assert mt.run(mt.mplus(mt.unit(1), mt.unit(2))) == Just(1)

    def test_over_list_prunes_per_branch(self):
        mt = MaybeT(ListMonad())
        mv = mt.bind(
            mt.lift([1, 2, 3]),
            lambda x: mt.unit(x) if x % 2 else mt.mzero(),
        )
        assert mt.run(mv) == [Just(1), NOTHING, Just(3)]

    def test_over_state_threads_state(self):
        state = State()
        mt = MaybeT(state)
        mv = mt.bind(mt.lift(state.modify(lambda s: s + 1)), lambda _x: mt.unit("ok"))
        assert state.run(mv, 0) == (Just("ok"), 1)
