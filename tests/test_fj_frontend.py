"""FJ syntax, class tables, parser."""

import pytest

from repro.fj.class_table import ClassTable, ClassTableError
from repro.fj.parser import FJParseError, parse_expr_fj, parse_program, tokenize_fj
from repro.fj.syntax import (
    Cast,
    ClassDef,
    FieldAccess,
    Invoke,
    New,
    OBJECT,
    Program,
    VarE,
    free_vars,
    program_size,
)
from repro.corpus.fj_programs import PROGRAMS, dispatch_chain


class TestTokenizer:
    def test_basic(self):
        assert tokenize_fj("new A ( ) . f") == ["new", "A", "(", ")", ".", "f"]

    def test_comments(self):
        assert tokenize_fj("x // comment\n.f") == ["x", ".", "f"]

    def test_bad_character(self):
        with pytest.raises(FJParseError):
            tokenize_fj("x + y")


class TestExprParser:
    def test_var(self):
        assert parse_expr_fj("x") == VarE("x")

    def test_field_access(self):
        assert parse_expr_fj("x.f") == FieldAccess(VarE("x"), "f")

    def test_chained_access(self):
        assert parse_expr_fj("x.f.g") == FieldAccess(FieldAccess(VarE("x"), "f"), "g")

    def test_invoke(self):
        assert parse_expr_fj("x.m(y, z)") == Invoke(VarE("x"), "m", (VarE("y"), VarE("z")))

    def test_invoke_no_args(self):
        assert parse_expr_fj("x.m()") == Invoke(VarE("x"), "m", ())

    def test_new(self):
        assert parse_expr_fj("new A(x)") == New("A", (VarE("x"),))

    def test_cast(self):
        assert parse_expr_fj("(A) x") == Cast("A", VarE("x"))

    def test_cast_of_new(self):
        assert parse_expr_fj("(A) new B()") == Cast("A", New("B", ()))

    def test_parenthesized_expr(self):
        assert parse_expr_fj("(x.f)") == FieldAccess(VarE("x"), "f")

    def test_cast_then_member(self):
        t = parse_expr_fj("((A) x.m()).f")
        assert isinstance(t, FieldAccess)
        assert isinstance(t.obj, Cast)

    def test_trailing_garbage(self):
        with pytest.raises(FJParseError):
            parse_expr_fj("x y")


class TestProgramParser:
    def test_empty_class(self):
        p = parse_program("class A extends Object { } new A()")
        assert p.classes[0] == ClassDef("A", OBJECT, (), ())
        assert p.main == New("A", ())

    def test_fields_and_methods(self):
        p = parse_program(
            """
            class Q extends Object { }
            class P extends Object {
              Object fst;
              Object snd;
              Object first() { return this.fst; }
            }
            new P(new Q(), new Q()).first()
            """
        )
        cls = p.class_named("P")
        assert cls.fields == (("Object", "fst"), ("Object", "snd"))
        assert cls.methods[0].name == "first"
        assert cls.methods[0].body == FieldAccess(VarE("this"), "fst")

    def test_field_after_method_rejected(self):
        with pytest.raises(FJParseError):
            parse_program(
                "class A extends Object { Object m() { return this; } Object f; } new A(x)"
            )

    def test_corpus_parses(self):
        for name, program in PROGRAMS.items():
            assert isinstance(program, Program), name

    def test_dispatch_chain_generator(self):
        p = dispatch_chain(3)
        assert p.class_named("P2") is not None
        assert program_size(p) > 5
        with pytest.raises(ValueError):
            dispatch_chain(0)


class TestFreeVars:
    def test_this_is_free(self):
        assert free_vars(parse_expr_fj("this.f")) == frozenset(["this"])

    def test_new_args(self):
        assert free_vars(parse_expr_fj("new A(x, y.f)")) == frozenset(["x", "y"])

    def test_cast(self):
        assert free_vars(parse_expr_fj("(A) x")) == frozenset(["x"])


class TestClassTable:
    def make_table(self):
        return ClassTable.of(PROGRAMS["pair"])

    def test_fields_inherited_order(self):
        p = parse_program(
            """
            class C extends Object { }
            class A extends Object { Object a1; }
            class B extends A { Object b1; }
            new B(new C(), new C())
            """
        )
        table = ClassTable.of(p)
        assert table.fields("B") == (("Object", "a1"), ("Object", "b1"))
        assert table.field_index("B", "a1") == 0
        assert table.field_index("B", "b1") == 1

    def test_subtyping_reflexive_transitive(self):
        p = parse_program(
            """
            class A extends Object { }
            class B extends A { }
            class C extends B { }
            new C()
            """
        )
        table = ClassTable.of(p)
        assert table.is_subtype("C", "C")
        assert table.is_subtype("C", "A")
        assert table.is_subtype("C", OBJECT)
        assert not table.is_subtype("A", "C")

    def test_mbody_walks_up(self):
        p = parse_program(
            """
            class A extends Object { Object m() { return this; } }
            class B extends A { }
            new B().m()
            """
        )
        table = ClassTable.of(p)
        mdef, owner = table.mbody("m", "B")
        assert owner == "A"
        assert mdef.name == "m"
        assert table.mbody("missing", "B") is None

    def test_mtype(self):
        table = self.make_table()
        params, ret = table.mtype("setfst", "Pair")
        assert params == ("Object",)
        assert ret == "Pair"

    def test_cycle_detected(self):
        classes = (
            ClassDef("A", "B", (), ()),
            ClassDef("B", "A", (), ()),
        )
        with pytest.raises(ClassTableError):
            ClassTable(classes)

    def test_undefined_super_detected(self):
        with pytest.raises(ClassTableError):
            ClassTable((ClassDef("A", "Ghost", (), ()),))

    def test_duplicate_class_detected(self):
        with pytest.raises(ClassTableError):
            ClassTable((ClassDef("A", OBJECT, (), ()), ClassDef("A", OBJECT, (), ())))

    def test_object_not_redefinable(self):
        with pytest.raises(ClassTableError):
            ClassTable((ClassDef(OBJECT, OBJECT, (), ()),))

    def test_subclasses_of(self):
        p = parse_program(
            """
            class A extends Object { }
            class B extends A { }
            new B()
            """
        )
        table = ClassTable.of(p)
        assert set(table.subclasses_of("A")) == {"A", "B"}
