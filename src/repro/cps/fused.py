"""The CPS transition of Figure 2, staged (see :mod:`repro.core.fused`).

:func:`build_cps_fused` partially evaluates
:func:`repro.cps.semantics.mnext` with respect to the
:class:`~repro.core.monads.StorePassing` monad and a fixed
:class:`~repro.cps.analysis.AbstractCPSInterface`: the
``fun``/``tick``/``alloc``/``arg``/``|->`` bind chain becomes one flat
function, nondeterminism becomes iteration over the fetched value sets,
and the store threads through the interface's ``store_like`` directly.
The staged function is *observationally identical* to the monadic path
-- same successors, same per-branch stores, same read/write footprint
through a :class:`~repro.core.store.RecordingStore` -- which the
corpus-wide fused-vs-generic matrices pin down.

One optimization the staging makes possible: closure creation
(``Clo(lam, rho | free(lam))``) is memoized per ``(lam, env)``.  The
generic path rebuilds the restricted environment on every evaluation of
an operand; the staged step reuses the canonical closure, which is
semantics-free because both inputs and the result are immutable values.
"""

from __future__ import annotations

from typing import Any

from repro.core.fused import (
    FusedTransition,
    branch_product,
    make_closer,
    register_fused,
    thread_bindings,
)
from repro.cps.semantics import Clo, PState, free_vars_cache
from repro.cps.syntax import Call, Lam, Ref


def build_cps_fused(interface: Any) -> FusedTransition:
    """Stage ``mnext`` for one assembled CPS interface."""
    valloc = interface.addressing.valloc
    advance = interface.addressing.advance
    store_like = interface.store_like
    fetch = store_like.fetch
    close = make_closer(Clo, free_vars_cache)

    def step(pstate: PState, guts: Any, store: Any) -> list:
        ctrl = pstate.ctrl
        if not isinstance(ctrl, Call):
            # mnext s = return s  (Exit states self-loop)
            return [((pstate, guts), store)]
        env = pstate.env
        f = ctrl.fun
        aes = ctrl.args

        # fun rho f: the operator's closures (the source of nondeterminism)
        if isinstance(f, Lam):
            procs: Any = (close(f, env),)
        elif isinstance(f, Ref):
            if f.var not in env:
                return []  # unbound operator: dead branch
            procs = fetch(store, env[f.var])
        else:
            return []

        n_args = len(aes)
        out: list = []
        for proc in procs:
            if not isinstance(proc, Clo):
                continue  # stuck: operator is not a closure
            lam = proc.lam
            vs = lam.params
            if len(vs) != n_args:
                continue  # stuck: arity mismatch

            # tick, then alloc in the advanced context (mnext's order)
            guts2 = advance(proc, pstate, guts)
            addrs = [valloc(v, guts2) for v in vs]

            # mapM (arg rho) aes: all fetches happen before any bind --
            # atomic evaluation never writes, so every set is read from
            # the incoming store, exactly as the strict monadic runner
            # interleaves them
            arg_sets: list = []
            dead = False
            for ae in aes:
                if isinstance(ae, Lam):
                    arg_sets.append((close(ae, env),))
                elif isinstance(ae, Ref):
                    if ae.var not in env:
                        dead = True
                        break
                    ds = fetch(store, env[ae.var])
                    if not ds:
                        dead = True
                        break
                    arg_sets.append(ds)
                else:
                    dead = True
                    break
            if dead:
                continue

            pair = (PState(lam.body, proc.env.update(zip(vs, addrs))), guts2)
            for ds in branch_product(arg_sets):
                out.append((pair, thread_bindings(store_like, store, addrs, ds)))
        return out

    return FusedTransition(step, language="cps")


register_fused("cps", build_cps_fused)
