"""``run_batch``: shard a grid of analyses across processes, behind the cache.

The batch runner is the *pool-shaped* front end of the shared dispatch
core (:mod:`repro.service.jobs` owns job normalization, the cache-first
probe, and report shaping); what lives here is the process-boundary
orchestration:

* **Spawn-safe by construction.**  Jobs travel to workers as *source
  text* (or a corpus program name) plus a config of plain scalars, never
  as live term graphs; each worker parses in its own process, which
  rebuilds its intern pool exactly the way a fresh CLI invocation would.
  The default start method is ``spawn`` -- the strictest one (nothing
  inherited), and the only one available everywhere -- so anything that
  works here works under ``fork`` too.
* **Rehydrated on receipt.**  Workers return frozen fixed points
  (``frozenset``\\ s and PMaps) through pickle; the parent canonicalizes
  them with :func:`repro.util.intern.rehydrate` before they meet any
  locally parsed term (the fork/pickle hazard documented in
  :mod:`repro.util.intern`).
* **Cache first.**  With a :class:`~repro.service.cache.FixpointCache`
  attached, every job's content address is consulted before dispatch
  (:func:`repro.service.jobs.probe`); only misses reach the pool, and
  their results (with warm-start evaluation records, where the
  configuration supports them) are written back by the parent -- workers
  never touch the cache directory, so no cross-process index locking
  exists to get wrong.
* **Adaptive.**  The pool only engages when it can pay for itself: the
  first unique miss runs inline as a *probe*, and the measured job cost
  times the remaining job count must clear :data:`_MIN_POOL_SECONDS`
  before any worker process starts (spawn costs a few hundred
  milliseconds per worker -- a batch of microsecond analyses must never
  buy that).  Pool width is clamped to ``os.cpu_count()``, so on a
  single-core box the runner degrades to the inline path and the batch
  can never run slower than serial.
* **Cheap transport.**  Workers pre-pickle their results into the exact
  byte shapes the cache stores on disk (zlib-compressed for the pipe),
  so the parent writes the bytes straight through
  (:meth:`~repro.service.cache.FixpointCache.put_payload`) and unpickles
  only the fixed point for the report -- the warm-start records, which
  usually outweigh it, cross the parent without ever being rebuilt.
* **Fault-isolated.**  Work is dispatched in round-robin chunks of
  ``(index, job)`` pairs; a worker that dies (or a result that cannot be
  unpickled) costs only its chunk, whose jobs are re-run inline and
  counted in :attr:`BatchReport.inline_fallbacks` instead of failing the
  whole batch.  Deterministic analysis errors still surface: the inline
  re-run raises them in the parent.

The result is a :class:`BatchReport` whose :meth:`BatchReport.render`
is deterministic JSON (:func:`repro.analysis.report.render_json`):
the machine-readable artifact the CLI's ``repro batch`` writes, the CI
cache-smoke job asserts over, and the server's ``batch`` method returns
on the wire.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.report import render_json
from repro.obs.metrics import default_registry
from repro.obs.trace import current_tracer
from repro.service.cache import (
    PAYLOAD_SCHEMA,
    FixpointCache,
    ensure_deep_pickle,
)
from repro.service.jobs import (  # noqa: F401  (re-exported batch surface)
    BatchJob,
    JobOutcome,
    complete,
    outcome_row,
    prepare,
    probe,
    resolve_program,
    run_cold,
)
from repro.util.intern import rehydrate

#: The pool engages only when the probe-predicted serial cost of the
#: remaining jobs clears this bar.  Spawning a worker costs a few
#: hundred milliseconds (interpreter boot + imports); two seconds of
#: predicted work is the point where a multi-worker pool reliably wins
#: on the machines the benchmarks run on.
_MIN_POOL_SECONDS = 2.0


def _pack_job(job: BatchJob) -> dict:
    """Run one job and pre-pickle its results for the pipe (worker side).

    ``object_blob``/``records_blob`` are zlib-compressed encodings of the
    exact payloads :meth:`~repro.service.cache.FixpointCache.put` would
    pickle to disk, so the parent can write them through
    ``put_payload`` without rebuilding either -- the records, which
    usually outweigh the fixed point, never get unpickled parent-side.
    Compression level 1 because the pipe, not the CPU, is the bottleneck
    here: interned term graphs pickle with enormous redundancy.
    """
    payload = run_cold(job)
    object_blob = zlib.compress(
        pickle.dumps(
            {"schema": PAYLOAD_SCHEMA, "fp": payload["fp"]},
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
        1,
    )
    records = payload["records"]
    records_blob = None
    if records:
        sidecar = {"records": records, "program": resolve_program(job)}
        records_blob = zlib.compress(
            pickle.dumps(sidecar, protocol=pickle.HIGHEST_PROTOCOL), 1
        )
    return {
        "object_blob": object_blob,
        "records_blob": records_blob,
        "seconds": payload["seconds"],
        "stats": payload["stats"],
        "pid": payload["pid"],
    }


def _run_chunk(chunk: Sequence[tuple[int, BatchJob]]) -> list[tuple[int, dict]]:
    """Execute one round-robin chunk of ``(index, job)`` pairs (worker side)."""
    ensure_deep_pickle()
    return [(index, _pack_job(job)) for index, job in chunk]


@dataclass
class BatchReport:
    """The machine-readable outcome of one :func:`run_batch` call."""

    outcomes: list[JobOutcome]
    workers: int
    total_seconds: float
    cache_stats: dict | None = None
    pool_workers: int = 0
    inline_fallbacks: int = 0

    def to_document(self, include_flows: bool = False) -> dict:
        """The report as deterministic-JSON-ready data."""
        return {
            "schema": "batch-report/1",
            "jobs": [
                outcome_row(outcome, include_flows=include_flows)
                for outcome in self.outcomes
            ],
            "workers": self.workers,
            "pool_workers": self.pool_workers,
            "inline_fallbacks": self.inline_fallbacks,
            "total_seconds": round(self.total_seconds, 6),
            "cache": self.cache_stats,
        }

    def render(self, include_flows: bool = False) -> str:
        """Deterministic JSON (sorted keys, stable addresses, trailing \\n)."""
        return render_json(self.to_document(include_flows=include_flows))

    @property
    def hit_count(self) -> int:
        """How many jobs were answered from the cache."""
        return sum(1 for outcome in self.outcomes if outcome.cached)


def jobs_for(
    programs: Iterable[tuple[str, str, str]], presets: Iterable[str]
) -> list[BatchJob]:
    """Build a job grid: ``(language, name, source)`` x preset names."""
    from repro.config import preset_config

    grid = []
    for language, name, source in programs:
        for preset in presets:
            grid.append(
                BatchJob(
                    config=preset_config(preset, language),
                    source=source,
                    label=f"{language}/{name}/{preset}",
                )
            )
    return grid


def run_batch(
    jobs: Sequence[BatchJob],
    workers: int = 1,
    cache: FixpointCache | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    start_method: str = "spawn",
    min_pool_seconds: float = _MIN_POOL_SECONDS,
) -> BatchReport:
    """Run a batch of analysis jobs, cache-first, adaptively pool-sharded.

    ``workers > 1`` *permits* a worker pool; whether one starts is
    decided adaptively (see the module docstring): pool width is clamped
    to ``os.cpu_count()`` and the first unique miss runs inline as a
    cost probe -- only when the probe predicts more than
    ``min_pool_seconds`` of remaining serial work do worker processes
    spawn (``start_method`` defaults to the spawn-safe strictest
    choice).  ``workers <= 1`` always runs misses inline, which skips
    pickling entirely (one process, one intern pool -- nothing to
    rehydrate).  ``cache`` or ``cache_dir`` attaches a fixpoint cache;
    ``use_cache=False`` keeps a configured cache cold (the CLI's
    ``--no-cache``).

    A worker that dies, or a result that cannot be unpickled, costs only
    its chunk of jobs: those re-run inline and are counted in
    :attr:`BatchReport.inline_fallbacks`.

    Every job's fixed point -- cache hit, pooled, fallen-back, or
    inline -- is bit-identical to a cold single-process run of the same
    cell, which ``tests/test_service.py`` pins across the whole preset
    matrix.
    """
    if cache is None and cache_dir is not None and use_cache:
        # --no-cache must neither create nor read the directory
        cache = FixpointCache(root=cache_dir)
    ensure_deep_pickle()  # pool results unpickle on a parent-side thread
    started = time.perf_counter()

    # normalize every config up front: the workers receive the same
    # validated jobs the content addresses are derived from (prepare()
    # re-validates, but chunk dispatch pickles the job as-is)
    jobs = [
        job
        if (validated := job.config.validated()) == job.config
        else dataclasses.replace(job, config=validated)
        for job in jobs
    ]

    prepared = [prepare(job) for job in jobs]
    outcomes: list[JobOutcome | None] = [None] * len(jobs)
    misses: list[int] = []
    for index, cell in enumerate(prepared):
        if cache is not None and use_cache:
            outcomes[index] = probe(cell, cache=cache)
            if outcomes[index] is not None:
                continue
        misses.append(index)

    pool_workers = 0
    inline_fallbacks = 0
    if misses:
        # dedupe within the batch: two cells with one content address are
        # one computation (the duplicates share the payload below)
        leaders: dict[str, int] = {}
        for index in misses:
            leaders.setdefault(prepared[index].key, index)
        unique = sorted(leaders.values())
        computed: dict[int, dict] = {}
        pending = list(unique)

        pool_cap = max(1, min(workers, os.cpu_count() or 1, len(unique) - 1))
        if pool_cap > 1:
            # probe: the first unique job runs inline and its measured
            # cost decides whether the rest are worth a pool at all
            probe_index = pending[0]
            computed[probe_index] = run_cold(jobs[probe_index])
            pending = pending[1:]
            if computed[probe_index]["seconds"] * len(pending) >= min_pool_seconds:
                pool_workers = min(pool_cap, len(pending))
                chunks = [
                    [(index, jobs[index]) for index in pending[offset::pool_workers]]
                    for offset in range(pool_workers)
                ]
                context = multiprocessing.get_context(start_method)
                with ProcessPoolExecutor(
                    max_workers=pool_workers, mp_context=context
                ) as pool:
                    futures = {
                        pool.submit(_run_chunk, chunk): chunk for chunk in chunks
                    }
                    for future in as_completed(futures):
                        chunk = futures[future]
                        try:
                            packed = future.result()
                        except Exception:
                            # the worker died (or its result never made
                            # it across the pipe): only this chunk's
                            # jobs re-run, inline -- a deterministic
                            # analysis error will re-raise here, in the
                            # parent, where it is attributable
                            for index, job in chunk:
                                computed[index] = run_cold(job)
                                inline_fallbacks += 1
                            continue
                        for index, payload in packed:
                            try:
                                raw = zlib.decompress(payload["object_blob"])
                                fp = rehydrate(pickle.loads(raw)["fp"])
                            except Exception:
                                # damaged transport for one job: fall
                                # back for that job alone
                                computed[index] = run_cold(jobs[index])
                                inline_fallbacks += 1
                                continue
                            computed[index] = {
                                "fp": fp,
                                "records": None,
                                "object_blob": raw,
                                "records_blob": payload["records_blob"],
                                "seconds": payload["seconds"],
                                "stats": payload["stats"],
                                "pid": payload["pid"],
                            }
                pending = []
        for index in pending:
            computed[index] = run_cold(jobs[index])
        by_key = {prepared[index].key: computed[index] for index in unique}

        stored: set[str] = set()
        for index in misses:
            cell = prepared[index]
            first_for_key = cell.key not in stored
            stored.add(cell.key)
            outcomes[index] = complete(
                cell,
                by_key[cell.key],
                cache=cache if use_cache else None,
                store=first_for_key,
            )

    if cache is not None and use_cache:
        # the lifetime counters (and per-entry hit recency) must survive
        # hit-only invocations too, not just ones that put
        cache.flush_stats()
    current_tracer().event(
        "batch.complete",
        cat="batch",
        jobs=len(jobs),
        pool_workers=pool_workers,
        inline_fallbacks=inline_fallbacks,
    )
    registry = default_registry()
    registry.counter("batch_jobs_total").inc(len(jobs))
    if pool_workers:
        registry.counter("batch_pool_engaged_total").inc()
        registry.gauge("batch_pool_workers").set(pool_workers)
    if inline_fallbacks:
        registry.counter("batch_inline_fallbacks_total").inc(inline_fallbacks)
    return BatchReport(
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        workers=workers,
        total_seconds=time.perf_counter() - started,
        cache_stats=cache.stats() if cache is not None else None,
        pool_workers=pool_workers,
        inline_fallbacks=inline_fallbacks,
    )
