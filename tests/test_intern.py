"""The hash-consing layer: cached hashes, identity-fast equality, interning.

The contract is that :func:`repro.util.intern.hash_consed` and
:func:`repro.util.intern.intern` change the *cost* of hashing and
equality, never their meaning: structural equality, structural hashes
and reprs are untouched, which is what lets the layer sit under every
syntax node, machine state and address without a semantics test
noticing (the interned-vs-plain equivalence tests in
``tests/test_engines.py`` check exactly that end to end).
"""

import dataclasses
import pickle

from repro.core.addresses import Binding
from repro.cps.parser import parse_cexp
from repro.cps.semantics import PState, inject
from repro.cps.syntax import Call, Exit, Lam, Ref
from repro.util.intern import _HASH_SLOT, intern, intern_pool_size
from repro.util.pcollections import pmap

MJ09_SRC = """
((lambda (id k)
   (id (lambda (z kz) (kz z))
       (lambda (a)
         (id (lambda (y ky) (ky y))
             (lambda (b) (exit))))))
 (lambda (x j) (j x))
 (lambda (r) (exit)))
"""


def rebuild(value):
    """A structurally equal but pointer-fresh (un-interned) copy."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: rebuild(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
        return type(value)(**fields)
    if isinstance(value, tuple):
        return tuple(rebuild(item) for item in value)
    return value


class TestHashConsed:
    def test_hash_is_memoized_at_construction(self):
        node = Ref("x")
        assert object.__getattribute__(node, _HASH_SLOT) == hash(node)

    def test_hash_and_eq_stay_structural(self):
        a = Call(Ref("f"), (Ref("x"),))
        b = rebuild(a)
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_values_stay_unequal(self):
        assert Ref("x") != Ref("y")
        assert Lam(("v",), Exit()) != Lam(("w",), Exit())

    def test_deep_chain_hashes_without_recursion_blowup(self):
        # eager (bottom-up) memoization: hashing a 3000-deep term must not
        # recurse through the whole spine
        body = Exit()
        for i in range(3000):
            body = Call(Ref(f"f{i}"), (Lam((f"v{i}",), body),))
        assert isinstance(hash(body), int)

    def test_pickle_strips_and_recomputes_the_memo(self):
        # string hashes are per-process-randomized, so the memo must not
        # travel in the pickle; the lazy fallback recomputes it on demand
        node = Call(Ref("f"), (Ref("x"),))
        assert _HASH_SLOT.encode() not in pickle.dumps(node)
        clone = pickle.loads(pickle.dumps(node))
        assert clone == node and hash(clone) == hash(node)

    def test_hash_recomputed_when_memo_missing(self):
        # the lazy fallback (e.g. instances materialized without __init__)
        node = Ref("zz")
        expected = hash(node)
        object.__delattr__(node, _HASH_SLOT)
        assert hash(node) == expected

    def test_machine_states_and_addresses_are_cached_too(self):
        state = inject(parse_cexp(MJ09_SRC))
        addr = Binding("x", ("call-site",))
        assert object.__getattribute__(state, _HASH_SLOT) == hash(state)
        assert object.__getattribute__(addr, _HASH_SLOT) == hash(addr)

    def test_pstate_eq_is_identity_fast_on_self(self):
        state = PState(Exit(), pmap())
        assert state == state


class TestIntern:
    def test_intern_canonicalizes_equal_values(self):
        a = intern(Call(Ref("g"), (Ref("q"),)))
        b = intern(rebuild(a))
        assert a is b

    def test_intern_keeps_distinct_values_distinct(self):
        assert intern(Ref("only-a")) is not intern(Ref("only-b"))

    def test_parser_interns_shared_subterms(self):
        # the same source parsed twice yields pointer-identical trees
        t1 = parse_cexp(MJ09_SRC)
        t2 = parse_cexp(MJ09_SRC)
        assert t1 is t2

    def test_repeated_subterms_are_shared_within_one_parse(self):
        term = parse_cexp("((lambda (x k) (k x)) (lambda (x k) (k x)) (lambda (r) (exit)))")
        fun, arg = term.fun, term.args[0]
        assert fun is arg

    def test_pool_grows_monotonically(self):
        before = intern_pool_size()
        intern(Ref("fresh-pool-entry"))
        assert intern_pool_size() >= before
