"""A one-pass, higher-order CPS transform (Fischer/Plotkin style).

``cps_convert`` maps a direct-style program to a CPS program in the
grammar of Figure 1, so that every CPS analysis in :mod:`repro.cps`
applies to direct-style code too.  The transform is *higher-order*:
meta-level continuations build the output, so no administrative
``((lambda (v) ...) v)`` redexes are produced -- a requirement for CFA
hygiene, since administrative redexes add spurious call sites that
change (and usually degrade) context-sensitive results.

User lambdas of arity ``n`` become CPS lambdas of arity ``n+1`` whose
last parameter is the continuation; the whole program is closed off
with the halt continuation ``(lambda (r) (exit))``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

from repro.cps import syntax as cps
from repro.lam.syntax import App, Expr, Lam, Let, Var, uniquify


class FreshNames:
    """A supply of names guaranteed not to clash with source variables.

    Source identifiers never contain ``$`` (the parsers treat it as an
    ordinary atom character, but our corpus avoids it), so ``$k3``-style
    names are safe.
    """

    def __init__(self) -> None:
        self._counter: Iterator[int] = itertools.count()

    def fresh(self, base: str) -> str:
        return f"${base}{next(self._counter)}"


def cps_convert(expr: Expr, halt_var: str = "r") -> cps.CExp:
    """Convert a whole program, finishing at ``(lambda (r) (exit))``.

    The source is uniquified first (duplicate binders renamed apart):
    the higher-order transform splices variable atoms into contexts
    built later, so shadowing in the source would capture them.
    Programs with distinct binders are unaffected.
    """
    names = FreshNames()
    halt = cps.Lam((halt_var,), cps.Exit())
    return _convert(uniquify(expr), names, lambda atom: cps.Call(halt, (atom,)))


def cps_convert_with_cont(expr: Expr, cont: cps.AExp) -> cps.CExp:
    """Convert ``expr``, delivering its value to the CPS continuation ``cont``."""
    names = FreshNames()
    return _convert(uniquify(expr), names, lambda atom: cps.Call(cont, (atom,)))


def _convert(
    expr: Expr, names: FreshNames, kappa: Callable[[cps.AExp], cps.CExp]
) -> cps.CExp:
    """``kappa`` is the *meta-level* continuation: it receives the atomic
    expression denoting ``expr``'s value and builds the rest of the output."""
    if isinstance(expr, Var):
        return kappa(cps.Ref(expr.name))
    if isinstance(expr, Lam):
        kvar = names.fresh("k")
        body = _convert(expr.body, names, lambda atom: cps.Call(cps.Ref(kvar), (atom,)))
        return kappa(cps.Lam(expr.params + (kvar,), body))
    if isinstance(expr, Let):
        # (let ((x rhs)) body): evaluate rhs, bind x via a continuation lambda
        def with_rhs(rhs_atom: cps.AExp) -> cps.CExp:
            body = _convert(expr.body, names, kappa)
            return cps.Call(cps.Lam((expr.var,), body), (rhs_atom,))

        return _convert(expr.rhs, names, with_rhs)
    if isinstance(expr, App):
        def with_fun(fun_atom: cps.AExp) -> cps.CExp:
            return _convert_args(expr.args, (), fun_atom, names, kappa)

        return _convert(expr.fun, names, with_fun)
    raise TypeError(f"not a direct-style term: {expr!r}")


def _convert_args(
    remaining: tuple,
    done: tuple,
    fun_atom: cps.AExp,
    names: FreshNames,
    kappa: Callable[[cps.AExp], cps.CExp],
) -> cps.CExp:
    if not remaining:
        rvar = names.fresh("v")
        reified = cps.Lam((rvar,), kappa(cps.Ref(rvar)))
        return cps.Call(fun_atom, done + (reified,))

    def with_arg(arg_atom: cps.AExp) -> cps.CExp:
        return _convert_args(remaining[1:], done + (arg_atom,), fun_atom, names, kappa)

    return _convert(remaining[0], names, with_arg)
