"""E1 -- the concrete interpreter recovered from the monadic semantics (4).

Claim regenerated: plugging the Identity/real-heap implementation into
the *same* ``mnext`` yields a working interpreter; its answers anchor
every abstraction.  The rows report machine steps per program and the
interpreter's throughput.
"""

from conftest import run_once

from repro.analysis.report import fmt_table
from repro.cps.concrete import interpret, interpret_trace
from repro.lam.cps_transform import cps_convert
from repro.cesk.concrete import evaluate
from repro.corpus.cps_programs import PROGRAMS, deep_call_tower, id_chain
from repro.corpus.lam_programs import church_add_program

TERMINATING = ["identity", "id-id", "mj09", "self-apply"]


def test_e1_interpret_corpus(benchmark):
    def run():
        return {name: interpret(PROGRAMS[name]) for name in TERMINATING}

    finals = run_once(benchmark, run)
    assert all(state.is_final() for state in finals.values())
    rows = [
        (name, len(interpret_trace(PROGRAMS[name])), "exit")
        for name in TERMINATING
    ]
    print()
    print(fmt_table(["program", "steps", "result"], rows))


def test_e1_interpret_id_chain_scaling(benchmark):
    programs = {n: id_chain(n) for n in (4, 16, 64)}

    def run():
        return {n: len(interpret_trace(p)) for n, p in programs.items()}

    steps = run_once(benchmark, run)
    assert steps[64] > steps[16] > steps[4]
    print()
    print(fmt_table(["chain n", "steps"], sorted(steps.items())))


def test_e1_interpret_call_tower(benchmark):
    program = deep_call_tower(32)
    final = run_once(benchmark, lambda: interpret(program))
    assert final.is_final()


def test_e1_cps_transform_agrees_with_cesk(benchmark):
    """The concrete anchor across the transform: cps(e) and e agree."""
    program = church_add_program(2, 3)

    def run():
        direct = evaluate(program)
        final = interpret(cps_convert(program))
        return direct, final

    direct, final = run_once(benchmark, run)
    assert final.is_final()
    assert direct.lam.params == ("q",)
