"""The resident analysis server: asyncio front end over the dispatch core.

One process, three layers:

* an **asyncio TCP front end** speaking the newline-delimited JSON
  protocol (:mod:`repro.serve.protocol`), one task per connection,
  responses in request order per connection;
* a **bounded worker pool** (`ThreadPoolExecutor`) running the actual
  analyses -- threads, not processes, because the whole point of
  residency is sharing the warm intern pool and the hot fixpoint tier,
  which live in this process's memory.  Admission is bounded: at most
  ``queue_limit`` requests in flight (queued + running); the excess get
  an immediate ``queue-full`` error instead of unbounded queueing;
* the **shared dispatch core** (:func:`repro.service.jobs.dispatch`):
  every ``analyse``/``reanalyse``/``batch`` request runs the same hot ->
  disk -> warm -> cold tier cascade the batch runner and CLI use, against
  one :class:`~repro.service.jobs.HotTier` and (optionally) one
  :class:`~repro.service.cache.FixpointCache` -- which is also the single
  counter source the ``stats`` method reports from.

Per-request **timeouts** (``timeout`` in params, or the server default)
are enforced with ``asyncio.wait_for``; a timeout of ``0`` fails
deterministically before any work is submitted (the golden protocol
tests pin that shape).  A timed-out worker job is orphaned, not killed
(threads cannot be): it finishes in the background, its admission slot
is released when it actually ends, and -- per the metrics counting
discipline (:mod:`repro.serve.metrics`) -- it contributes nothing to the
tier counters, because the server never answered from it.

**Graceful shutdown** (the ``shutdown`` method, ``SIGINT``, or
:meth:`ServerHandle.close`): stop accepting connections, refuse new work
with ``shutting-down``, drain the worker pool, and flush the cache's
lifetime counters to disk (:meth:`FixpointCache.flush_stats`) so a
hit-only serving session leaves its traffic on record.

Long-run hygiene: the intern pool grows with every distinct program a
resident process parses.  ``intern_limit`` bounds it -- when the pool
exceeds the limit after a request, it is cleared
(:func:`repro.util.intern.maybe_clear_intern_pool`) and the hot tier is
dropped in the same breath, since its entries' canonical-identity fast
path died with the pool.  Correctness is unaffected either way (equality
stays structural); the next requests simply re-warm.

:class:`ServerHandle` hosts a server on a daemon thread with its own
event loop -- the in-process harness the soak tests, the benchmark's
serve-latency row, and CI's server smoke all share.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.obs.trace import NULL_TRACER, Tracer, current_tracer, use_tracer
from repro.serve import protocol
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import ProtocolError, error_response, result_response
from repro.service.cache import FixpointCache
from repro.service.jobs import HotTier, dispatch, normalize_job, outcome_row
from repro.util.intern import intern_stats, maybe_clear_intern_pool

#: Request params understood by analyse/reanalyse (batch job specs allow
#: the same minus the per-request ones).
_ANALYSE_PARAMS = {
    "language",
    "source",
    "corpus",
    "preset",
    "overrides",
    "label",
    "include_flows",
    "timeout",
    "trace",
}
#: Per-request (not per-job) params, stripped before job validation.
_REQUEST_ONLY_PARAMS = {"include_flows", "timeout", "trace"}
_JOB_PARAMS = _ANALYSE_PARAMS - _REQUEST_ONLY_PARAMS


class AnalysisServer:
    """One resident analysis engine behind one listening socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        workers: int = 2,
        queue_limit: int = 32,
        hot_entries: int = 256,
        default_timeout: float | None = None,
        intern_limit: int | None = None,
        trace_path: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("the server needs at least one worker thread")
        if queue_limit < 1:
            raise ValueError("the server needs queue_limit >= 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        self.intern_limit = intern_limit
        self.cache = FixpointCache(root=cache_dir) if cache_dir else None
        self.hot = HotTier(max_entries=hot_entries)
        self.metrics = ServerMetrics()
        # lifetime tracer behind ``repro serve --trace FILE``: worker
        # threads inherit it through the process-default indirection
        # (see repro.obs.trace); the file is written on graceful stop
        self.trace_path = trace_path
        self.tracer = Tracer(process_name="repro-serve") if trace_path else None
        self._pool: ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._stopping = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (port 0 picks a free one) and pool."""
        if self.tracer is not None:
            from repro.obs.trace import set_default_tracer

            set_default_tracer(self.tracer)
        self._stop_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (meaningful after :meth:`start`)."""
        return self.host, self.port

    def request_stop(self) -> None:
        """Flag shutdown; :meth:`wait_stopped` completes it (thread-safe
        only from the server's own event loop -- cross-thread callers go
        through ``call_soon_threadsafe``, as :class:`ServerHandle` does)."""
        self._stopping = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def wait_stopped(self) -> None:
        """Serve until shutdown is requested, then tear down gracefully."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful teardown: close the socket, drain workers, flush stats."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # close lingering connections so their handler tasks end at EOF
        # instead of being cancelled noisily at loop teardown
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._pool is not None:
            # wait=True drains jobs already running; queued-but-unstarted
            # ones are cancelled (their requesters were answered with
            # shutting-down or have timed out already)
            self._pool.shutdown(wait=True, cancel_futures=True)
        if self.cache is not None:
            self.cache.flush_stats()
        if self.tracer is not None:
            from repro.obs.trace import set_default_tracer

            set_default_tracer(NULL_TRACER)
            self.tracer.write(self.trace_path)

    async def serve_forever(self) -> None:
        """The blocking entry ``repro serve`` runs."""
        await self.start()
        await self.wait_stopped()

    # -- the connection loop -----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response, stop_after = await self._respond(line)
                writer.write(protocol.encode(response))
                await writer.drain()
                if stop_after:
                    self.request_stop()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # loop teardown raced this connection's shutdown close
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, line: bytes) -> tuple[dict, bool]:
        """One request line to one ``(response, stop_after)`` pair.

        Every outcome is a response: protocol errors, refused admissions,
        timeouts, and analysis failures all come back as typed error
        objects -- a client is never left hanging on a silently dropped
        request, which is the property the fault-injection tests pin.
        """
        try:
            request = protocol.decode_request(line)
        except ProtocolError as error:
            self.metrics.record_request("invalid")
            return self._error(error.request_id, error.code, str(error)), False
        method = request["method"]
        params = request["params"]
        request_id = request["id"]
        self.metrics.record_request(method)
        started = time.perf_counter()

        if method == "ping":
            response = result_response(request_id, {"pong": True})
        elif method == "stats":
            response = result_response(request_id, self._stats())
        elif method == "metrics":
            # the Prometheus twin of stats: same registry, text format,
            # answered loop-side so a scraper never queues behind work
            response = result_response(
                request_id, {"prometheus": self.metrics.prometheus()}
            )
        elif method == "shutdown":
            # answer first, then trip the stop event (the caller's
            # response must reach the wire before the socket closes)
            self.metrics.record_latency(method, time.perf_counter() - started)
            return result_response(request_id, {"stopping": True}), True
        else:
            response = await self._respond_work(method, params, request_id)
        if "error" not in response:
            self.metrics.record_latency(method, time.perf_counter() - started)
        return response, False

    async def _respond_work(self, method: str, params: dict, request_id: Any) -> dict:
        """Admission-control, run, and shape one analyse/reanalyse/batch."""
        if self._stopping:
            return self._error(
                request_id, protocol.SHUTTING_DOWN, "server is shutting down"
            )
        timeout = params.get("timeout", self.default_timeout)
        if timeout is not None and (
            isinstance(timeout, bool) or not isinstance(timeout, (int, float))
        ):
            return self._error(
                request_id, protocol.INVALID_PARAMS, "timeout must be a number"
            )
        if timeout is not None and timeout <= 0:
            # a zero budget times out before any work starts -- also the
            # deterministic timeout shape the golden tests pin
            return self._error(
                request_id, protocol.TIMEOUT, f"request timed out after {timeout}s"
            )
        with self._inflight_lock:
            if self._inflight >= self.queue_limit:
                return self._error(
                    request_id,
                    protocol.QUEUE_FULL,
                    f"worker queue full ({self.queue_limit} requests in flight)",
                )
            self._inflight += 1
        if method == "batch":
            work = functools.partial(self._run_batch, params)
        else:
            work = functools.partial(
                self._run_analyse, params, allow_warm=(method == "reanalyse")
            )
        loop = asyncio.get_running_loop()
        try:
            result, tiers, work_stats = await asyncio.wait_for(
                loop.run_in_executor(self._pool, self._tracked, work), timeout
            )
        except asyncio.TimeoutError:
            # the worker thread cannot be killed: the job is orphaned and
            # will release its admission slot when it actually finishes;
            # per the metrics discipline it never reaches the tier counts
            return self._error(
                request_id, protocol.TIMEOUT, f"request timed out after {timeout}s"
            )
        except (ValueError, KeyError, SyntaxError) as error:
            # bad preset, unknown override, parse failure, malformed job
            return self._error(
                request_id, protocol.INVALID_PARAMS, self._message(error)
            )
        except Exception as error:  # worker death, engine bugs: visible
            return self._error(
                request_id, protocol.ANALYSIS_ERROR, self._message(error)
            )
        for tier in tiers:
            self.metrics.record_tier(tier)
        for stats in work_stats:
            self.metrics.record_work(stats)
        self._bound_intern_pool()
        return result_response(request_id, result)

    def _tracked(self, work: Any) -> Any:
        """Run one worker job, releasing its admission slot when it ends.

        The release lives *in the worker thread*, not on the awaiting
        side: a timed-out request's orphaned job still occupies a worker,
        so it must keep occupying an admission slot until it truly ends.
        """
        try:
            return work()
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _error(self, request_id: Any, code: int, message: str) -> dict:
        self.metrics.record_error(protocol.ERROR_NAMES.get(code, "error"))
        return error_response(request_id, code, message)

    @staticmethod
    def _message(error: BaseException) -> str:
        text = str(error) or type(error).__name__
        return text if isinstance(error, ValueError) else f"{type(error).__name__}: {text}"

    # -- worker-side request bodies -----------------------------------------

    def _job_from(self, spec: dict, allowed: set | None = None):
        allowed = allowed if allowed is not None else _JOB_PARAMS
        unknown = sorted(set(spec) - allowed - _REQUEST_ONLY_PARAMS)
        if unknown:
            raise ValueError(
                f"unknown request param(s) {unknown}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        language = spec.get("language")
        if not isinstance(language, str):
            raise ValueError("request needs a string 'language' (cps|lam|fj|imp)")
        overrides = spec.get("overrides")
        if overrides is not None and not isinstance(overrides, dict):
            raise ValueError("'overrides' must be an object of config fields")
        return normalize_job(
            language,
            source=spec.get("source"),
            corpus=spec.get("corpus"),
            preset=spec.get("preset"),
            overrides=overrides,
            label=spec.get("label", ""),
        )

    def _run_analyse(self, params: dict, allow_warm: bool) -> tuple[dict, list, list]:
        """One job through the shared dispatch cascade (worker thread).

        A truthy ``trace`` param routes this request's spans into a
        fresh per-request tracer whose events come back on the response
        row (additive ``trace`` field) -- the fixed point itself is
        bit-identical, traced or not (pinned corpus-wide by the
        trace-integrity tests).
        """
        job = self._job_from(params)
        request_tracer = Tracer(process_name="repro-serve") if params.get("trace") else None
        with use_tracer(request_tracer) if request_tracer else contextlib.nullcontext():
            method = "reanalyse" if allow_warm else "analyse"
            with current_tracer().span("serve." + method, cat="serve", label=job.label):
                outcome = dispatch(
                    job=job, cache=self.cache, hot=self.hot, allow_warm=allow_warm
                )
        row = outcome_row(outcome, include_flows=bool(params.get("include_flows")))
        if request_tracer is not None:
            row["trace"] = request_tracer.events()
        return row, [outcome.tier], [outcome.stats]

    def _run_batch(self, params: dict) -> tuple[dict, list, list]:
        """A job grid through the same cascade, one report (worker thread).

        Jobs run sequentially *within* the request -- the server's
        concurrency unit is the request, and its worker pool is already
        bounded; nesting a process pool inside a worker thread would
        fight both.  The report reuses the batch-report shape, so
        consumers of ``repro batch --report`` documents can read it.
        """
        specs = params.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise ValueError("batch needs a non-empty 'jobs' list")
        include_flows = bool(params.get("include_flows"))
        request_tracer = Tracer(process_name="repro-serve") if params.get("trace") else None
        started = time.perf_counter()
        outcomes = []
        with use_tracer(request_tracer) if request_tracer else contextlib.nullcontext():
            with current_tracer().span("serve.batch", cat="serve", jobs=len(specs)):
                for spec in specs:
                    if not isinstance(spec, dict):
                        raise ValueError("each batch job must be an object")
                    outcomes.append(
                        dispatch(
                            job=self._job_from(spec), cache=self.cache, hot=self.hot
                        )
                    )
        report = {
            "schema": "batch-report/1",
            "jobs": [
                outcome_row(outcome, include_flows=include_flows)
                for outcome in outcomes
            ],
            "workers": 1,
            "pool_workers": 0,
            "inline_fallbacks": 0,
            "total_seconds": round(time.perf_counter() - started, 6),
            "cache": self.cache.stats() if self.cache is not None else None,
        }
        if request_tracer is not None:
            report["trace"] = request_tracer.events()
        return report, [outcome.tier for outcome in outcomes], [
            outcome.stats for outcome in outcomes
        ]

    # -- observability -------------------------------------------------------

    def _stats(self) -> dict:
        """The ``stats`` method body: one document, one counter source.

        The cache numbers here are the *same* counters a ``BatchReport``
        built over this server's cache would carry (both read
        :meth:`FixpointCache.stats` on the one instance), and
        ``lifetime`` extends them across every process that ever wrote
        the cache directory.
        """
        document = self.metrics.snapshot()
        document.update(
            pid=os.getpid(),
            workers=self.workers,
            queue_limit=self.queue_limit,
            inflight=self._inflight,
            hot=self.hot.stats(),
            cache=self.cache.stats() if self.cache is not None else None,
            intern=intern_stats(),
        )
        return document

    def _bound_intern_pool(self) -> None:
        """Apply ``intern_limit`` after a request (see module docstring)."""
        if maybe_clear_intern_pool(self.intern_limit):
            # the hot tier's entries survived, but their canonical-
            # identity fast path did not: drop them with the pool
            self.hot.clear()


class ServerHandle:
    """A server hosted on a daemon thread with its own event loop.

    The in-process harness everything non-daemon shares -- tests,
    the benchmark's serve-latency row, CI smoke::

        with ServerHandle(cache_dir=tmp) as handle:
            with ServeClient(port=handle.port) as client:
                client.call("analyse", {...})

    ``__enter__`` returns once the socket is bound (so ``port`` is
    real); ``close``/``__exit__`` runs the server's graceful shutdown
    and joins the thread.
    """

    def __init__(self, **kwargs: Any) -> None:
        self._kwargs = kwargs
        self.server: AnalysisServer | None = None
        self.host: str = kwargs.get("host", "127.0.0.1")
        self.port: int = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-host", daemon=True
        )

    def start(self) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("analysis server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("analysis server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = AnalysisServer(**self._kwargs)
        try:
            await self.server.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self.host, self.port = self.server.address
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.wait_stopped()

    def close(self) -> None:
        """Graceful shutdown from any thread; idempotent."""
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.request_stop)
        if self._thread.ident is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
