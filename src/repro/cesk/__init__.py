"""A CESK machine for direct-style lambda calculus, monadically parameterized.

The second language of the paper's artifact: the same meta-level
components (monads, ``Addressable``, ``StoreLike``, counting stores,
garbage collection, ``Collecting`` fixpoints) drive a machine with
*continuations in the store* (the "abstracting abstract machines"
construction), demonstrating that the monadic decomposition is not
CPS-specific.

* :mod:`repro.cesk.machine`   -- states, values, continuation frames
* :mod:`repro.cesk.semantics` -- ``CESKInterface`` and the monadic step
* :mod:`repro.cesk.concrete`  -- the concrete machine (real heap)
* :mod:`repro.cesk.analysis`  -- the abstract analysis family
"""

from repro.cesk.machine import Clo, Frame, HaltF, PState, inject
from repro.cesk.semantics import CESKInterface, mnext_cesk
from repro.cesk.concrete import ConcreteCESKInterface, evaluate, evaluate_trace
from repro.cesk.analysis import (
    AbstractCESKInterface,
    CESKAnalysisResult,
    analyse_cesk,
    analyse_cesk_gc,
    analyse_cesk_kcfa,
    analyse_cesk_shared,
    analyse_cesk_zerocfa,
)

__all__ = [
    "AbstractCESKInterface",
    "CESKAnalysisResult",
    "CESKInterface",
    "Clo",
    "ConcreteCESKInterface",
    "Frame",
    "HaltF",
    "PState",
    "analyse_cesk",
    "analyse_cesk_gc",
    "analyse_cesk_kcfa",
    "analyse_cesk_shared",
    "analyse_cesk_zerocfa",
    "evaluate",
    "evaluate_trace",
    "inject",
    "mnext_cesk",
]
