"""cProfile any preset x workload: where does an analysis spend its time?

The staging work (PERFORMANCE.md, "The fused transition") was guided by
exactly this view: the generic transition's profile is a wall of
``StateT.bind``/``<lambda>`` frames, the fused one is flat.  Keep it that
way -- profile before optimizing::

    PYTHONPATH=src python tools/profile_analysis.py --preset 1cfa \\
        --lang cps --workload id-chain-200
    PYTHONPATH=src python tools/profile_analysis.py --preset 1cfa-fused \\
        --lang lam --workload church-two-two --top 15
    PYTHONPATH=src python tools/profile_analysis.py --lang fj \\
        --workload visitor --engine depgraph --store-impl versioned \\
        --transition fused --sort tottime

Workloads are corpus program names (``repro.corpus``); for CPS the
synthetic ``id-chain-N`` family is also understood.  Flags mirror the
CLI: ``--preset`` names a registry entry, and the fine-grained flags
(``--k``, ``--engine``, ``--store-impl``, ``--transition``, ``--gc``,
``--counting``) override its fields.  One deliberate difference from
``repro analyze``: without ``--preset`` this tool defaults to the fast
global-store configuration (``depgraph`` + ``versioned``), because
that is the hot path worth profiling -- ``repro analyze`` without flags
runs the per-state domain instead.  Pass ``--engine``/``--store-impl``
explicitly to profile another point.  Everything assembles through
``repro.config``, so a profiled configuration is exactly what the CLI
and tests run for the same settings.

``--schedule-trace`` swaps the profiler for a scheduling view: run the
analysis once with the engine's evaluation-order trace enabled and
print the drain order (rank per pop) plus the per-configuration
re-evaluation histogram -- the direct way to eyeball a scheduling
pathology (a configuration re-evaluated dozens of times is a batching
failure; compare ``--schedule fifo`` against ``--schedule priority``
on the same workload)::

    PYTHONPATH=src python tools/profile_analysis.py --preset 1cfa-fused \\
        --lang cps --workload id-chain-30 --engine worklist \\
        --schedule-trace --schedule priority

``--pickle-cost`` swaps the profiler for a transport-cost measurement:
run the analysis once, then time pickling, compressing, unpickling and
rehydrating its frozen fixed point (and report the byte sizes).  These
are the numbers that ground the batch runner's transport choices and
the decision to shard the parallel worklist with threads rather than
shipping per-round deltas between processes (PERFORMANCE.md, "Parallel
fixpoints")::

    PYTHONPATH=src python tools/profile_analysis.py --preset 1cfa-fused \\
        --lang lam --workload church-two-two --pickle-cost --repeat 5

Stdlib only (cProfile/pstats/pickle/zlib), like the rest of the tooling.
"""

from __future__ import annotations

import argparse
import cProfile
import pickle
import pstats
import sys
import time
import zlib


def resolve_workload(lang: str, name: str):
    """A corpus program by name; CPS also accepts synthetic ``id-chain-N``.

    Resolution itself lives in :mod:`repro.util.workloads` (shared with
    ``benchmarks/record.py``); this wrapper only turns the library
    ``ValueError`` into a tool exit.
    """
    from repro.util.workloads import resolve_workload as resolve

    try:
        return resolve(lang, name)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def build_analysis(args: argparse.Namespace, program):
    from repro.config import assemble
    from repro.util.workloads import build_workload_config

    config = build_workload_config(
        args.lang,
        preset=args.preset,
        k=args.k,
        engine=args.engine,
        store_impl=args.store_impl,
        transition=args.transition,
        schedule=args.schedule,
        gc=args.gc,
        counting=args.counting,
    )
    return assemble(config, program=program), config


def measure_pickle_cost(result, repeat: int) -> dict:
    """Serialize/deserialize cost of a frozen fixed point (best of N).

    Measures the full round trip the batch pool pays per result:
    ``pickle.dumps`` at the highest protocol, zlib compression at the
    level the transport uses (1), ``pickle.loads``, and
    :func:`repro.util.intern.rehydrate` back to canonical terms.  Best
    of ``repeat`` runs, sizes from the first (they are deterministic).
    """
    from repro.service.cache import ensure_deep_pickle
    from repro.util.intern import rehydrate

    ensure_deep_pickle()
    fp = result.fp

    def best(fn) -> tuple[float, object]:
        took, value = min(
            (_timed_once(fn) for _ in range(max(1, repeat))), key=lambda pair: pair[0]
        )
        return took, value

    dumps_s, blob = best(lambda: pickle.dumps(fp, protocol=pickle.HIGHEST_PROTOCOL))
    compress_s, packed = best(lambda: zlib.compress(blob, 1))
    loads_s, revived = best(lambda: pickle.loads(blob))
    rehydrate_s, _ = best(lambda: rehydrate(revived))
    return {
        "pickle_bytes": len(blob),
        "compressed_bytes": len(packed),
        "dumps_seconds": dumps_s,
        "compress_seconds": compress_s,
        "loads_seconds": loads_s,
        "rehydrate_seconds": rehydrate_s,
    }


def _timed_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def schedule_trace(analysis, config, args: argparse.Namespace, program) -> int:
    """Run once with the engine trace on; print order + re-eval histogram.

    The trace is the engine's own pop sequence (one ``(rank, config)``
    entry per real evaluation -- warm replays never appear), so what is
    printed is exactly what the worklist did, not a reconstruction.

    With ``--trace FILE`` the same run goes through the structured
    tracer (:mod:`repro.obs.trace`): the analysis phases appear as
    spans, and every worklist pop is appended as an instant ``pop``
    event carrying its drain index and dependency rank -- the drain
    order, viewable next to the phase timeline in Perfetto.
    """
    from collections import Counter

    from repro.obs.trace import Tracer, use_tracer

    if config.engine not in ("worklist", "depgraph"):
        raise SystemExit(
            "--schedule-trace needs a sequential worklist engine "
            "(--engine worklist|depgraph); kleene and per-state runs "
            "have no drain order to trace"
        )
    if config.parallelism != "none":
        raise SystemExit(
            "--schedule-trace is sequential-only: sharded slices run on "
            "worker threads, so a global evaluation order is not defined"
        )
    trace: list = []
    tracer = Tracer(process_name="profile-analysis") if args.trace else None
    if tracer is not None:
        with use_tracer(tracer):
            analysis.run(program, trace=trace)
        for index, (rank, _conf) in enumerate(trace):
            tracer.event("pop", cat="schedule", index=index, rank=rank)
        tracer.write(args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    else:
        analysis.run(program, trace=trace)
    stats = dict(analysis.last_stats)

    print(
        f"schedule trace of {config.describe()} on {args.lang}/{args.workload} "
        f"(schedule={config.schedule})"
    )
    print(
        f"  evaluations: {stats.get('evaluations')}  "
        f"retriggers: {stats.get('retriggers')}  "
        f"dedup_hits: {stats.get('dedup_hits')}  "
        f"max_rank: {stats.get('max_rank')}"
    )

    shown = min(len(trace), max(0, args.top))
    print(f"\ndrain order (first {shown} of {len(trace)} evaluations):")
    for index, (rank, conf) in enumerate(trace[:shown]):
        text = repr(conf)
        if len(text) > 96:
            text = text[:93] + "..."
        print(f"  {index:5d}  rank {rank:4d}  {text}")

    runs = Counter(conf for _rank, conf in trace)
    histogram = Counter(runs.values())
    print("\nre-evaluation histogram (evaluations-per-configuration: configurations):")
    for count in sorted(histogram):
        print(f"  {count:4d}x: {histogram[count]}")

    worst = runs.most_common(min(5, len(runs)))
    if worst and worst[0][1] > 1:
        print("\nmost re-evaluated configurations:")
        for conf, count in worst:
            if count == 1:
                break
            text = repr(conf)
            if len(text) > 80:
                text = text[:77] + "..."
            print(f"  {count:4d}x  rank {_rank_of(trace, conf):4d}  {text}")
    return 0


def _rank_of(trace: list, conf) -> int:
    for rank, entry in trace:
        if entry == conf:
            return rank
    return -1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lang", required=True, choices=("cps", "lam", "fj"))
    parser.add_argument(
        "--workload",
        required=True,
        help="corpus program name (CPS also accepts id-chain-N)",
    )
    parser.add_argument("--preset", default=None, help="repro.config.PRESETS entry")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument(
        "--engine",
        choices=("kleene", "worklist", "depgraph"),
        help="fixed-point engine (default without --preset: depgraph, "
        "the hot path -- unlike `repro analyze`, which defaults per-state)",
    )
    parser.add_argument(
        "--store-impl",
        choices=("persistent", "versioned"),
        help="store representation (default without --preset: versioned)",
    )
    parser.add_argument("--transition", choices=("generic", "fused"))
    parser.add_argument(
        "--schedule",
        choices=("fifo", "priority"),
        default=None,
        help="worklist drain order (see PERFORMANCE.md, 'Worklist scheduling')",
    )
    parser.add_argument("--gc", action="store_true")
    parser.add_argument("--counting", action="store_true")
    parser.add_argument("--top", type=int, default=25, help="rows to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls"),
        help="pstats sort order",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="profile N back-to-back runs"
    )
    parser.add_argument(
        "--schedule-trace",
        action="store_true",
        help="dump the worklist drain order and the per-configuration "
        "re-evaluation histogram instead of profiling (sequential "
        "worklist engines only; --top bounds the order listing)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="with --schedule-trace: also write the run as a structured "
        "trace (Chrome trace_event JSON, or JSONL for a .jsonl path) "
        "with one instant event per worklist pop",
    )
    parser.add_argument(
        "--pickle-cost",
        action="store_true",
        help="measure serialize/deserialize time and byte size of the "
        "workload's frozen fixed point instead of profiling (--repeat "
        "becomes best-of-N)",
    )
    args = parser.parse_args(argv)

    program = resolve_workload(args.lang, args.workload)
    analysis, config = build_analysis(args, program)

    if args.schedule_trace:
        return schedule_trace(analysis, config, args, program)

    if args.pickle_cost:
        run_start = time.perf_counter()
        result = analysis.run(program)
        run_seconds = time.perf_counter() - run_start
        cost = measure_pickle_cost(result, args.repeat)
        print(f"pickle cost of {config.describe()} on {args.lang}/{args.workload}")
        print(f"  analysis run     {run_seconds * 1e3:10.3f} ms")
        print(f"  pickle.dumps     {cost['dumps_seconds'] * 1e3:10.3f} ms  "
              f"{cost['pickle_bytes']:>10} bytes")
        print(f"  zlib.compress(1) {cost['compress_seconds'] * 1e3:10.3f} ms  "
              f"{cost['compressed_bytes']:>10} bytes "
              f"({cost['compressed_bytes'] / max(1, cost['pickle_bytes']):.2%})")
        print(f"  pickle.loads     {cost['loads_seconds'] * 1e3:10.3f} ms")
        print(f"  rehydrate        {cost['rehydrate_seconds'] * 1e3:10.3f} ms")
        round_trip = (
            cost["dumps_seconds"] + cost["loads_seconds"] + cost["rehydrate_seconds"]
        )
        print(f"  round trip       {round_trip * 1e3:10.3f} ms  "
              f"({round_trip / max(run_seconds, 1e-9):.1%} of one analysis run)")
        return 0

    print(f"profiling {config.describe()} on {args.lang}/{args.workload}", file=sys.stderr)

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.repeat):
        analysis.run(program)
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if analysis.last_stats:
        print(f"engine stats: {analysis.last_stats}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
