"""``repro.imp``: the imperative surface-language frontend.

Programs written in ``imp`` (let/assignment, ``if``, ``while``,
first-class functions, integer and boolean literals) parse with
:func:`parse_program` and lower with :func:`lower_program` into the
direct-style lambda calculus -- after which the entire existing pipeline
applies unchanged: the concrete CESK machine, every analysis preset,
engine and store implementation, the CPS transform, and the service
layer (``repro batch --corpus imp``).

:func:`evaluate_imp` / :func:`truthy` / :func:`as_int` are the concrete
observation helpers the differential fuzz harness
(:mod:`repro.service.fuzz`) and the tests build their oracles from.
"""

from __future__ import annotations

from typing import Any

from repro.imp.lower import LoweringError, lower_program, lower_source
from repro.imp.parser import ImpParseError, parse_program
from repro.imp.syntax import Program, pp, program_size

__all__ = [
    "ImpParseError",
    "LoweringError",
    "Program",
    "as_int",
    "evaluate_imp",
    "lower_program",
    "lower_source",
    "parse_program",
    "pp",
    "program_size",
    "truthy",
]


def evaluate_imp(source: str, max_steps: int = 200_000):
    """Parse, lower and concretely evaluate; returns the final closure."""
    from repro.cesk.concrete import evaluate

    return evaluate(lower_source(source), max_steps=max_steps)


def truthy(value: Any) -> bool:
    """Decode a Church boolean closure (``(lambda (t f) t/f)``).

    Works structurally on the *lambda* of the final closure, so it is
    insensitive to ``uniquify`` renaming: a two-parameter lambda whose
    body is its first parameter is ``true``, its second ``false``.
    """
    from repro.lam.syntax import Lam, Var

    lam = value.lam if hasattr(value, "lam") else value
    if isinstance(lam, Lam) and len(lam.params) == 2 and isinstance(lam.body, Var):
        if lam.body.name == lam.params[0]:
            return True
        if lam.body.name == lam.params[1]:
            return False
    raise ValueError(f"not a Church boolean: {lam!r}")


def as_int(source: str, bound: int | None = None, max_steps: int = 200_000) -> int:
    """Concretely read an integer-valued program back as a Python int.

    Numerals produced by arithmetic are behaviorally -- not structurally
    -- equal to literals, so the decoding is differential: wrap the
    program as ``return (<program>()) == k;`` for each candidate ``k``
    and evaluate.  O(bound) concrete runs; a test/fuzz oracle, not a
    fast path.  ``bound`` defaults to :data:`repro.imp.lower.DOMAIN_BOUND`
    (arithmetic saturates there, so no value can exceed it).
    """
    from repro.cesk.concrete import evaluate
    from repro.imp.lower import (
        DOMAIN_BOUND,
        _Lowerer,
        _PRELUDE_ORDER,
        _prelude_term,
        scott_numeral,
    )
    from repro.lam.syntax import App, Let, Var

    if bound is None:
        bound = DOMAIN_BOUND
    program = parse_program(source)
    for candidate in range(bound + 1):
        lowerer = _Lowerer()
        body = lowerer.lower_program(program)
        eq = lowerer._combinator("__eq")
        probe: Any = Let(
            "__probe", body, App(eq, (Var("__probe"), scott_numeral(candidate)))
        )
        # close over the prelude the probe itself needs (the program body
        # already carries its own prelude lets inside)
        for name in reversed(_PRELUDE_ORDER):
            if name in lowerer._used:
                probe = Let(name, _prelude_term(name), probe)
        if truthy(evaluate(probe, max_steps=max_steps)):
            return candidate
    raise ValueError(f"program value exceeds decode bound {bound}")
