"""Direct-style lambda-calculus terms.

The core grammar is variables, (multi-argument) lambdas and
applications; ``let`` is kept as a first-class node because the CESK
machine gives it a dedicated frame (and analyses see through it better
than through its ``((lambda ...) e)`` encoding, which is also provided
by :func:`desugar_let`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Iterator


class Expr:
    """A direct-style expression."""

    __slots__ = ()


@hash_consed
@dataclass(frozen=True)
class Var(Expr):
    """A variable reference."""

    name: str

    def __repr__(self) -> str:
        return self.name


@hash_consed
@dataclass(frozen=True)
class Lam(Expr):
    """``(lambda (x1 ... xn) body)``."""

    params: tuple[str, ...]
    body: Expr

    def __repr__(self) -> str:
        return pp(self)


@hash_consed
@dataclass(frozen=True)
class App(Expr):
    """``(f e1 ... en)``: call-by-value application."""

    fun: Expr
    args: tuple[Expr, ...]

    def __repr__(self) -> str:
        return pp(self)


@hash_consed
@dataclass(frozen=True)
class Let(Expr):
    """``(let ((x e)) body)``: a single sequential binding."""

    var: str
    rhs: Expr
    body: Expr

    def __repr__(self) -> str:
        return pp(self)


def free_vars(expr: Expr) -> frozenset:
    """Free variables of a direct-style expression."""
    if isinstance(expr, Var):
        return frozenset([expr.name])
    if isinstance(expr, Lam):
        return free_vars(expr.body) - frozenset(expr.params)
    if isinstance(expr, App):
        out = free_vars(expr.fun)
        for arg in expr.args:
            out |= free_vars(arg)
        return out
    if isinstance(expr, Let):
        return free_vars(expr.rhs) | (free_vars(expr.body) - frozenset([expr.var]))
    raise TypeError(f"not a direct-style term: {expr!r}")


def subterms(expr: Expr) -> Iterator[Expr]:
    """All subterms, preorder."""
    yield expr
    if isinstance(expr, Lam):
        yield from subterms(expr.body)
    elif isinstance(expr, App):
        yield from subterms(expr.fun)
        for arg in expr.args:
            yield from subterms(arg)
    elif isinstance(expr, Let):
        yield from subterms(expr.rhs)
        yield from subterms(expr.body)


def pp(expr: Expr) -> str:
    """Pretty-print back to the s-expression concrete syntax."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Lam):
        return f"(lambda ({' '.join(expr.params)}) {pp(expr.body)})"
    if isinstance(expr, App):
        return "(" + " ".join([pp(expr.fun)] + [pp(a) for a in expr.args]) + ")"
    if isinstance(expr, Let):
        return f"(let (({expr.var} {pp(expr.rhs)})) {pp(expr.body)})"
    raise TypeError(f"not a direct-style term: {expr!r}")


def desugar_let(expr: Expr) -> Expr:
    """Rewrite every ``let`` into its ``((lambda (x) body) rhs)`` encoding."""
    if isinstance(expr, Var):
        return expr
    if isinstance(expr, Lam):
        return Lam(expr.params, desugar_let(expr.body))
    if isinstance(expr, App):
        return App(desugar_let(expr.fun), tuple(desugar_let(a) for a in expr.args))
    if isinstance(expr, Let):
        return App(Lam((expr.var,), desugar_let(expr.body)), (desugar_let(expr.rhs),))
    raise TypeError(f"not a direct-style term: {expr!r}")


def alphatize(expr: Expr, fresh: Iterator[str] | None = None, env: dict | None = None) -> Expr:
    """Rename bound variables apart (monovariant-analysis hygiene)."""
    if fresh is None:
        fresh = (f"%{i}" for i in itertools.count())
    if env is None:
        env = {}
    if isinstance(expr, Var):
        return Var(env.get(expr.name, expr.name))
    if isinstance(expr, Lam):
        renamed = {p: f"{p}{next(fresh)}" for p in expr.params}
        inner = dict(env)
        inner.update(renamed)
        return Lam(tuple(renamed[p] for p in expr.params), alphatize(expr.body, fresh, inner))
    if isinstance(expr, App):
        return App(
            alphatize(expr.fun, fresh, env),
            tuple(alphatize(a, fresh, env) for a in expr.args),
        )
    if isinstance(expr, Let):
        new_name = f"{expr.var}{next(fresh)}"
        inner = dict(env)
        inner[expr.var] = new_name
        return Let(new_name, alphatize(expr.rhs, fresh, env), alphatize(expr.body, fresh, inner))
    raise TypeError(f"not a direct-style term: {expr!r}")


def uniquify(expr: Expr) -> Expr:
    """Rename *duplicate* binders apart, keeping first-come names.

    Unlike :func:`alphatize` (which renames every binder), this is
    conservative: a binder keeps its source name unless that name was
    already used by an earlier binder, in which case it becomes
    ``name%N``.  Programs whose binders are already distinct come back
    unchanged (structurally equal), which keeps analysis output readable.

    The CPS transform requires unique binders: its meta-level
    continuations splice variable atoms into contexts that later binders
    would otherwise capture.
    """
    used: set = set(free_vars(expr))
    counter = [0]

    def fresh(base: str) -> str:
        if base not in used:
            used.add(base)
            return base
        while True:
            candidate = f"{base}%{counter[0]}"
            counter[0] += 1
            if candidate not in used:
                used.add(candidate)
                return candidate

    def go(term: Expr, env: dict) -> Expr:
        if isinstance(term, Var):
            return Var(env.get(term.name, term.name))
        if isinstance(term, Lam):
            renamed = {p: fresh(p) for p in term.params}
            inner = dict(env)
            inner.update(renamed)
            return Lam(tuple(renamed[p] for p in term.params), go(term.body, inner))
        if isinstance(term, App):
            return App(go(term.fun, env), tuple(go(a, env) for a in term.args))
        if isinstance(term, Let):
            rhs = go(term.rhs, env)
            new_name = fresh(term.var)
            inner = dict(env)
            inner[term.var] = new_name
            return Let(new_name, rhs, go(term.body, inner))
        raise TypeError(f"not a direct-style term: {term!r}")

    return go(expr, {})


def term_size(expr: Expr) -> int:
    """Number of subterms."""
    return sum(1 for _ in subterms(expr))
