"""The measurement/reporting layer behind the benchmark harness."""

from repro.analysis.report import (
    AnalysisMetrics,
    fmt_table,
    measure_cps,
    metrics_of,
    precision_summary,
    timed,
)
from repro.cps.analysis import analyse_zerocfa
from repro.corpus.cps_programs import PROGRAMS


class TestPrecisionSummary:
    def test_empty(self):
        assert precision_summary({}) == {
            "vars": 0,
            "total_flows": 0,
            "mean_flow": 0.0,
            "max_flow": 0,
        }

    def test_counts(self):
        flows = {"a": frozenset([1, 2]), "b": frozenset([3])}
        summary = precision_summary(flows)
        assert summary["vars"] == 2
        assert summary["total_flows"] == 3
        assert summary["mean_flow"] == 1.5
        assert summary["max_flow"] == 2

    def test_on_real_result(self):
        result = analyse_zerocfa(PROGRAMS["mj09"])
        summary = precision_summary(result.flows_to())
        assert summary["vars"] > 0
        assert summary["max_flow"] == 2


class TestMetrics:
    def test_metrics_of_reduces_result(self):
        result = analyse_zerocfa(PROGRAMS["identity"])
        m = metrics_of(result, "smoke", 0.5, note="hello")
        assert m.label == "smoke"
        assert m.states == result.num_states()
        assert m.extra["note"] == "hello"

    def test_measure_cps_times(self):
        m = measure_cps(lambda: analyse_zerocfa(PROGRAMS["identity"]), "id")
        assert m.seconds >= 0
        assert m.states > 0

    def test_row_includes_extras(self):
        m = AnalysisMetrics("x", 0.1, 1, 2, 3, 4, {"k": "v"})
        row = m.row(["k", "missing"])
        assert row[0] == "x"
        assert row[-2] == "v"
        assert row[-1] == ""

    def test_timed(self):
        value, seconds = timed(lambda: sum(range(100)))
        assert value == 4950
        assert seconds >= 0


class TestFmtTable:
    def test_alignment(self):
        out = fmt_table(["col", "c2"], [["a", "bbbb"], ["cc", "d"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_headers_wider_than_cells(self):
        out = fmt_table(["a-very-long-header"], [["x"]])
        assert "a-very-long-header" in out

    def test_non_string_cells(self):
        out = fmt_table(["n"], [[42]])
        assert "42" in out


class TestDeterministicJson:
    """The JSON layer: byte-identical output for equal content."""

    def test_json_ready_normalizes_containers(self):
        from repro.analysis.report import json_ready

        assert json_ready(frozenset(["b", "a"])) == ["a", "b"]
        assert json_ready((1, "x")) == [1, "x"]
        assert json_ready({"k": {2, 1}}) == {"k": [1, 2]}

    def test_json_ready_renders_addresses_stably(self):
        from repro.analysis.report import json_ready, stable_address
        from repro.core.addresses import Binding
        from repro.cps.parser import parse_cexp

        call = parse_cexp("((lambda (x k) (exit)) (lambda (z j) (exit)) (lambda (r) (exit)))")
        addr = Binding("x", (call,))
        assert json_ready({addr: 1}) == {stable_address(addr): 1}
        assert json_ready(addr) == stable_address(addr)

    def test_render_json_is_insertion_order_independent(self):
        from repro.analysis.report import render_json

        forwards = {"a": 1, "b": {"x": frozenset([2, 1])}}
        backwards = {"b": {"x": frozenset([1, 2])}, "a": 1}
        assert render_json(forwards) == render_json(backwards)
        assert render_json(forwards).endswith("\n")

    def test_result_summary_golden_output(self):
        """The pinned document: any change to key order, set ordering,
        address rendering or the summary's shape shows up here as a
        diff, which is the point."""
        from repro.analysis.report import render_json, result_summary
        from repro.config import assemble, preset_config
        from repro.corpus import corpus_program

        config = preset_config("1cfa", "cps")
        program = corpus_program("cps", "mj09")
        result = assemble(config).run(program)
        golden = """\
{
  "configs": 6,
  "elements": 6,
  "flows": {
    "a": [
      "(lambda (z kz) (kz z))"
    ],
    "b": [
      "(lambda (y ky) (ky y))"
    ],
    "id": [
      "(lambda (x j) (j x))"
    ],
    "j": [
      "(lambda (a) (id (lambda (y ky) (ky y)) (lambda (b) (exit))))",
      "(lambda (b) (exit))"
    ],
    "k": [
      "(lambda (r) (exit))"
    ],
    "x": [
      "(lambda (y ky) (ky y))",
      "(lambda (z kz) (kz z))"
    ]
  },
  "label": "mj09/1cfa",
  "precision": {
    "max_flow": 2,
    "mean_flow": 1.333,
    "total_flows": 8,
    "vars": 6
  },
  "states": 6,
  "store_size": 8
}
"""
        assert render_json(result_summary(result, label="mj09/1cfa")) == golden

    def test_result_summary_works_for_fj(self):
        from repro.analysis.report import result_summary
        from repro.config import assemble, preset_config
        from repro.corpus import corpus_program

        program = corpus_program("fj", "animals")
        result = assemble(preset_config("0cfa", "fj"), program=program).run(program)
        summary = result_summary(result, seconds=1.23456789)
        assert summary["seconds"] == 1.234568
        assert summary["flows"] and all(
            isinstance(vals, list) for vals in summary["flows"].values()
        )
