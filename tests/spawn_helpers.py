"""Worker-side probes for the cross-process (spawn) regression tests.

These run inside ``multiprocessing`` *spawn* children -- a fresh
interpreter with a fresh (empty) intern pool and newly randomized string
hashes, i.e. exactly the environment a batch worker or a
cache-in-another-session load sees.  They must live in an importable
module (not a test function) so the spawn start method can find them.
Each probe returns plain booleans/ints: the asserting happens in the
parent-side tests.
"""

import pickle

from repro.util.intern import intern_pool_size, rehydrate
from repro.util.pcollections import PMap, pmap


def probe_term_identity(payload: bytes, source: str) -> dict:
    """Unpickle a CPS term in a fresh process and compare with a local parse.

    Documents the fork/pickle hazard: the unpickled term is structurally
    equal to the freshly parsed one but *not* the pool's canonical
    object -- until :func:`repro.util.intern.rehydrate` maps it there.
    """
    from repro.cps.parser import parse_program

    unpickled = pickle.loads(payload)
    parsed = parse_program(source)
    rehydrated = rehydrate(unpickled)
    return {
        "equal": unpickled == parsed,
        "hash_equal": hash(unpickled) == hash(parsed),
        "identical_before_rehydrate": unpickled is parsed,
        "identical_after_rehydrate": rehydrated is parsed,
        "pool_size": intern_pool_size(),
    }


def probe_pmap_hash(payload: bytes, entries: tuple) -> dict:
    """Unpickle a PMap under fresh hash randomization and re-derive it locally.

    With string keys, a stale memoized hash would differ from the fresh
    map's hash in this process -- the bug :meth:`PMap.__getstate__`
    prevents by never pickling the memo.
    """
    unpickled: PMap = pickle.loads(payload)
    fresh = pmap(dict(entries))
    return {
        "equal": unpickled == fresh,
        "hash_equal": hash(unpickled) == hash(fresh),
        "usable_as_key": {unpickled: 1}.get(fresh) == 1,
    }


def probe_preset_config(payload: bytes, preset_name: str) -> dict:
    """Unpickle an AnalysisConfig and compare against the local registry."""
    from repro.config import PRESETS

    unpickled = pickle.loads(payload)
    local = PRESETS[preset_name].config
    return {
        "equal": unpickled == local,
        "hash_equal": hash(unpickled) == hash(local),
        "cache_key_equal": unpickled.cache_key() == local.cache_key(),
    }


def probe_sharded_fixpoint(payload: bytes, workload: str) -> dict:
    """Unpickle a sharded-worklist fixed point and re-derive it locally.

    The sharded engine's results must be as spawn-safe as the sequential
    engine's: structurally equal to a fresh local run in a process with
    its own intern pool, and mappable onto that pool's canonical
    representatives by ``rehydrate``.
    """
    from repro.config import assemble, preset_config
    from repro.corpus.lam_programs import PROGRAMS

    unpickled = pickle.loads(payload)
    config = preset_config("1cfa-sharded", "lam")
    program = PROGRAMS[workload]
    local = assemble(config, program=program).run(program, worklist=not config.shared)
    rehydrated = rehydrate(unpickled)
    return {
        "equal": unpickled == local.fp,
        "rehydrated_equal": rehydrated == local.fp,
    }


def probe_frozen_store(payload: bytes, chain_length: int, preset_name: str) -> dict:
    """Unpickle a frozen fixpoint store and re-derive it with a local run."""
    from repro.config import assemble, preset_config
    from repro.corpus.cps_programs import id_chain

    unpickled = pickle.loads(payload)
    config = preset_config(preset_name, "cps")
    program = id_chain(chain_length)
    local = assemble(config, program=program).run(
        program, worklist=not config.shared
    )
    local_store = local.fp[1] if config.shared else local.store_like.lattice().join_all(
        store for _pair, store in local.fp
    )
    rehydrated = rehydrate(unpickled)
    return {
        "equal": unpickled == local_store,
        "hash_equal": hash(unpickled) == hash(local_store),
        "rehydrated_equal": rehydrated == local_store,
    }
